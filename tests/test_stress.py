"""Stress tests: pathological geometries through the full pipeline."""

import numpy as np
import pytest

from repro.baselines.naive import brute_force_emst
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst
from repro.mst.validate import is_spanning_tree


def assert_valid(points, result):
    n = len(points)
    assert is_spanning_tree(n, result.edges[:, 0], result.edges[:, 1])
    if n <= 400:
        _, _, w = brute_force_emst(points)
        assert result.total_weight == pytest.approx(float(w.sum()))


class TestDegenerateGeometry:
    def test_all_identical_points(self):
        pts = np.ones((100, 3)) * 0.37
        result = emst(pts)
        assert result.total_weight == 0.0
        assert_valid(pts, result)

    def test_two_distinct_locations(self):
        pts = np.concatenate([np.zeros((50, 2)), np.ones((50, 2))])
        result = emst(pts)
        assert result.total_weight == pytest.approx(np.sqrt(2.0))
        assert_valid(pts, result)

    def test_collinear_equispaced(self):
        pts = np.stack([np.arange(200.0), np.zeros(200)], axis=1)
        result = emst(pts)
        assert result.total_weight == pytest.approx(199.0)

    def test_points_on_circle(self):
        theta = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        pts = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        result = emst(pts)
        assert_valid(pts, result)
        # A circle's EMST is the polygon minus one edge.
        side = np.linalg.norm(pts[1] - pts[0])
        assert result.total_weight == pytest.approx(127 * side)

    def test_axis_aligned_plane_in_3d(self, rng):
        pts = rng.random((300, 3))
        pts[:, 2] = 0.5
        assert_valid(pts, emst(pts))

    def test_extreme_aspect_ratio(self, rng):
        pts = rng.random((200, 2)) * np.array([1e8, 1e-8])
        assert_valid(pts, emst(pts))

    def test_negative_coordinates(self, rng):
        pts = rng.random((150, 3)) - 10.0
        assert_valid(pts, emst(pts))

    def test_mixed_scales(self, rng):
        near = rng.random((100, 2)) * 1e-6
        far = rng.random((100, 2)) * 1e6 + 1e6
        pts = np.concatenate([near, far])
        assert_valid(pts, emst(pts))

    def test_one_outlier(self, rng):
        pts = np.concatenate([rng.random((199, 3)),
                              np.array([[1e6, 1e6, 1e6]])])
        result = emst(pts)
        assert_valid(pts, result)
        assert result.weights.max() > 1e5  # the outlier bridge

    def test_power_of_two_sizes(self, rng):
        for n in (2, 4, 8, 16, 32, 64, 128, 256):
            pts = rng.random((n, 2))
            assert_valid(pts, emst(pts))

    def test_off_power_sizes(self, rng):
        for n in (3, 5, 17, 63, 129, 255):
            pts = rng.random((n, 3))
            assert_valid(pts, emst(pts))


class TestConfigurations:
    @pytest.mark.parametrize("tree_type", ["bvh", "kdtree"])
    def test_backends_on_degenerate_data(self, tree_type):
        pts = np.concatenate([np.zeros((30, 2)),
                              np.stack([np.arange(30.0),
                                        np.zeros(30)], axis=1)])
        result = emst(pts, config=SingleTreeConfig(tree_type=tree_type))
        assert_valid(pts, result)

    def test_high_resolution_on_identical_points(self):
        pts = np.ones((64, 3))
        result = emst(pts, config=SingleTreeConfig(high_resolution=True))
        assert result.total_weight == 0.0

    def test_all_flags_off_still_exact(self, rng):
        pts = rng.random((250, 3))
        config = SingleTreeConfig(subtree_skipping=False,
                                  component_bounds=False,
                                  record_rounds=False)
        assert_valid(pts, emst(pts, config=config))
