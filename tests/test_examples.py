"""Smoke tests: the example scripts must run end to end."""

import os
import runpy
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(os.path.join(EXAMPLES, name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "total weight" in out
    assert "distance evaluations" in out


def test_cosmology(capsys):
    run_example("cosmology_mst.py", ["2000"])
    out = capsys.readouterr().out
    assert "dynamic range" in out


def test_hdbscan_taxi(capsys):
    run_example("hdbscan_taxi.py", ["1500"])
    out = capsys.readouterr().out
    assert "clusters" in out


def test_service_quickstart(capsys):
    run_example("service_quickstart.py", ["1200"])
    out = capsys.readouterr().out
    assert "exact repeat" in out
    assert "hit rate" in out
    assert "'result_hit': True" in out


def test_device_comparison(capsys):
    run_example("device_comparison.py", ["Uniform100M3", "3000"])
    out = capsys.readouterr().out
    assert "Nvidia-A100" in out
    assert "per-phase" in out
