"""Tests for the execution-model layer (repro.kokkos)."""

import numpy as np
import pytest

from repro.errors import ExecutionSpaceError
from repro.kokkos import (
    A100,
    EPYC_7763_MT,
    EPYC_7763_SEQ,
    MI250X_GCD,
    CostCounters,
    DeviceSpec,
    GPUSim,
    OpenMPSim,
    Serial,
    View,
    WarpTrace,
    create_mirror_view,
    deep_copy,
    device_registry,
    parallel_for,
    parallel_reduce,
    parallel_scan,
    simulate_seconds,
)
from repro.kokkos.costmodel import traversal_ops, weighted_ops
from repro.kokkos.counters import WARP_SIZE
from repro.kokkos.patterns import fused_map


class TestCounters:
    def test_add(self):
        a = CostCounters(distance_evals=5, max_batch=10)
        b = CostCounters(distance_evals=3, max_batch=20)
        a.add(b)
        assert a.distance_evals == 8
        assert a.max_batch == 20  # max, not sum

    def test_copy_independent(self):
        a = CostCounters(nodes_visited=1)
        b = a.copy()
        b.nodes_visited = 99
        assert a.nodes_visited == 1

    def test_scaled(self):
        a = CostCounters(distance_evals=100, kernel_launches=5,
                         max_batch=1000)
        s = a.scaled(2.0)
        assert s.distance_evals == 200
        assert s.kernel_launches == 5  # dispatch count, never scaled
        assert s.max_batch == 1000

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostCounters().scaled(0.0)

    def test_record_bulk(self):
        c = CostCounters()
        c.record_bulk(100, ops_per_item=2.0, bytes_per_item=8.0)
        assert c.scalar_ops == 200
        assert c.bytes_moved == 800
        assert c.kernel_launches == 1
        assert c.max_batch == 100

    def test_record_sort(self):
        c = CostCounters()
        c.record_sort(1000)
        assert c.sort_elements == 1000

    def test_divergence_default(self):
        assert CostCounters().divergence_factor == 1.0


class TestWarpTrace:
    def test_full_warp_no_divergence(self):
        trace = WarpTrace()
        trace.step(np.ones(WARP_SIZE, dtype=bool))
        c = CostCounters()
        trace.flush(c)
        assert c.lane_steps == WARP_SIZE
        assert c.warp_steps == 1
        assert c.divergence_factor == 1.0

    def test_single_lane_full_divergence(self):
        trace = WarpTrace()
        mask = np.zeros(WARP_SIZE, dtype=bool)
        mask[0] = True
        trace.step(mask)
        c = CostCounters()
        trace.flush(c)
        assert c.divergence_factor == WARP_SIZE

    def test_partial_batch_padding(self):
        trace = WarpTrace()
        trace.step(np.ones(40, dtype=bool))  # 1 full + 1 partial warp
        c = CostCounters()
        trace.flush(c)
        assert c.lane_steps == 40
        assert c.warp_steps == 2

    def test_inactive_step_free(self):
        trace = WarpTrace()
        trace.step(np.zeros(64, dtype=bool))
        c = CostCounters()
        trace.flush(c)
        assert c.warp_steps == 0

    def test_flush_resets(self):
        trace = WarpTrace()
        trace.step(np.ones(32, dtype=bool))
        trace.flush(CostCounters())
        c = CostCounters()
        trace.flush(c)
        assert c.lane_steps == 0


class TestDevices:
    def test_presets_registered(self):
        reg = device_registry()
        assert set(reg) == {"epyc-seq", "epyc-mt", "a100", "mi250x"}

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "tpu", 1, 1.0, 1.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "cpu", 1, 0.0, 1.0)

    def test_saturation_monotone(self):
        sat = [A100.saturation(b) for b in (10, 1e3, 1e5, 1e7)]
        assert all(b > a for a, b in zip(sat, sat[1:]))
        assert sat[-1] <= 1.0

    def test_saturation_disabled(self):
        assert EPYC_7763_SEQ.saturation(1) == 1.0


class TestCostModel:
    def _work(self):
        c = CostCounters(distance_evals=10_000, box_distance_evals=30_000,
                         nodes_visited=10_000, stack_ops=20_000,
                         lane_steps=10_000, warp_steps=500,
                         scalar_ops=50_000, sort_elements=10_000,
                         bytes_moved=10_000_000, kernel_launches=20,
                         max_batch=100_000)
        return c

    def test_weighted_ops_positive(self):
        assert weighted_ops(self._work()) > 0
        assert traversal_ops(self._work()) < weighted_ops(self._work())

    def test_faster_devices_faster(self):
        c = self._work()
        t_seq = simulate_seconds(c, EPYC_7763_SEQ).seconds
        t_mt = simulate_seconds(c, EPYC_7763_MT).seconds
        t_gpu = simulate_seconds(c, A100).seconds
        assert t_seq > t_mt > t_gpu

    def test_mi250x_slower_than_a100(self):
        c = self._work()
        assert simulate_seconds(c, MI250X_GCD).seconds > \
            simulate_seconds(c, A100).seconds

    def test_divergence_penalizes_gpu_only(self):
        base = self._work()
        diverged = base.copy()
        diverged.warp_steps = base.lane_steps  # divergence factor 32
        assert simulate_seconds(diverged, A100).seconds > \
            simulate_seconds(base, A100).seconds
        assert simulate_seconds(diverged, EPYC_7763_SEQ).seconds == \
            simulate_seconds(base, EPYC_7763_SEQ).seconds

    def test_work_monotone(self):
        small = self._work()
        big = small.copy()
        big.distance_evals *= 10
        for device in (EPYC_7763_SEQ, A100):
            assert simulate_seconds(big, device).seconds > \
                simulate_seconds(small, device).seconds

    def test_small_batch_hurts_gpu(self):
        c = self._work()
        tiny = c.copy()
        tiny.max_batch = 100
        assert simulate_seconds(tiny, A100).seconds > \
            simulate_seconds(c, A100).seconds

    def test_breakdown_sums(self):
        b = simulate_seconds(self._work(), A100)
        assert b.seconds == pytest.approx(
            b.compute_seconds + b.sort_seconds + b.memory_seconds
            + b.launch_seconds)

    def test_serial_sort_slower(self):
        c = CostCounters(sort_elements=1_000_000, max_batch=1_000_000)
        mt = simulate_seconds(c, EPYC_7763_MT).sort_seconds
        from dataclasses import replace
        parallel = replace(EPYC_7763_MT, serial_sort=False)
        assert simulate_seconds(c, parallel).sort_seconds < mt


class TestSpaces:
    def test_serial_defaults(self):
        assert not Serial().is_gpu
        assert Serial().warp_size == 1

    def test_gpu_warp(self):
        assert GPUSim().is_gpu
        assert GPUSim().warp_size == WARP_SIZE

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ExecutionSpaceError):
            Serial(A100)
        with pytest.raises(ExecutionSpaceError):
            GPUSim(EPYC_7763_SEQ)
        with pytest.raises(ExecutionSpaceError):
            OpenMPSim(A100)

    def test_simulate_dispatch(self):
        c = CostCounters(scalar_ops=1000)
        assert GPUSim().simulate(c).seconds > 0


class TestPatterns:
    def test_parallel_for(self):
        out = []
        parallel_for(5, out.append)
        assert out == [0, 1, 2, 3, 4]

    def test_parallel_for_counters(self):
        c = CostCounters()
        parallel_for(10, lambda i: None, counters=c)
        assert c.kernel_launches == 1
        assert c.scalar_ops == 10

    def test_parallel_for_rejects_negative(self):
        with pytest.raises(ValueError):
            parallel_for(-1, lambda i: None)

    def test_parallel_reduce(self):
        total = parallel_reduce(10, lambda i: i, lambda a, b: a + b, 0)
        assert total == 45

    def test_parallel_scan_exclusive(self):
        out = parallel_scan(np.array([1, 2, 3]))
        assert out.tolist() == [0, 1, 3]

    def test_parallel_scan_inclusive(self):
        out = parallel_scan(np.array([1, 2, 3]), exclusive=False)
        assert out.tolist() == [1, 3, 6]

    def test_parallel_scan_rejects_2d(self):
        with pytest.raises(ValueError):
            parallel_scan(np.zeros((2, 2)))

    def test_fused_map(self):
        c = CostCounters()
        out = fused_map([np.arange(4.0), np.ones(4)],
                        lambda a, b: a + b, counters=c)
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert c.max_batch == 4

    def test_fused_map_shape_mismatch(self):
        with pytest.raises(ValueError):
            fused_map([np.zeros(3), np.zeros(4)], lambda a, b: a)


class TestViews:
    def test_alloc_and_wrap(self):
        v = View("labels", 10, dtype=np.int64)
        assert v.shape == (10,)
        w = View.wrap("data", np.arange(5))
        assert len(w) == 5

    def test_invalid_space(self):
        with pytest.raises(ExecutionSpaceError):
            View("x", 3, space="Nowhere")

    def test_mirror_and_deep_copy(self):
        device = View("d", 8, dtype=np.float64, space="Device")
        device.data[:] = 7.0
        mirror = create_mirror_view(device)
        c = CostCounters()
        deep_copy(mirror, device, counters=c)
        assert np.all(mirror.data == 7.0)
        assert c.bytes_moved == device.nbytes
        assert c.kernel_launches == 1  # crossing memory spaces

    def test_deep_copy_same_space_no_launch(self):
        a = View("a", 4)
        b = View("b", 4)
        b.data[:] = 3.0
        c = CostCounters()
        deep_copy(a, b, counters=c)
        assert c.kernel_launches == 0
        assert np.all(a.data == 3.0)

    def test_deep_copy_shape_mismatch(self):
        with pytest.raises(ExecutionSpaceError):
            deep_copy(View("a", 3), View("b", 4))
