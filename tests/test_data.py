"""Tests for the dataset generators (repro.data)."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    dataset_dimension,
    generate,
    geolife,
    hacc,
    ngsim,
    normal,
    portotaxi,
    roadnetwork,
    sample_preserving,
    uniform,
    visualvar,
)
from repro.data.sampling import sample_sweep
from repro.errors import DimensionError, InvalidInputError
from repro.geometry.morton import morton_encode


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_shape_and_finite(self, name):
        pts = generate(name, 500, seed=3)
        assert pts.shape == (500, dataset_dimension(name))
        assert np.all(np.isfinite(pts))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic(self, name):
        assert np.array_equal(generate(name, 300, seed=1),
                              generate(name, 300, seed=1))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_seed_changes_data(self, name):
        a = generate(name, 300, seed=1)
        b = generate(name, 300, seed=2)
        assert not np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(InvalidInputError):
            generate("NoSuchDataset", 10)
        with pytest.raises(InvalidInputError):
            dataset_dimension("NoSuchDataset")

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_tiny_sizes(self, name):
        for n in (1, 2, 7):
            assert generate(name, n, seed=0).shape[0] == n


class TestDistributionCharacter:
    def test_uniform_moments(self):
        pts = uniform(20_000, 2, seed=0)
        assert abs(pts.mean()) < 0.01
        assert np.all(pts >= -0.5) and np.all(pts <= 0.5)

    def test_normal_moments(self):
        pts = normal(20_000, 3, seed=0)
        assert abs(pts.mean()) < 0.03
        assert abs(pts.std() - 1.0) < 0.03

    def test_uniform_rejects_bad_dim(self):
        with pytest.raises(DimensionError):
            uniform(10, 4)

    def test_visualvar_density_contrast(self):
        # Varying-density clusters: strongly non-uniform NN distances.
        pts = visualvar(3000, 2, seed=1)
        from scipy.spatial import cKDTree
        d, _ = cKDTree(pts).query(pts, k=2)
        nn = d[:, 1]
        nn = nn[nn > 0]
        assert np.percentile(nn, 95) / max(np.percentile(nn, 5), 1e-300) > 15

    def test_hacc_is_clustered(self):
        # The MST edge-length spread separates clustered from uniform.
        from scipy.spatial import cKDTree
        h = hacc(3000, seed=1)
        u = np.random.default_rng(1).random((3000, 3))
        dh, _ = cKDTree(h).query(h, k=2)
        du, _ = cKDTree(u).query(u, k=2)
        assert np.median(dh[:, 1]) < 0.5 * np.median(du[:, 1])

    def test_geolife_morton_underresolved(self):
        # The reproduction of the paper's pathology: massive Z-code
        # collisions at full 21-bit resolution.
        pts = geolife(5000, seed=0)
        codes = morton_encode(pts)
        assert np.unique(codes).size < 0.5 * len(pts)

    def test_ngsim_is_elongated(self):
        pts = ngsim(5000, seed=0)
        cov = np.cov(pts.T)
        eigvals = np.sort(np.linalg.eigvalsh(cov))
        assert eigvals[-1] / eigvals[0] > 3.0

    def test_roadnetwork_near_1d_structure(self):
        # Road points live on curves: NN distances tiny vs extent.
        from scipy.spatial import cKDTree
        pts = roadnetwork(4000, seed=0)
        d, _ = cKDTree(pts).query(pts, k=2)
        extent = np.linalg.norm(pts.max(axis=0) - pts.min(axis=0))
        assert np.median(d[:, 1]) < 0.01 * extent

    def test_portotaxi_autocorrelated(self):
        pts = portotaxi(2000, seed=0)
        assert pts.shape == (2000, 2)
        assert np.all(np.isfinite(pts))

    def test_rejects_nonpositive_n(self):
        with pytest.raises(InvalidInputError):
            uniform(0, 2)


class TestSampling:
    def test_subset(self, rng):
        pts = rng.random((100, 3))
        sub = sample_preserving(pts, 40, seed=5)
        assert sub.shape == (40, 3)
        # Every sampled row exists in the original.
        pts_set = {tuple(p) for p in pts}
        assert all(tuple(p) in pts_set for p in sub)

    def test_no_replacement(self, rng):
        pts = rng.random((50, 2))
        sub = sample_preserving(pts, 50, seed=1)
        assert np.unique(sub, axis=0).shape[0] == 50

    def test_deterministic(self, rng):
        pts = rng.random((100, 2))
        assert np.array_equal(sample_preserving(pts, 30, seed=2),
                              sample_preserving(pts, 30, seed=2))

    def test_rejects_oversample(self, rng):
        with pytest.raises(InvalidInputError):
            sample_preserving(rng.random((10, 2)), 11)

    def test_rejects_zero(self, rng):
        with pytest.raises(InvalidInputError):
            sample_preserving(rng.random((10, 2)), 0)

    def test_sweep_clamps_and_dedupes(self, rng):
        pts = rng.random((100, 2))
        sizes = [m for m, _ in sample_sweep(pts, [10, 50, 200, 400])]
        assert sizes == [10, 50, 100]

    def test_sweep_preserves_distribution_mean(self, rng):
        pts = rng.random((5000, 2))
        for m, sub in sample_sweep(pts, [2000]):
            assert np.allclose(sub.mean(axis=0), pts.mean(axis=0), atol=0.05)
