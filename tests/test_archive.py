"""Tests for the tail-sampled trace archive (repro.obs.archive)."""

import json
import os

import pytest

from repro.obs import (
    MetricsRegistry,
    RetentionPolicy,
    TraceArchive,
    make_span,
    make_trace,
)


def _trace(trace_id="tr-test", spans=None):
    return make_trace(trace_id=trace_id, spans=spans or [
        make_span("executed", start=1000.0, duration_s=0.01)])


def _offer(archive, trace_id, *, outcome="done", duration_s=10.0,
           algorithm="emst", ts=0.0, trace=None):
    """Retained-by-default offer (duration far over any slow threshold)."""
    return archive.offer(
        job_id=f"job-{trace_id}", trace=trace or _trace(trace_id),
        outcome=outcome, algorithm=algorithm, duration_s=duration_s,
        node="node-0", ts=ts)


class TestRetentionPolicy:
    def test_failure_always_kept(self):
        policy = RetentionPolicy(slow_threshold_s=0.25, sample=0.0)
        assert policy.decide(outcome="failed", duration_s=0.001,
                             trace=_trace()) == "failed"

    def test_slow_always_kept(self):
        policy = RetentionPolicy(slow_threshold_s=0.25, sample=0.0)
        assert policy.decide(outcome="done", duration_s=0.25,
                             trace=_trace()) == "slow"
        assert policy.decide(outcome="done", duration_s=0.24,
                             trace=_trace()) is None

    def test_lost_marker_span_kept(self):
        trace = make_trace(spans=[make_span("lost", node="router")])
        policy = RetentionPolicy(sample=0.0)
        assert policy.decide(outcome="done", duration_s=0.0,
                             trace=trace) == "lost"

    def test_failover_hop_kept(self):
        trace = make_trace(spans=[
            make_span("route", node="router", outcome="unavailable"),
            make_span("route", node="router", outcome="accepted")])
        policy = RetentionPolicy(sample=0.0)
        assert policy.decide(outcome="done", duration_s=0.0,
                             trace=trace) == "failover"

    def test_clean_route_hop_not_an_anomaly(self):
        trace = make_trace(spans=[
            make_span("route", node="router", outcome="accepted")])
        policy = RetentionPolicy(sample=0.0)
        assert policy.decide(outcome="done", duration_s=0.0,
                             trace=trace) is None

    def test_sampling_is_deterministic_and_exact(self):
        policy = RetentionPolicy(slow_threshold_s=100.0, sample=0.5)
        kept = [policy.decide(outcome="done", duration_s=0.0,
                              trace=_trace()) for _ in range(10)]
        assert kept.count("sampled") == 5

    def test_sample_edges(self):
        keep_all = RetentionPolicy(slow_threshold_s=100.0, sample=1.0)
        assert keep_all.decide(outcome="done", duration_s=0.0,
                               trace=_trace()) == "sampled"
        keep_none = RetentionPolicy(slow_threshold_s=100.0, sample=0.0)
        assert keep_none.decide(outcome="done", duration_s=0.0,
                                trace=_trace()) is None

    def test_slow_jobs_do_not_advance_the_sample_counter(self):
        # The sample fraction applies to the *fast* stream alone: keeping
        # a slow job must not consume a fast job's keep slot.
        policy = RetentionPolicy(slow_threshold_s=1.0, sample=0.5)
        for _ in range(100):
            assert policy.decide(outcome="done", duration_s=2.0,
                                 trace=_trace()) == "slow"
        kept = [policy.decide(outcome="done", duration_s=0.0,
                              trace=_trace()) for _ in range(10)]
        assert kept.count("sampled") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(slow_threshold_s=-1.0)
        with pytest.raises(ValueError):
            RetentionPolicy(sample=1.5)


class TestArchiveMemory:
    def test_memory_only_round_trip(self):
        archive = TraceArchive()
        assert _offer(archive, "tr-a") == "slow"
        assert archive.get("tr-a")["job_id"] == "job-tr-a"
        assert archive.get("tr-missing") is None
        stats = archive.stats()
        assert not stats["persistent"] and stats["records"] == 1

    def test_traceless_offer_counted_but_dropped(self):
        archive = TraceArchive()
        assert archive.offer(job_id="j", trace=None, outcome="done",
                             algorithm="emst", duration_s=99.0) is None
        stats = archive.stats()
        assert stats["offered"] == 1 and stats["dropped"] == 1

    def test_byte_budget_evicts_oldest(self):
        archive = TraceArchive(max_bytes=1024)
        for i in range(50):
            _offer(archive, f"tr-{i:02d}")
        stats = archive.stats()
        assert stats["bytes"] <= 1024
        assert archive.get("tr-00") is None  # oldest fell off the ring
        assert archive.get("tr-49") is not None

    def test_record_cap_evicts_oldest(self):
        archive = TraceArchive(max_records=3)
        for i in range(5):
            _offer(archive, f"tr-{i}")
        assert archive.stats()["records"] == 3
        assert archive.get("tr-1") is None
        assert archive.get("tr-4") is not None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TraceArchive(max_bytes=0)
        with pytest.raises(ValueError):
            TraceArchive(max_records=0)

    def test_query_filters_and_slowest_first_order(self):
        archive = TraceArchive()
        _offer(archive, "tr-fast", duration_s=0.3, ts=10.0)
        _offer(archive, "tr-slow", duration_s=9.0, ts=20.0,
               algorithm="hdbscan")
        _offer(archive, "tr-bad", outcome="failed", duration_s=0.4, ts=30.0)
        ids = [r["trace_id"] for r in archive.query()]
        assert ids == ["tr-slow", "tr-bad", "tr-fast"]
        assert [r["trace_id"] for r in archive.query(outcome="failed")] \
            == ["tr-bad"]
        assert [r["trace_id"] for r in archive.query(algorithm="hdbscan")] \
            == ["tr-slow"]
        assert [r["trace_id"] for r in archive.query(since=15.0)] \
            == ["tr-slow", "tr-bad"]
        assert [r["trace_id"] for r in archive.query(min_duration_s=1.0)] \
            == ["tr-slow"]
        assert len(archive.query(limit=2)) == 2

    def test_registry_counts_retained_and_dropped(self):
        registry = MetricsRegistry()
        archive = TraceArchive(
            policy=RetentionPolicy(slow_threshold_s=100.0, sample=0.0),
            registry=registry)
        _offer(archive, "tr-bad", outcome="failed")
        _offer(archive, "tr-fast", duration_s=0.0)  # sampled out
        retained = registry.counter("repro_trace_archive_retained_total",
                                    labels=("reason",))
        dropped = registry.counter("repro_trace_archive_dropped_total")
        assert retained.value(reason="failed") == 1.0
        assert dropped.value() == 1.0
        by_name = {m["name"]: m for m in registry.as_dict()["metrics"]}
        assert by_name["repro_trace_archive_records"][
            "samples"][0]["value"] == 1.0


class TestArchivePersistence:
    """A killed writer must never poison the archive: opening self-heals
    (mirrors the DiskStore crash-safety contract in test_store.py)."""

    def test_reopen_serves_byte_identical_records(self, tmp_path):
        root = str(tmp_path / "traces")
        archive = TraceArchive(root)
        _offer(archive, "tr-keep", outcome="failed", duration_s=0.123)
        original = archive.get("tr-keep")

        reopened = TraceArchive(root)
        record = reopened.get("tr-keep")
        assert json.dumps(record, sort_keys=True) \
            == json.dumps(original, sort_keys=True)
        assert reopened.stats()["healed"] == {"bad_lines": 0,
                                              "orphan_tmp": 0}

    def test_torn_final_line_quarantined_on_open(self, tmp_path):
        root = str(tmp_path / "traces")
        archive = TraceArchive(root)
        _offer(archive, "tr-a")
        _offer(archive, "tr-b")
        with open(os.path.join(root, "traces.jsonl"), "a",
                  encoding="utf-8") as fh:
            fh.write('{"trace_id": "tr-c", "tr')  # kill -9 mid-append

        reopened = TraceArchive(root)
        assert reopened.stats()["healed"]["bad_lines"] == 1
        assert reopened.get("tr-a") and reopened.get("tr-b")
        quarantined = os.listdir(os.path.join(root, "quarantine"))
        assert any(name.startswith("torn-") for name in quarantined)
        # The heal rewrote the file clean: a second open finds no damage.
        assert TraceArchive(root).stats()["healed"]["bad_lines"] == 0

    def test_orphan_compaction_temp_swept_on_open(self, tmp_path):
        root = str(tmp_path / "traces")
        archive = TraceArchive(root)
        _offer(archive, "tr-a")
        stray = os.path.join(root, "traces.jsonl.orphan")
        with open(stray, "w", encoding="utf-8") as fh:
            fh.write("crash mid-compact leftovers")

        reopened = TraceArchive(root)
        assert not os.path.exists(stray)
        assert reopened.stats()["healed"]["orphan_tmp"] == 1
        assert reopened.get("tr-a") is not None

    def test_eviction_compacts_the_file_eventually(self, tmp_path):
        root = str(tmp_path / "traces")
        archive = TraceArchive(root, max_records=4)
        for i in range(400):  # > _COMPACT_SLACK dead lines
            _offer(archive, f"tr-{i:03d}")
        with open(os.path.join(root, "traces.jsonl"),
                  encoding="utf-8") as fh:
            lines = fh.readlines()
        assert len(lines) < 400
        assert archive.stats()["records"] == 4

    def test_reopen_respects_tighter_budget(self, tmp_path):
        root = str(tmp_path / "traces")
        archive = TraceArchive(root)
        for i in range(10):
            _offer(archive, f"tr-{i}")
        reopened = TraceArchive(root, max_records=3)
        assert reopened.stats()["records"] == 3
        assert reopened.get("tr-9") is not None  # newest survive the cut
