"""Tests for the benchmark harness (repro.bench)."""

import os

import pytest

from repro.bench.harness import (
    ALGORITHM_WORK_SCALE,
    run_arborx,
    run_arborx_mrd,
    run_bentley_friedman,
    run_memogfk,
    run_mlpack,
    simulated_rate,
    simulated_seconds,
    wall_rate,
)
from repro.bench.tables import render_table
from repro.bench.figures.common import (
    FIGURE_DATASETS,
    PAPER_SIZES,
    arborx_record,
    clear_record_cache,
    memogfk_record,
    scaled_size,
)
from repro.data import generate
from repro.kokkos.devices import A100, EPYC_7763_MT, EPYC_7763_SEQ


@pytest.fixture(scope="module")
def points():
    return generate("Hacc37M", 1500, seed=0)


@pytest.fixture(scope="module")
def arborx(points):
    return run_arborx(points, "Hacc37M")


class TestRunners:
    def test_arborx_record(self, arborx):
        assert arborx.algorithm == "ArborX"
        assert arborx.n == 1500
        assert arborx.features == 4500
        assert set(arborx.phase_counters) == {"tree", "mst"}
        assert arborx.total_weight > 0
        assert arborx.extra["iterations"] >= 1

    def test_arborx_mrd_record(self, points):
        record = run_arborx_mrd(points, "Hacc37M", 4)
        assert "core" in record.phase_counters
        assert record.extra["k_pts"] == 4.0

    def test_memogfk_record(self, points):
        record = run_memogfk(points, "Hacc37M")
        assert record.algorithm == "MemoGFK"
        assert {"tree", "wspd", "mst", "mark"} <= set(record.phase_counters)
        assert record.extra["n_pairs"] > 0

    def test_mlpack_record(self, points):
        record = run_mlpack(points[:400], "Hacc37M")
        assert record.algorithm == "MLPACK"
        assert record.total_counters.distance_evals > 0

    def test_bf78_record(self, points):
        record = run_bentley_friedman(points[:400], "Hacc37M")
        assert record.algorithm == "BF78"

    def test_all_same_weight(self, points):
        w = run_arborx(points, "x").total_weight
        assert run_memogfk(points, "x").total_weight == pytest.approx(w)
        assert run_mlpack(points[:400], "x").total_weight == pytest.approx(
            run_bentley_friedman(points[:400], "x").total_weight)


class TestSimulation:
    def test_device_ordering(self, arborx):
        t_seq = simulated_seconds(arborx, EPYC_7763_SEQ)
        t_mt = simulated_seconds(arborx, EPYC_7763_MT)
        t_gpu = simulated_seconds(arborx, A100)
        assert t_seq > t_mt > t_gpu > 0

    def test_phase_subset(self, arborx):
        total = simulated_seconds(arborx, A100)
        mst = simulated_seconds(arborx, A100, phases=["mst"])
        tree = simulated_seconds(arborx, A100, phases=["tree"])
        assert total == pytest.approx(mst + tree)

    def test_rate_uses_features(self, arborx):
        rate = simulated_rate(arborx, EPYC_7763_SEQ)
        t = simulated_seconds(arborx, EPYC_7763_SEQ)
        assert rate == pytest.approx(arborx.features / t / 1e6)

    def test_wall_rate(self, arborx):
        assert wall_rate(arborx) > 0

    def test_work_scale_applied(self, points):
        memogfk = run_memogfk(points, "x")
        base = simulated_seconds(memogfk, EPYC_7763_SEQ)
        old = ALGORITHM_WORK_SCALE["MemoGFK"]
        try:
            ALGORITHM_WORK_SCALE["MemoGFK"] = old * 2
            scaled = simulated_seconds(memogfk, EPYC_7763_SEQ)
            # ~2x, modulo the n log n sort term growing slightly faster.
            assert 1.9 * base < scaled < 2.3 * base
        finally:
            ALGORITHM_WORK_SCALE["MemoGFK"] = old

    def test_serial_sort_quirk_arborx_only(self, points):
        # The MT serial-sort penalty applies to ArborX, not MemoGFK.
        arborx = run_arborx(points, "x")
        memogfk = run_memogfk(points, "x")
        from dataclasses import replace
        parallel_mt = replace(EPYC_7763_MT, serial_sort=False)
        # ArborX: pricing with the quirk differs from pricing without.
        assert simulated_seconds(arborx, EPYC_7763_MT) > \
            simulated_seconds(arborx, parallel_mt)
        # MemoGFK: the quirk device is internally replaced -> identical.
        assert simulated_seconds(memogfk, EPYC_7763_MT) == \
            pytest.approx(simulated_seconds(memogfk, parallel_mt))


class TestFigureCommon:
    def test_scaled_sizes_ordered_like_paper(self):
        # Relative dataset sizes preserved by the single global divisor.
        assert scaled_size("RoadNetwork3D") < scaled_size("Hacc37M")
        assert scaled_size("Hacc37M") == 30_000  # calibration anchor
        assert scaled_size("Normal100M3") <= 82_000  # cap

    def test_all_figure_datasets_have_sizes(self):
        for name in FIGURE_DATASETS:
            assert name in PAPER_SIZES
            assert scaled_size(name) >= 64

    def test_record_cache(self):
        clear_record_cache()
        a = arborx_record("Uniform100M2", 500)
        b = arborx_record("Uniform100M2", 500)
        assert a is b
        c = memogfk_record("Uniform100M2", 300)
        assert c is memogfk_record("Uniform100M2", 300)
        assert c is not memogfk_record("Uniform100M2", 300, k_pts=2)
        clear_record_cache()
        assert arborx_record("Uniform100M2", 500) is not a


class TestTables:
    def test_render_basic(self):
        table = render_table(["a", "b"], [[1, 2.5], ["x", 0.001]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        table = render_table(["v"], [[123.456], [0.00012], [5.5]])
        assert "123" in table
        assert "0.00012" in table
        assert "5.50" in table

    def test_empty_rows(self):
        table = render_table(["x"], [])
        assert "x" in table

    def test_save_report(self, tmp_path, monkeypatch):
        import repro.bench.tables as tables
        monkeypatch.setattr(tables, "REPORTS_DIR", str(tmp_path))
        path = tables.save_report("test.txt", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"


class TestFigureDriversQuick:
    """Smoke the figure drivers in quick mode (full mode is benchmarks/)."""

    def test_fig1_quick(self):
        from repro.bench.figures import fig1
        rows, table = fig1.run(quick=True)
        assert len(rows) == 7
        assert "Figure 1" in table

    def test_fig7_quick(self):
        from repro.bench.figures import fig7
        rows, table = fig7.run(quick=True)
        assert all(r["ArborX_A100"] > 0 for r in rows)

    def test_fig9_quick(self):
        from repro.bench.figures import fig9
        rows, table = fig9.run(quick=True)
        ks = [r["k_pts"] for r in rows]
        assert ks == sorted(ks)

    def test_ablation_quick(self):
        from repro.bench.figures import ablation
        rows, table = ablation.run(quick=True)
        variants = {r["variant"] for r in rows}
        assert "skip=on,bounds=on" in variants
        assert "bentley-friedman-1978" in variants
