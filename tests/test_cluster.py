"""Tests for the multi-node dispatch layer (repro.cluster)."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterRouter, HashRing, Node, NodeClient
from repro.cluster.server import create_router_server
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeUnavailableError,
)
from repro.service import Engine, JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec
from repro.service.server import create_server
from repro.store import combine_fingerprint, fingerprint_spec


def _keys(count):
    return [f"points-fp-{i:04d}" for i in range(count)]


def _owners(ring, keys):
    return {key: ring.node_for(key).name for key in keys}


class TestNode:
    def test_defaults_name_to_host_port(self):
        node = Node("http://10.0.0.7:8321/")
        assert node.name == "10.0.0.7:8321"
        assert node.base_url == "http://10.0.0.7:8321"

    def test_rejects_non_http_url(self):
        with pytest.raises(InvalidInputError):
            Node("ftp://10.0.0.7:8321")

    def test_rejects_at_sign_in_name(self):
        with pytest.raises(InvalidInputError):
            Node("http://h:1", name="a@b")

    def test_rejects_bad_weight(self):
        for weight in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(InvalidInputError):
                Node("http://h:1", weight=weight)


class TestHashRing:
    def test_placement_is_deterministic(self):
        nodes = lambda: [Node(f"http://h:{i}", name=f"n{i}")  # noqa: E731
                         for i in range(4)]
        a, b = HashRing(nodes()), HashRing(nodes())
        keys = _keys(100)
        assert _owners(a, keys) == _owners(b, keys)

    def test_shares_are_roughly_balanced(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        share = ring.key_share(4096)
        assert set(share) == {"n0", "n1", "n2", "n3"}
        for fraction in share.values():
            assert 0.10 <= fraction <= 0.45  # ideal 0.25

    def test_weight_scales_share(self):
        ring = HashRing([Node("http://h:0", name="heavy", weight=3.0),
                         Node("http://h:1", name="light", weight=1.0)])
        share = ring.key_share(4096)
        assert share["heavy"] > 2 * share["light"]

    def test_adding_a_node_moves_bounded_keys(self):
        nodes = [Node(f"http://h:{i}", name=f"n{i}") for i in range(4)]
        ring = HashRing(nodes)
        keys = _keys(1000)
        before = _owners(ring, keys)
        ring.add(Node("http://h:9", name="n9"))
        after = _owners(ring, keys)
        moved = sum(before[k] != after[k] for k in keys)
        # Ideal movement is 1/5 of the keys (the new node's share); a
        # modulo scheme would move ~4/5.  Every moved key must have moved
        # *to* the new node — consistent hashing never shuffles keys
        # between surviving nodes.
        assert moved / len(keys) < 0.40
        for key in keys:
            if before[key] != after[key]:
                assert after[key] == "n9"

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        keys = _keys(1000)
        before = _owners(ring, keys)
        ring.remove("n2")
        after = _owners(ring, keys)
        for key in keys:
            if before[key] != "n2":
                assert after[key] == before[key]
            else:
                assert after[key] != "n2"

    def test_preference_covers_all_nodes_distinctly(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(5)])
        for key in _keys(20):
            order = [node.name for node in ring.preference(key)]
            assert len(order) == 5
            assert len(set(order)) == 5
            assert order[0] == ring.node_for(key).name

    def test_failover_spreads_over_survivors(self):
        # Rendezvous ordering: the keys of one node must not all fail over
        # to a single survivor (the clockwise-successor pathology).
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        fallback_counts = {}
        for key in _keys(600):
            order = ring.preference(key)
            if order[0].name == "n0":
                fallback = order[1].name
                fallback_counts[fallback] = \
                    fallback_counts.get(fallback, 0) + 1
        assert len(fallback_counts) == 3  # all survivors take a share
        total = sum(fallback_counts.values())
        for count in fallback_counts.values():
            assert count / total < 0.6

    def test_duplicate_and_unknown_names_raise(self):
        ring = HashRing([Node("http://h:1", name="a")])
        with pytest.raises(InvalidInputError):
            ring.add(Node("http://h:2", name="a"))
        with pytest.raises(InvalidInputError):
            ring.remove("zzz")

    def test_empty_ring_raises(self):
        with pytest.raises(InvalidInputError):
            HashRing().node_for("k")


@pytest.fixture
def fleet(tmp_path):
    """Three live nodes (persistent stores) + a router; yields a handle."""
    engines, servers = [], []
    for i in range(3):
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / f"node-{i}"))
        server = create_server(engine, node_name=f"node-{i}")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        engines.append(engine)
        servers.append(server)
    nodes = [Node(f"http://127.0.0.1:{server.server_address[1]}",
                  name=f"node-{i}")
             for i, server in enumerate(servers)]
    router = ClusterRouter(nodes, timeout=30.0)

    class Fleet:
        pass

    handle = Fleet()
    handle.router = router
    handle.nodes = nodes
    handle.engines = engines
    handle.servers = servers
    handle.down = set()

    def kill(name):
        """SIGKILL-equivalent for an in-process node: stop its server."""
        index = int(name.rsplit("-", 1)[1])
        servers[index].shutdown()
        servers[index].server_close()
        engines[index].close()
        handle.down.add(name)

    handle.kill = kill
    try:
        yield handle
    finally:
        for i, server in enumerate(servers):
            if f"node-{i}" not in handle.down:
                server.shutdown()
                server.server_close()
                engines[i].close()
        router.close()


def _await(router, accepted, wait_s=60.0):
    body, node = router.job(accepted["job_id"], wait_s=wait_s)
    assert body["status"] in ("done", "failed"), body
    return body, node


class TestRouterDispatch:
    def test_routed_equals_direct_bytes(self, fleet):
        body = {"dataset": "Uniform100M2:400", "algorithm": "mrd_emst",
                "k_pts": 4}
        accepted = fleet.router.submit(dict(body))
        result, _node = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        spec = JobSpec.from_dict(body)
        reference = execute_spec(make_exec_spec(spec))["payload"]
        assert canonical_payload_bytes(result["payload"]) == \
            canonical_payload_bytes(reference)

    def test_repeat_lands_on_same_node_and_hits(self, fleet):
        body = {"dataset": "Normal100M2:500"}
        first = fleet.router.submit(dict(body))
        _await(fleet.router, first)
        second = fleet.router.submit(dict(body))
        assert second["node"] == first["node"]
        result, _ = _await(fleet.router, second)
        assert result["cache"]["result_hit"]

    def test_placement_matches_ring(self, fleet):
        body = {"dataset": "Uniform100M3:300"}
        points_fp = fleet.router.fingerprint(JobSpec.from_dict(body))
        expected = fleet.router.ring.node_for(points_fp).name
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == expected

    def test_inline_points_route_consistently(self, fleet, rng):
        points = rng.random((150, 2))
        first = fleet.router.submit({"points": points.tolist()})
        _await(fleet.router, first)
        second = fleet.router.submit({"points": points.tolist(),
                                      "algorithm": "hdbscan"})
        # Same point set, different algorithm: same node (shared tree
        # tier), and the tree tier answers there.
        assert second["node"] == first["node"]
        result, _ = _await(fleet.router, second)
        assert result["status"] == "done", result.get("error")
        assert result["cache"]["tree_hit"]

    def test_bad_spec_rejected_locally(self, fleet):
        with pytest.raises(InvalidInputError):
            fleet.router.submit({"dataset": "Uniform100M2:100",
                                 "algorithm": "kmeans"})
        # No node saw the request.
        stats = fleet.router.stats()
        assert stats["fleet"]["jobs"].get("total", 0) == 0

    def test_unknown_job_id(self, fleet):
        with pytest.raises(InvalidInputError):
            fleet.router.job("job-424242")


class TestRouterFailover:
    def _spec_owned_by(self, fleet, name):
        """A dataset body whose ring primary is node ``name``."""
        for n in range(300, 400):
            body = {"dataset": f"Uniform100M2:{n}"}
            fp = fleet.router.fingerprint(JobSpec.from_dict(body))
            if fleet.router.ring.node_for(fp).name == name:
                return body
        raise AssertionError(f"no probe spec owned by {name}")

    def test_submit_fails_over_to_next_node(self, fleet):
        victim = "node-1"
        body = self._spec_owned_by(fleet, victim)
        fleet.kill(victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] != victim
        result, _ = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        assert fleet.router.stats()["router"]["failovers"] >= 1

    def test_dead_node_recovery_on_poll(self, fleet):
        victim = "node-2"
        body = self._spec_owned_by(fleet, victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == victim
        _await(fleet.router, accepted)
        fleet.kill(victim)
        # The node (and its memory) is gone; the router must resubmit the
        # retained spec to a survivor and still answer — byte-identically,
        # because jobs are pure functions of their spec.
        result, node = fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert node != victim
        assert result["status"] == "done", result.get("error")
        reference = execute_spec(
            make_exec_spec(JobSpec.from_dict(body)))["payload"]
        assert canonical_payload_bytes(result["payload"]) == \
            canonical_payload_bytes(reference)
        assert fleet.router.stats()["router"]["resubmits"] >= 1

    def test_stale_recovery_does_not_redispatch(self, fleet):
        # A poller that saw the OLD assignment fail must not trigger a
        # second recovery once another poller already moved the route —
        # on a small fleet that would exclude the healthy node (503) or
        # double-execute the job.
        victim = "node-2"
        body = self._spec_owned_by(fleet, victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == victim
        _await(fleet.router, accepted)
        fleet.kill(victim)
        result, node = fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert result["status"] == "done"
        resubmits = fleet.router.stats()["router"]["resubmits"]
        route = fleet.router._route(accepted["job_id"])
        # Simulate the racing poller: it observed `victim` failing, but
        # the route has already been recovered elsewhere.
        recovered = fleet.router._recover(route, victim, wait_s=60.0)
        assert recovered["status"] == "done"
        assert route.node_name == node  # assignment untouched
        assert fleet.router.stats()["router"]["resubmits"] == resubmits

    def test_all_nodes_down_is_cluster_error(self, fleet):
        for name in ("node-0", "node-1", "node-2"):
            fleet.kill(name)
        with pytest.raises((NodeUnavailableError, ClusterError)):
            fleet.router.submit({"dataset": "Uniform100M2:100"})


class TestFleetStats:
    def test_aggregates_pool_across_nodes(self, fleet):
        for n in (300, 310, 320, 300, 310):  # two repeats
            accepted = fleet.router.submit({"dataset": f"Uniform100M2:{n}"})
            _await(fleet.router, accepted)
        stats = fleet.router.stats()
        assert stats["fleet"]["nodes_reachable"] == 3
        assert stats["fleet"]["jobs"]["done"] == 5
        # Two result hits out of five lookups, pooled across the fleet.
        assert stats["fleet"]["result_cache"]["hit_rate"] == \
            pytest.approx(0.4)
        assert stats["router"]["jobs_routed"] == 5
        assert sum(stats["router"]["routed_by_node"].values()) == 5
        assert stats["fleet"]["mfeatures_per_sec"] >= 0.0

    def test_healthz_degrades_when_a_node_dies(self, fleet):
        assert fleet.router.healthz()["status"] == "ok"
        fleet.kill("node-0")
        health = fleet.router.healthz()
        assert health["status"] == "degraded"
        assert health["nodes_up"] == 2
        down = [n for n in health["nodes"] if n["name"] == "node-0"]
        assert down and not down[0]["reachable"]

    def test_admin_flush_fans_out(self, fleet):
        accepted = fleet.router.submit({"dataset": "Uniform100M2:350"})
        _await(fleet.router, accepted)
        report = fleet.router.flush()
        assert report["status"] == "ok"
        assert len(report["nodes"]) == 3
        repeat = fleet.router.submit({"dataset": "Uniform100M2:350"})
        result, _ = _await(fleet.router, repeat)
        assert not result["cache"]["result_hit"]

    def test_admin_compact_fans_out(self, fleet):
        report = fleet.router.compact()
        assert report["status"] == "ok"
        for entry in report["nodes"]:
            assert entry["compacted"]["journal_lines_after"] >= 0


@pytest.fixture
def routed_api(fleet):
    """The router's own HTTP front end; yields its base URL."""
    server = create_router_server(fleet.router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def _get(url):
    with urllib.request.urlopen(url, timeout=120) as resp:
        return resp.status, json.loads(resp.read()), resp.headers


def _post(url, obj=None):
    data = json.dumps(obj).encode() if obj is not None else b""
    req = urllib.request.Request(
        url, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read()), resp.headers


class TestRouterHTTP:
    def test_same_wire_protocol_as_a_node(self, routed_api):
        status, accepted, headers = _post(f"{routed_api}/v1/jobs",
                                          {"dataset": "Uniform100M2:300"})
        assert status == 202
        assert accepted["status"] == "pending"
        assert headers["X-Repro-Node"] == accepted["node"]
        status, result, headers = _get(
            f"{routed_api}/v1/jobs/{accepted['job_id']}?wait_s=60")
        assert status == 200
        assert result["status"] == "done"
        assert result["job_id"] == accepted["job_id"]
        assert headers["X-Repro-Node"] == accepted["node"]

    def test_bad_spec_is_400(self, routed_api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{routed_api}/v1/jobs", {"dataset": "Uniform100M2:50",
                                            "algorithm": "kmeans"})
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, routed_api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{routed_api}/v1/jobs/job-424242")
        assert excinfo.value.code == 404

    def test_stats_and_healthz_documents(self, routed_api):
        _, health, _ = _get(f"{routed_api}/v1/healthz")
        assert health["role"] == "router"
        assert health["status"] == "ok"
        _, stats, _ = _get(f"{routed_api}/v1/stats")
        assert stats["role"] == "router"
        assert "fleet" in stats and "router" in stats

    def test_admin_flush_bad_tier_is_400_not_503(self, routed_api, fleet):
        # Every node rejects the tier with a 400: the router must relay
        # the client error, not convert it into unavailability — and the
        # unanimous 4xx must not poison the fleet's health view.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{routed_api}/v1/admin/flush", {"tier": "everything"})
        assert excinfo.value.code == 400
        assert all(node.healthy for node in fleet.router.ring.nodes)

    def test_admin_flush_per_tier_over_http(self, routed_api):
        _, accepted, _ = _post(f"{routed_api}/v1/jobs",
                               {"dataset": "Uniform100M2:420"})
        _, result, _ = _get(
            f"{routed_api}/v1/jobs/{accepted['job_id']}?wait_s=60")
        assert result["status"] == "done"
        status, report, _ = _post(f"{routed_api}/v1/admin/flush",
                                  {"tier": "bvh"})
        assert status == 200
        assert report["status"] == "ok"
        # The tree tier is gone everywhere, the result tier is not: the
        # repeat is still a result hit but would rebuild its tree.
        _, repeat, _ = _post(f"{routed_api}/v1/jobs",
                             {"dataset": "Uniform100M2:420"})
        _, result, _ = _get(
            f"{routed_api}/v1/jobs/{repeat['job_id']}?wait_s=60")
        assert result["cache"]["result_hit"]


class TestFingerprintSpec:
    def test_matches_engine_keying(self, rng):
        points = rng.random((60, 3))
        spec = JobSpec(points=points)
        from repro.store import fingerprint_array
        assert fingerprint_spec(spec) == \
            fingerprint_array(np.asarray(points, dtype=np.float64))

    def test_dataset_and_inline_agree(self):
        from repro.data import generate_from_spec
        spec = JobSpec(dataset="Uniform100M2:123")
        inline = JobSpec(points=generate_from_spec("Uniform100M2:123"))
        assert fingerprint_spec(spec) == fingerprint_spec(inline)

    def test_result_key_derivation(self):
        spec = JobSpec(dataset="Uniform100M2:77")
        fp = fingerprint_spec(spec)
        key = combine_fingerprint(fp, spec.params_key())
        assert len(key) == 64 and key != fp


class TestNodeClient:
    def test_unreachable_node_raises_unavailable(self):
        client = NodeClient(Node("http://127.0.0.1:9", name="void"),
                            timeout=0.5, retries=0)
        with pytest.raises(NodeUnavailableError):
            client.healthz()

    def test_rejects_bad_config(self):
        node = Node("http://h:1")
        with pytest.raises(ClusterError):
            NodeClient(node, timeout=0.0)
        with pytest.raises(ClusterError):
            NodeClient(node, retries=-1)


class TestRouterCoalescing:
    """Identical in-flight specs share one upstream job."""

    def test_second_submit_rides_first(self, fleet):
        body = {"dataset": "Uniform100M2:600", "algorithm": "mrd_emst",
                "k_pts": 4}
        first = fleet.router.submit(dict(body))
        # Submitted again before any poll observed completion: the router
        # must reuse the in-flight upstream job, not dispatch a second.
        second = fleet.router.submit(dict(body))
        assert second["job_id"] != first["job_id"]
        assert second["node"] == first["node"]
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 1
        # Exactly one upstream job was dispatched for the pair.
        assert stats["routed_by_node"][first["node"]] == 1
        res_a, _ = _await(fleet.router, first)
        res_b, _ = _await(fleet.router, second)
        assert res_a["status"] == "done", res_a.get("error")
        assert res_b["status"] == "done", res_b.get("error")
        assert canonical_payload_bytes(res_b["payload"]) == \
            canonical_payload_bytes(res_a["payload"])

    def test_terminal_poll_clears_inflight(self, fleet):
        body = {"dataset": "Uniform100M2:550"}
        first = fleet.router.submit(dict(body))
        _await(fleet.router, first)  # observed done -> entry cleared
        third = fleet.router.submit(dict(body))
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 0
        # The repeat dispatched upstream (and hits the node's result
        # cache there) instead of riding a finished job.
        result, _ = _await(fleet.router, third)
        assert result["cache"]["result_hit"]

    def test_different_params_do_not_coalesce(self, fleet):
        base = {"dataset": "Uniform100M2:500"}
        first = fleet.router.submit(dict(base))
        other = fleet.router.submit({**base, "algorithm": "mrd_emst",
                                     "k_pts": 4})
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 0
        _await(fleet.router, first)
        result, _ = _await(fleet.router, other)
        assert result["status"] == "done", result.get("error")
