"""Tests for the multi-node dispatch layer (repro.cluster)."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    HashRing,
    Node,
    NodeClient,
    NodeHTTPError,
    backoff_delay,
    plan_rebalance,
    run_rebalance,
)
from repro.cluster.client import BACKOFF_BASE, BACKOFF_CAP, RETRY_AFTER_CAP
from repro.cluster.rebalance import append_journal, load_journal
from repro.cluster.server import create_router_server
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeUnavailableError,
)
from repro.service import Engine, JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec
from repro.service.server import create_server
from repro.store import combine_fingerprint, fingerprint_spec


def _keys(count):
    return [f"points-fp-{i:04d}" for i in range(count)]


def _owners(ring, keys):
    return {key: ring.node_for(key).name for key in keys}


class TestNode:
    def test_defaults_name_to_host_port(self):
        node = Node("http://10.0.0.7:8321/")
        assert node.name == "10.0.0.7:8321"
        assert node.base_url == "http://10.0.0.7:8321"

    def test_rejects_non_http_url(self):
        with pytest.raises(InvalidInputError):
            Node("ftp://10.0.0.7:8321")

    def test_rejects_at_sign_in_name(self):
        with pytest.raises(InvalidInputError):
            Node("http://h:1", name="a@b")

    def test_rejects_bad_weight(self):
        for weight in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(InvalidInputError):
                Node("http://h:1", weight=weight)


class TestHashRing:
    def test_placement_is_deterministic(self):
        nodes = lambda: [Node(f"http://h:{i}", name=f"n{i}")  # noqa: E731
                         for i in range(4)]
        a, b = HashRing(nodes()), HashRing(nodes())
        keys = _keys(100)
        assert _owners(a, keys) == _owners(b, keys)

    def test_shares_are_roughly_balanced(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        share = ring.key_share(4096)
        assert set(share) == {"n0", "n1", "n2", "n3"}
        for fraction in share.values():
            assert 0.10 <= fraction <= 0.45  # ideal 0.25

    def test_weight_scales_share(self):
        ring = HashRing([Node("http://h:0", name="heavy", weight=3.0),
                         Node("http://h:1", name="light", weight=1.0)])
        share = ring.key_share(4096)
        assert share["heavy"] > 2 * share["light"]

    def test_adding_a_node_moves_bounded_keys(self):
        nodes = [Node(f"http://h:{i}", name=f"n{i}") for i in range(4)]
        ring = HashRing(nodes)
        keys = _keys(1000)
        before = _owners(ring, keys)
        ring.add(Node("http://h:9", name="n9"))
        after = _owners(ring, keys)
        moved = sum(before[k] != after[k] for k in keys)
        # Ideal movement is 1/5 of the keys (the new node's share); a
        # modulo scheme would move ~4/5.  Every moved key must have moved
        # *to* the new node — consistent hashing never shuffles keys
        # between surviving nodes.
        assert moved / len(keys) < 0.40
        for key in keys:
            if before[key] != after[key]:
                assert after[key] == "n9"

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        keys = _keys(1000)
        before = _owners(ring, keys)
        ring.remove("n2")
        after = _owners(ring, keys)
        for key in keys:
            if before[key] != "n2":
                assert after[key] == before[key]
            else:
                assert after[key] != "n2"

    def test_preference_covers_all_nodes_distinctly(self):
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(5)])
        for key in _keys(20):
            order = [node.name for node in ring.preference(key)]
            assert len(order) == 5
            assert len(set(order)) == 5
            assert order[0] == ring.node_for(key).name

    def test_failover_spreads_over_survivors(self):
        # Rendezvous ordering: the keys of one node must not all fail over
        # to a single survivor (the clockwise-successor pathology).
        ring = HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(4)])
        fallback_counts = {}
        for key in _keys(600):
            order = ring.preference(key)
            if order[0].name == "n0":
                fallback = order[1].name
                fallback_counts[fallback] = \
                    fallback_counts.get(fallback, 0) + 1
        assert len(fallback_counts) == 3  # all survivors take a share
        total = sum(fallback_counts.values())
        for count in fallback_counts.values():
            assert count / total < 0.6

    def test_duplicate_and_unknown_names_raise(self):
        ring = HashRing([Node("http://h:1", name="a")])
        with pytest.raises(InvalidInputError):
            ring.add(Node("http://h:2", name="a"))
        with pytest.raises(InvalidInputError):
            ring.remove("zzz")

    def test_empty_ring_raises(self):
        with pytest.raises(InvalidInputError):
            HashRing().node_for("k")


@pytest.fixture
def fleet(tmp_path):
    """Three live nodes (persistent stores) + a router; yields a handle."""
    engines, servers = [], []
    for i in range(3):
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / f"node-{i}"))
        server = create_server(engine, node_name=f"node-{i}")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        engines.append(engine)
        servers.append(server)
    nodes = [Node(f"http://127.0.0.1:{server.server_address[1]}",
                  name=f"node-{i}")
             for i, server in enumerate(servers)]
    router = ClusterRouter(nodes, timeout=30.0)

    class Fleet:
        pass

    handle = Fleet()
    handle.router = router
    handle.nodes = nodes
    handle.engines = engines
    handle.servers = servers
    handle.down = set()

    def kill(name):
        """SIGKILL-equivalent for an in-process node: stop its server."""
        index = int(name.rsplit("-", 1)[1])
        servers[index].shutdown()
        servers[index].server_close()
        engines[index].close()
        handle.down.add(name)

    handle.kill = kill
    try:
        yield handle
    finally:
        for i, server in enumerate(servers):
            if f"node-{i}" not in handle.down:
                server.shutdown()
                server.server_close()
                engines[i].close()
        router.close()


def _await(router, accepted, wait_s=60.0):
    body, node = router.job(accepted["job_id"], wait_s=wait_s)
    assert body["status"] in ("done", "failed"), body
    return body, node


class TestRouterDispatch:
    def test_routed_equals_direct_bytes(self, fleet):
        body = {"dataset": "Uniform100M2:400", "algorithm": "mrd_emst",
                "k_pts": 4}
        accepted = fleet.router.submit(dict(body))
        result, _node = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        spec = JobSpec.from_dict(body)
        reference = execute_spec(make_exec_spec(spec))["payload"]
        assert canonical_payload_bytes(result["payload"]) == \
            canonical_payload_bytes(reference)

    def test_repeat_lands_on_same_node_and_hits(self, fleet):
        body = {"dataset": "Normal100M2:500"}
        first = fleet.router.submit(dict(body))
        _await(fleet.router, first)
        second = fleet.router.submit(dict(body))
        assert second["node"] == first["node"]
        result, _ = _await(fleet.router, second)
        assert result["cache"]["result_hit"]

    def test_placement_matches_ring(self, fleet):
        body = {"dataset": "Uniform100M3:300"}
        points_fp = fleet.router.fingerprint(JobSpec.from_dict(body))
        expected = fleet.router.ring.node_for(points_fp).name
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == expected

    def test_inline_points_route_consistently(self, fleet, rng):
        points = rng.random((150, 2))
        first = fleet.router.submit({"points": points.tolist()})
        _await(fleet.router, first)
        second = fleet.router.submit({"points": points.tolist(),
                                      "algorithm": "hdbscan"})
        # Same point set, different algorithm: same node (shared tree
        # tier), and the tree tier answers there.
        assert second["node"] == first["node"]
        result, _ = _await(fleet.router, second)
        assert result["status"] == "done", result.get("error")
        assert result["cache"]["tree_hit"]

    def test_bad_spec_rejected_locally(self, fleet):
        with pytest.raises(InvalidInputError):
            fleet.router.submit({"dataset": "Uniform100M2:100",
                                 "algorithm": "kmeans"})
        # No node saw the request.
        stats = fleet.router.stats()
        assert stats["fleet"]["jobs"].get("total", 0) == 0

    def test_unknown_job_id(self, fleet):
        with pytest.raises(InvalidInputError):
            fleet.router.job("job-424242")


class TestRouterFailover:
    def _spec_owned_by(self, fleet, name):
        """A dataset body whose ring primary is node ``name``."""
        for n in range(300, 400):
            body = {"dataset": f"Uniform100M2:{n}"}
            fp = fleet.router.fingerprint(JobSpec.from_dict(body))
            if fleet.router.ring.node_for(fp).name == name:
                return body
        raise AssertionError(f"no probe spec owned by {name}")

    def test_submit_fails_over_to_next_node(self, fleet):
        victim = "node-1"
        body = self._spec_owned_by(fleet, victim)
        fleet.kill(victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] != victim
        result, _ = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        assert fleet.router.stats()["router"]["failovers"] >= 1

    def test_dead_node_recovery_on_poll(self, fleet):
        victim = "node-2"
        body = self._spec_owned_by(fleet, victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == victim
        _await(fleet.router, accepted)
        fleet.kill(victim)
        # The node (and its memory) is gone; the router must resubmit the
        # retained spec to a survivor and still answer — byte-identically,
        # because jobs are pure functions of their spec.
        result, node = fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert node != victim
        assert result["status"] == "done", result.get("error")
        reference = execute_spec(
            make_exec_spec(JobSpec.from_dict(body)))["payload"]
        assert canonical_payload_bytes(result["payload"]) == \
            canonical_payload_bytes(reference)
        assert fleet.router.stats()["router"]["resubmits"] >= 1

    def test_stale_recovery_does_not_redispatch(self, fleet):
        # A poller that saw the OLD assignment fail must not trigger a
        # second recovery once another poller already moved the route —
        # on a small fleet that would exclude the healthy node (503) or
        # double-execute the job.
        victim = "node-2"
        body = self._spec_owned_by(fleet, victim)
        accepted = fleet.router.submit(dict(body))
        assert accepted["node"] == victim
        _await(fleet.router, accepted)
        fleet.kill(victim)
        result, node = fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert result["status"] == "done"
        resubmits = fleet.router.stats()["router"]["resubmits"]
        route = fleet.router._route(accepted["job_id"])
        # Simulate the racing poller: it observed `victim` failing, but
        # the route has already been recovered elsewhere.
        recovered = fleet.router._recover(route, victim, wait_s=60.0)
        assert recovered["status"] == "done"
        assert route.node_name == node  # assignment untouched
        assert fleet.router.stats()["router"]["resubmits"] == resubmits

    def test_all_nodes_down_is_cluster_error(self, fleet):
        for name in ("node-0", "node-1", "node-2"):
            fleet.kill(name)
        with pytest.raises((NodeUnavailableError, ClusterError)):
            fleet.router.submit({"dataset": "Uniform100M2:100"})


class TestFleetStats:
    def test_aggregates_pool_across_nodes(self, fleet):
        for n in (300, 310, 320, 300, 310):  # two repeats
            accepted = fleet.router.submit({"dataset": f"Uniform100M2:{n}"})
            _await(fleet.router, accepted)
        stats = fleet.router.stats()
        assert stats["fleet"]["nodes_reachable"] == 3
        assert stats["fleet"]["jobs"]["done"] == 5
        # Two result hits out of five lookups, pooled across the fleet.
        assert stats["fleet"]["result_cache"]["hit_rate"] == \
            pytest.approx(0.4)
        assert stats["router"]["jobs_routed"] == 5
        assert sum(stats["router"]["routed_by_node"].values()) == 5
        assert stats["fleet"]["mfeatures_per_sec"] >= 0.0

    def test_healthz_degrades_when_a_node_dies(self, fleet):
        assert fleet.router.healthz()["status"] == "ok"
        fleet.kill("node-0")
        health = fleet.router.healthz()
        assert health["status"] == "degraded"
        assert health["nodes_up"] == 2
        down = [n for n in health["nodes"] if n["name"] == "node-0"]
        assert down and not down[0]["reachable"]

    def test_admin_flush_fans_out(self, fleet):
        accepted = fleet.router.submit({"dataset": "Uniform100M2:350"})
        _await(fleet.router, accepted)
        report = fleet.router.flush()
        assert report["status"] == "ok"
        assert len(report["nodes"]) == 3
        repeat = fleet.router.submit({"dataset": "Uniform100M2:350"})
        result, _ = _await(fleet.router, repeat)
        assert not result["cache"]["result_hit"]

    def test_admin_compact_fans_out(self, fleet):
        report = fleet.router.compact()
        assert report["status"] == "ok"
        for entry in report["nodes"]:
            assert entry["compacted"]["journal_lines_after"] >= 0


@pytest.fixture
def routed_api(fleet):
    """The router's own HTTP front end; yields its base URL."""
    server = create_router_server(fleet.router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def _get(url):
    with urllib.request.urlopen(url, timeout=120) as resp:
        return resp.status, json.loads(resp.read()), resp.headers


def _post(url, obj=None):
    data = json.dumps(obj).encode() if obj is not None else b""
    req = urllib.request.Request(
        url, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read()), resp.headers


class TestRouterHTTP:
    def test_same_wire_protocol_as_a_node(self, routed_api):
        status, accepted, headers = _post(f"{routed_api}/v1/jobs",
                                          {"dataset": "Uniform100M2:300"})
        assert status == 202
        assert accepted["status"] == "pending"
        assert headers["X-Repro-Node"] == accepted["node"]
        status, result, headers = _get(
            f"{routed_api}/v1/jobs/{accepted['job_id']}?wait_s=60")
        assert status == 200
        assert result["status"] == "done"
        assert result["job_id"] == accepted["job_id"]
        assert headers["X-Repro-Node"] == accepted["node"]

    def test_bad_spec_is_400(self, routed_api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{routed_api}/v1/jobs", {"dataset": "Uniform100M2:50",
                                            "algorithm": "kmeans"})
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, routed_api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{routed_api}/v1/jobs/job-424242")
        assert excinfo.value.code == 404

    def test_stats_and_healthz_documents(self, routed_api):
        _, health, _ = _get(f"{routed_api}/v1/healthz")
        assert health["role"] == "router"
        assert health["status"] == "ok"
        _, stats, _ = _get(f"{routed_api}/v1/stats")
        assert stats["role"] == "router"
        assert "fleet" in stats and "router" in stats

    def test_admin_flush_bad_tier_is_400_not_503(self, routed_api, fleet):
        # Every node rejects the tier with a 400: the router must relay
        # the client error, not convert it into unavailability — and the
        # unanimous 4xx must not poison the fleet's health view.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{routed_api}/v1/admin/flush", {"tier": "everything"})
        assert excinfo.value.code == 400
        assert all(node.healthy for node in fleet.router.ring.nodes)

    def test_admin_flush_per_tier_over_http(self, routed_api):
        _, accepted, _ = _post(f"{routed_api}/v1/jobs",
                               {"dataset": "Uniform100M2:420"})
        _, result, _ = _get(
            f"{routed_api}/v1/jobs/{accepted['job_id']}?wait_s=60")
        assert result["status"] == "done"
        status, report, _ = _post(f"{routed_api}/v1/admin/flush",
                                  {"tier": "bvh"})
        assert status == 200
        assert report["status"] == "ok"
        # The tree tier is gone everywhere, the result tier is not: the
        # repeat is still a result hit but would rebuild its tree.
        _, repeat, _ = _post(f"{routed_api}/v1/jobs",
                             {"dataset": "Uniform100M2:420"})
        _, result, _ = _get(
            f"{routed_api}/v1/jobs/{repeat['job_id']}?wait_s=60")
        assert result["cache"]["result_hit"]


class TestFingerprintSpec:
    def test_matches_engine_keying(self, rng):
        points = rng.random((60, 3))
        spec = JobSpec(points=points)
        from repro.store import fingerprint_array
        assert fingerprint_spec(spec) == \
            fingerprint_array(np.asarray(points, dtype=np.float64))

    def test_dataset_and_inline_agree(self):
        from repro.data import generate_from_spec
        spec = JobSpec(dataset="Uniform100M2:123")
        inline = JobSpec(points=generate_from_spec("Uniform100M2:123"))
        assert fingerprint_spec(spec) == fingerprint_spec(inline)

    def test_result_key_derivation(self):
        spec = JobSpec(dataset="Uniform100M2:77")
        fp = fingerprint_spec(spec)
        key = combine_fingerprint(fp, spec.params_key())
        assert len(key) == 64 and key != fp


class TestNodeClient:
    def test_unreachable_node_raises_unavailable(self):
        client = NodeClient(Node("http://127.0.0.1:9", name="void"),
                            timeout=0.5, retries=0)
        with pytest.raises(NodeUnavailableError):
            client.healthz()

    def test_rejects_bad_config(self):
        node = Node("http://h:1")
        with pytest.raises(ClusterError):
            NodeClient(node, timeout=0.0)
        with pytest.raises(ClusterError):
            NodeClient(node, retries=-1)


class TestRouterCoalescing:
    """Identical in-flight specs share one upstream job."""

    def test_second_submit_rides_first(self, fleet):
        body = {"dataset": "Uniform100M2:600", "algorithm": "mrd_emst",
                "k_pts": 4}
        first = fleet.router.submit(dict(body))
        # Submitted again before any poll observed completion: the router
        # must reuse the in-flight upstream job, not dispatch a second.
        second = fleet.router.submit(dict(body))
        assert second["job_id"] != first["job_id"]
        assert second["node"] == first["node"]
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 1
        # Exactly one upstream job was dispatched for the pair.
        assert stats["routed_by_node"][first["node"]] == 1
        res_a, _ = _await(fleet.router, first)
        res_b, _ = _await(fleet.router, second)
        assert res_a["status"] == "done", res_a.get("error")
        assert res_b["status"] == "done", res_b.get("error")
        assert canonical_payload_bytes(res_b["payload"]) == \
            canonical_payload_bytes(res_a["payload"])

    def test_terminal_poll_clears_inflight(self, fleet):
        body = {"dataset": "Uniform100M2:550"}
        first = fleet.router.submit(dict(body))
        _await(fleet.router, first)  # observed done -> entry cleared
        third = fleet.router.submit(dict(body))
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 0
        # The repeat dispatched upstream (and hits the node's result
        # cache there) instead of riding a finished job.
        result, _ = _await(fleet.router, third)
        assert result["cache"]["result_hit"]

    def test_different_params_do_not_coalesce(self, fleet):
        base = {"dataset": "Uniform100M2:500"}
        first = fleet.router.submit(dict(base))
        other = fleet.router.submit({**base, "algorithm": "mrd_emst",
                                     "k_pts": 4})
        stats = fleet.router.stats()["router"]
        assert stats["coalesced"] == 0
        _await(fleet.router, first)
        result, _ = _await(fleet.router, other)
        assert result["status"] == "done", result.get("error")


class TestReplicaHomes:
    """Placement properties of the replicated home set (homes(key, k))."""

    def _ring(self, count=5):
        return HashRing([Node(f"http://h:{i}", name=f"n{i}")
                         for i in range(count)])

    def test_homes_are_a_distinct_preference_prefix(self):
        ring = self._ring()
        for key in _keys(60):
            homes = [node.name for node in ring.homes(key, 3)]
            assert len(homes) == 3 and len(set(homes)) == 3
            preference = [node.name for node in ring.preference(key)]
            assert preference[:3] == homes

    def test_homes_skip_down_nodes(self):
        ring = self._ring()
        ring.get("n1").mark_down("probe failed")
        for key in _keys(60):
            names = [node.name for node in ring.homes(key, 3)]
            assert "n1" not in names
            assert len(names) == 3 and len(set(names)) == 3
        # healthy_only=False is the pure placement function: health is
        # invisible to it, so rebalance planning still sees n1's homes.
        assert any("n1" in [node.name for node
                            in ring.homes(key, 3, healthy_only=False)]
                   for key in _keys(60))

    def test_homes_shrink_when_membership_is_small(self):
        ring = self._ring(2)
        assert len(ring.homes("k", 5)) == 2
        ring.get("n0").mark_down("dead")
        assert [node.name for node in ring.homes("k", 5)] == ["n1"]

    def test_bad_k_raises(self):
        with pytest.raises(InvalidInputError):
            self._ring().homes("k", 0)

    def test_add_moves_bounded_replica_sets_and_only_toward_new(self):
        keys = _keys(600)
        ring = self._ring(5)
        before = {key: frozenset(n.name for n in ring.homes(key, 2))
                  for key in keys}
        ring.add(Node("http://h:9", name="n9"))
        after = {key: frozenset(n.name for n in ring.homes(key, 2))
                 for key in keys}
        changed = sum(before[key] != after[key] for key in keys)
        # Ideal: n9 takes ~1/6 of each of the two replica slots (~1/3 of
        # sets touched); far below the ~5/6 a reshuffle would move.
        assert changed / len(keys) < 0.55
        for key in keys:
            # A surviving pair never swaps members between themselves:
            # the only way a set changes is by gaining the new node.
            assert after[key] - before[key] <= {"n9"}

    def test_remove_only_touches_sets_that_held_the_node(self):
        keys = _keys(600)
        ring = self._ring(5)
        before = {key: frozenset(n.name for n in ring.homes(key, 2))
                  for key in keys}
        ring.remove("n2")
        after = {key: frozenset(n.name for n in ring.homes(key, 2))
                 for key in keys}
        changed = 0
        for key in keys:
            if "n2" not in before[key]:
                assert after[key] == before[key]
            else:
                changed += 1
                assert "n2" not in after[key]
                # The survivor of the pair keeps its copy.
                assert before[key] - {"n2"} <= after[key]
        # ~2/5 of sets held n2 (one of two slots over five nodes).
        assert changed / len(keys) < 0.6

    def test_reweight_moves_bounded_replica_sets(self):
        keys = _keys(600)
        ring = self._ring(5)
        before = {key: frozenset(n.name for n in ring.homes(key, 2))
                  for key in keys}
        ring.remove("n0")
        ring.add(Node("http://h:0", name="n0", weight=2.0))
        after = {key: frozenset(n.name for n in ring.homes(key, 2))
                 for key in keys}
        changed = sum(before[key] != after[key] for key in keys)
        # Doubling one weight grows n0's share of each slot from 1/5 to
        # 1/3 — movement tracks that delta, not a reshuffle.
        assert changed / len(keys) < 0.5
        # Monotone: no set LOSES n0 (its scores only went up).
        for key in keys:
            if "n0" in before[key]:
                assert "n0" in after[key]


class TestBackoff:
    """The deterministic retry-pacing curve (no RNG by design)."""

    def test_deterministic_and_within_envelope(self):
        for attempt in range(1, 12):
            nominal = min(BACKOFF_BASE * 2 ** (attempt - 1), BACKOFF_CAP)
            delay = backoff_delay(attempt)
            assert delay == backoff_delay(attempt)  # no hidden state
            assert 0.5 * nominal <= delay <= nominal

    def test_cap_holds_for_large_attempts(self):
        assert backoff_delay(50) <= BACKOFF_CAP

    def test_jitter_decorrelates_equal_nominals(self):
        # Attempts 7 and 8 share the capped nominal; the attempt-counter
        # jitter must still separate them.
        assert backoff_delay(7) != backoff_delay(8)

    def test_retry_after_hint_wins_and_is_capped(self):
        assert backoff_delay(1, retry_after=3.0) == 3.0
        assert backoff_delay(9, retry_after=0.25) == 0.25
        assert backoff_delay(1, retry_after=1e9) == RETRY_AFTER_CAP
        # A non-positive hint is no hint: back to the curve.
        assert backoff_delay(2, retry_after=0.0) == backoff_delay(2)

    def test_bad_attempt_raises(self):
        with pytest.raises(ClusterError):
            backoff_delay(0)


class TestCoolOffReprobe:
    """A recovered node rejoins on its first post-cool-off routing hit."""

    def test_recovered_node_rejoins_promptly(self, fleet):
        router = fleet.router
        router.retry_down_after = 0.2
        node = router.ring.get("node-1")
        node.mark_down("transient blip")  # the server is actually fine
        # Inside the cool-off the node is shunned, and stays marked down.
        assert "node-1" not in [n.name for n in router._candidates("k")]
        assert not node.healthy
        time.sleep(0.25)
        # First preference hit after expiry: the healthz re-probe runs,
        # succeeds, and flips the node healthy *fleet-wide* — replica
        # placement sees the recovery, not just this one dispatch.
        assert "node-1" in [n.name for n in router._candidates("k")]
        assert node.healthy
        assert router._reprobes_c.value(outcome="up") >= 1

    def test_still_dead_node_restarts_its_cooloff(self, fleet):
        router = fleet.router
        router.retry_down_after = 0.2
        fleet.kill("node-2")
        node = router.ring.get("node-2")
        node.mark_down("killed")
        time.sleep(0.25)
        assert "node-2" not in [n.name for n in router._candidates("k")]
        assert not node.healthy
        # The failed probe reset the clock: the node is freshly shunned.
        assert time.monotonic() - node.last_failure_at < 0.2
        assert router._reprobes_c.value(outcome="down") >= 1


@pytest.fixture
def replicated_fleet(tmp_path):
    """Three peer-wired nodes + a replicas=2 router; yields a handle."""
    engines, servers = [], []
    for i in range(3):
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / f"node-{i}"))
        server = create_server(engine, node_name=f"node-{i}")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        engines.append(engine)
        servers.append(server)
    urls = [f"http://127.0.0.1:{server.server_address[1]}"
            for server in servers]
    for i, engine in enumerate(engines):
        engine.set_peers([url for j, url in enumerate(urls) if j != i],
                         timeout=10.0)
    nodes = [Node(url, name=f"node-{i}") for i, url in enumerate(urls)]
    router = ClusterRouter(nodes, timeout=30.0, replicas=2)

    class Fleet:
        pass

    handle = Fleet()
    handle.router = router
    handle.nodes = nodes
    handle.engines = engines
    handle.servers = servers
    handle.urls = urls
    handle.down = set()

    def kill(name):
        index = int(name.rsplit("-", 1)[1])
        servers[index].shutdown()
        servers[index].server_close()
        engines[index].close()
        handle.down.add(name)

    handle.kill = kill
    try:
        yield handle
    finally:
        router.close()
        for i, server in enumerate(servers):
            if f"node-{i}" not in handle.down:
                server.shutdown()
                server.server_close()
                engines[i].close()


def _drain_replication(router, timeout=60.0):
    deadline = time.monotonic() + timeout
    while router.replica_pending():
        assert time.monotonic() < deadline, "replication never drained"
        time.sleep(0.05)


def _flat_span_names(trace):
    names = []

    def walk(span):
        names.append(span.get("name"))
        for child in span.get("children") or []:
            walk(child)

    for span in trace.get("spans") or []:
        walk(span)
    return names


class TestReplication:
    def test_write_through_warms_every_home(self, replicated_fleet):
        fleet = replicated_fleet
        body = {"dataset": "Uniform100M2:640", "algorithm": "mrd_emst",
                "k_pts": 4}
        accepted = fleet.router.submit(dict(body))
        result, node = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        _drain_replication(fleet.router)
        spec = JobSpec.from_dict(body)
        points_fp = fleet.router.fingerprint(spec)
        homes = [n.name for n in fleet.router.ring.homes(points_fp, 2)]
        assert node == homes[0]
        engines = {f"node-{i}": engine
                   for i, engine in enumerate(fleet.engines)}
        primary, secondary = engines[homes[0]], engines[homes[1]]
        for tier, params in (("result", spec.params_key()),
                             ("tree", spec.tree_key()),
                             ("core", spec.core_key())):
            key = combine_fingerprint(points_fp, params)
            copied = secondary.artifact_bytes(tier, key)
            assert copied is not None, f"{tier} replica missing"
            assert copied == primary.artifact_bytes(tier, key)
        assert fleet.router._replica_writes_c.value(outcome="ok") >= 3
        stats = fleet.router.stats()["router"]
        assert stats["replicas"] == 2
        assert stats["replica_pending"] == 0

    def test_node_death_costs_zero_recompute(self, replicated_fleet):
        fleet = replicated_fleet
        body = {"dataset": "Uniform100M2:660", "algorithm": "mrd_emst",
                "k_pts": 4}
        first = fleet.router.submit(dict(body))
        result, _node = _await(fleet.router, first)
        assert result["status"] == "done", result.get("error")
        _drain_replication(fleet.router)
        points_fp = fleet.router.fingerprint(JobSpec.from_dict(body))
        homes = [n.name for n in fleet.router.ring.homes(points_fp, 2)]
        fleet.kill(homes[0])
        repeat = fleet.router.submit(dict(body))
        assert repeat["node"] == homes[1]  # failover == replica order
        recovered, _ = _await(fleet.router, repeat)
        assert recovered["status"] == "done", recovered.get("error")
        # The surviving home answered from its replicated disk tier:
        # a result hit, not a recompute.
        assert recovered["cache"]["result_hit"]
        assert recovered["cache"]["result_disk_hit"]
        assert canonical_payload_bytes(recovered["payload"]) == \
            canonical_payload_bytes(result["payload"])

    def test_k1_router_never_replicates(self, fleet):
        accepted = fleet.router.submit({"dataset": "Uniform100M2:700"})
        _await(fleet.router, accepted)
        assert fleet.router.replica_pending() == 0
        assert fleet.router._replica_worker is None  # never even started
        stats = fleet.router.stats()["router"]
        assert stats["replicas"] == 1
        assert stats["replica_pending"] == 0

    def test_rejects_bad_replicas(self, fleet):
        with pytest.raises(InvalidInputError):
            ClusterRouter(fleet.nodes, replicas=0)


class TestPeerFetch:
    def test_miss_reads_through_peer_store(self, tmp_path):
        a = Engine(max_workers=1, batch_window=0.0,
                   store_dir=str(tmp_path / "a"))
        server_a = create_server(a, node_name="a")
        threading.Thread(target=server_a.serve_forever,
                         daemon=True).start()
        b = Engine(max_workers=1, batch_window=0.0,
                   store_dir=str(tmp_path / "b"))
        b.set_peers(
            [f"http://127.0.0.1:{server_a.server_address[1]}"],
            timeout=10.0)
        try:
            spec = {"dataset": "Uniform100M2:360",
                    "algorithm": "mrd_emst", "k_pts": 4}
            done_a = a.result(a.submit(JobSpec.from_dict(spec)),
                              timeout=60)
            done_b = b.result(b.submit(JobSpec.from_dict(spec)),
                              timeout=60)
            assert done_b.status.value == "done", done_b.error
            assert canonical_payload_bytes(done_b.payload) == \
                canonical_payload_bytes(done_a.payload)
            # Served through the peer level, not recomputed and not a
            # local hit; the blob also spilled into b's own store.
            assert b.result_cache.peer_hits == 1
            assert b.result_cache.stats()["peer_hits"] == 1
            assert b._peer_fetch_c.value(tier="result",
                                         outcome="hit") == 1
            job_spec = JobSpec.from_dict(spec)
            result_key = combine_fingerprint(
                fingerprint_spec(job_spec), job_spec.params_key())
            assert b.artifact_bytes("result", result_key) is not None
            # The trace says where the artifact came from.
            assert done_b.trace is not None
            assert "peer_fetch" in _flat_span_names(done_b.trace)
        finally:
            server_a.shutdown()
            server_a.server_close()
            a.close()
            b.close()

    def test_dead_peer_degrades_to_recompute(self, tmp_path):
        b = Engine(max_workers=1, batch_window=0.0,
                   store_dir=str(tmp_path / "b"))
        b.set_peers(["http://127.0.0.1:9"], timeout=0.5)
        try:
            done = b.result(
                b.submit(JobSpec(dataset="Uniform100M2:320")), timeout=60)
            assert done.status.value == "done", done.error
            assert not done.cache["result_hit"]
            assert b._peer_fetch_c.value(tier="result",
                                         outcome="error") >= 1
        finally:
            b.close()

    def test_obs_off_disables_peer_telemetry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        a = Engine(max_workers=1, batch_window=0.0,
                   store_dir=str(tmp_path / "a"))
        server_a = create_server(a, node_name="a")
        threading.Thread(target=server_a.serve_forever,
                         daemon=True).start()
        b = Engine(max_workers=1, batch_window=0.0,
                   store_dir=str(tmp_path / "b"))
        b.set_peers(
            [f"http://127.0.0.1:{server_a.server_address[1]}"],
            timeout=10.0)
        try:
            spec = {"dataset": "Uniform100M2:340"}
            a.result(a.submit(JobSpec.from_dict(spec)), timeout=60)
            done_b = b.result(b.submit(JobSpec.from_dict(spec)),
                              timeout=60)
            assert done_b.status.value == "done", done_b.error
            # The read-through still works; the counters stay silent.
            assert b.result_cache.peer_hits == 1
            assert not b.registry.enabled
            assert b._peer_fetch_c.value(tier="result", outcome="hit") == 0
        finally:
            server_a.shutdown()
            server_a.server_close()
            a.close()
            b.close()


class TestArtifactAPI:
    def _warm_key(self, fleet, n=460):
        body = {"dataset": f"Uniform100M2:{n}"}
        accepted = fleet.router.submit(dict(body))
        result, node = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        spec = JobSpec.from_dict(body)
        key = combine_fingerprint(fleet.router.fingerprint(spec),
                                  spec.params_key())
        return key, node

    def test_blob_roundtrip_over_http(self, fleet):
        key, node = self._warm_key(fleet)
        holder = next(n for n in fleet.nodes if n.name == node)
        client = NodeClient(holder, timeout=10.0, retries=0)
        listing = client.artifact_list()
        assert listing["node"] == node
        assert any(entry["tier"] == "result" and entry["key"] == key
                   for entry in listing["artifacts"])
        data = client.artifact("result", key)
        engine = fleet.engines[int(node.rsplit("-", 1)[1])]
        assert data == engine.artifact_bytes("result", key)
        # Push the blob to a sibling, read it back byte-identically.
        other = next(n for n in fleet.nodes if n.name != node)
        sibling = NodeClient(other, timeout=10.0, retries=0)
        receipt = sibling.artifact_put("result", key, data)
        assert receipt["stored"] is True
        assert sibling.artifact("result", key) == data

    def test_bad_refs_rejected(self, fleet):
        client = NodeClient(fleet.nodes[0], timeout=10.0, retries=0)
        with pytest.raises(NodeHTTPError) as excinfo:
            client.artifact("blobs", "0" * 64)  # unknown tier
        assert excinfo.value.code == 400
        with pytest.raises(NodeHTTPError) as excinfo:
            client.artifact("result", "zz" * 32)  # non-hex key
        assert excinfo.value.code == 400
        with pytest.raises(NodeHTTPError) as excinfo:
            client.artifact("result", "0" * 64)  # absent
        assert excinfo.value.code == 404
        with pytest.raises(NodeHTTPError) as excinfo:
            client.artifact_put("result", "0" * 64, b"")  # empty body
        assert excinfo.value.code == 400
        with pytest.raises(NodeHTTPError) as excinfo:
            client.artifact_put("result", "0" * 64, b"not an npz blob")
        assert excinfo.value.code == 400
        # The garbage never reached the store.
        assert fleet.engines[0].artifact_bytes("result", "0" * 64) is None

    def test_router_serves_reads_refuses_writes(self, routed_api, fleet):
        key, node = self._warm_key(fleet, n=470)
        with urllib.request.urlopen(
                f"{routed_api}/v1/artifacts/result/{key}",
                timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == \
                "application/octet-stream"
            assert resp.headers["X-Repro-Node"] == node
            data = resp.read()
        engine = fleet.engines[int(node.rsplit("-", 1)[1])]
        assert data == engine.artifact_bytes("result", key)
        _, listing, _ = _get(f"{routed_api}/v1/artifacts")
        assert {entry["node"] for entry in listing["nodes"]} == \
            {"node-0", "node-1", "node-2"}
        request = urllib.request.Request(
            f"{routed_api}/v1/artifacts/result/{key}", data=data,
            method="POST",
            headers={"Content-Type": "application/octet-stream"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestRebalance:
    def _inventories(self, engines_by_name):
        return {name: engine.artifact_entries()
                for name, engine in engines_by_name.items()}

    def test_copies_stranded_artifacts_to_new_homes(self, fleet, tmp_path):
        for n in (300, 310, 320, 330):
            accepted = fleet.router.submit({"dataset": f"Uniform100M2:{n}"})
            result, _ = _await(fleet.router, accepted)
            assert result["status"] == "done", result.get("error")
        # A replacement node joins with an empty store.
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / "node-3"))
        server = create_server(engine, node_name="node-3")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            members = list(fleet.nodes) + [
                Node(f"http://127.0.0.1:{server.server_address[1]}",
                     name="node-3")]
            journal = str(tmp_path / "rebalance.journal.jsonl")
            summary = run_rebalance(members, replicas=2,
                                    journal_path=journal)
            assert summary["copied"] > 0
            assert summary["failed"] == 0
            assert summary["unreachable"] == []
            # Every artifact now sits on every one of its ring homes.
            engines = {f"node-{i}": e
                       for i, e in enumerate(fleet.engines)}
            engines["node-3"] = engine
            ring = HashRing(members)
            for name, entries in self._inventories(engines).items():
                for entry in entries:
                    tier, key = entry["tier"], entry["key"]
                    for home in ring.homes(key, 2, healthy_only=False):
                        assert engines[home.name].artifact_bytes(
                            tier, key) is not None, \
                            f"{tier}/{key[:12]} missing on {home.name}"
            # Convergence: a rerun finds nothing left to copy.
            again = run_rebalance(members, replicas=2,
                                  journal_path=journal)
            assert again["planned"] == 0
            # The new node ingested real work, and counted it.
            assert engine.artifact_entries()
            assert engine._rebalance_copies_c.value() > 0
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_journal_skips_completed_copies_on_resume(self, fleet,
                                                      tmp_path):
        accepted = fleet.router.submit({"dataset": "Uniform100M2:305"})
        result, _ = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        engines = {f"node-{i}": e for i, e in enumerate(fleet.engines)}
        ring = HashRing(fleet.nodes)
        plan = plan_rebalance(self._inventories(engines), ring, 2)
        assert plan  # replicas=2 over a k=1 fleet always has copies
        # Pretend a previous run completed the first copy, then crashed.
        journal = str(tmp_path / "resume.journal.jsonl")
        first = plan[0]
        append_journal(journal, {"tier": first["tier"],
                                 "key": first["key"],
                                 "target": first["target"]})
        summary = run_rebalance(fleet.nodes, replicas=2,
                                journal_path=journal)
        assert summary["skipped"] == 1
        assert summary["copied"] == len(plan) - 1
        # The journaled copy was genuinely short-circuited: its target
        # still lacks the blob.
        assert engines[first["target"]].artifact_bytes(
            first["tier"], first["key"]) is None

    def test_journal_tolerates_torn_final_line(self, tmp_path):
        path = str(tmp_path / "torn.journal.jsonl")
        append_journal(path, {"tier": "result", "key": "k1",
                              "target": "n1"})
        append_journal(path, {"tier": "tree", "key": "k2",
                              "target": "n2"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"tier": "result", "ke')  # crash mid-append
        assert load_journal(path) == {("result", "k1", "n1"),
                                      ("tree", "k2", "n2")}
        assert load_journal(str(tmp_path / "absent.jsonl")) == set()

    def test_unreachable_member_warns_but_converges_rest(self, fleet,
                                                         tmp_path):
        accepted = fleet.router.submit({"dataset": "Uniform100M2:315"})
        result, _ = _await(fleet.router, accepted)
        assert result["status"] == "done", result.get("error")
        members = list(fleet.nodes) + [Node("http://127.0.0.1:9",
                                            name="node-9")]
        warnings = []
        summary = run_rebalance(members, replicas=2,
                                journal_path=str(tmp_path / "j.jsonl"),
                                timeout=0.5, log=warnings.append)
        assert summary["unreachable"] == ["node-9"]
        assert any("node-9" in line for line in warnings)
        # Copies between live members still happened where planned.
        assert summary["copied"] + summary["failed"] + \
            summary["skipped"] == summary["planned"]
