"""Tests of the Borůvka iteration structure and its paper-stated properties."""

import numpy as np

from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst
from repro.data import hacc, uniform


class TestRoundStructure:
    def test_components_at_least_halve(self, rng):
        # Every component merges with at least one other each round.
        result = emst(rng.random((512, 2)))
        for r in result.rounds:
            assert r.components_after <= r.components_before // 2 \
                or r.components_after == 1

    def test_chains_merge_faster_than_halving(self):
        # Section 2: chains let Borůvka need far fewer than log2(n)
        # rounds in practice.
        pts = hacc(4000, seed=2)
        result = emst(pts)
        assert result.n_iterations < np.log2(4000)

    def test_late_rounds_cheaper_with_optimizations(self):
        # Section 3: "the cost of Borůvka's iterations tends to
        # progressively decrease, with later iterations typically taking
        # a small fraction of the earlier ones."
        pts = uniform(8000, 3, seed=1)
        result = emst(pts)
        evals = [r.distance_evals for r in result.rounds]
        assert evals[-1] < 0.5 * max(evals)

    def test_subtree_skipping_helps_late_rounds_most(self):
        # Section 3: "the benefit of this approach is limited on the
        # earlier iterations ... it is critical on the later iterations."
        pts = uniform(4000, 2, seed=3)
        on = emst(pts).rounds
        off = emst(pts, config=SingleTreeConfig(
            subtree_skipping=False)).rounds
        n_common = min(len(on), len(off))
        ratio_first = off[0].nodes_visited / max(on[0].nodes_visited, 1)
        ratio_late = (off[n_common - 1].nodes_visited
                      / max(on[n_common - 1].nodes_visited, 1))
        assert ratio_late > ratio_first

    def test_bounds_cut_distance_evals_every_round(self):
        pts = uniform(4000, 2, seed=4)
        on = emst(pts).rounds
        off = emst(pts, config=SingleTreeConfig(
            component_bounds=False)).rounds
        total_on = sum(r.distance_evals for r in on)
        total_off = sum(r.distance_evals for r in off)
        assert total_on < 0.7 * total_off

    def test_round_work_recorded(self, rng):
        result = emst(rng.random((256, 3)))
        for r in result.rounds:
            assert r.distance_evals >= 0
            assert r.nodes_visited > 0
            assert r.warp_steps > 0
            assert r.lane_steps >= r.warp_steps

    def test_iterations_match_rounds(self, rng):
        result = emst(rng.random((300, 2)))
        assert result.rounds[-1].components_after == 1
        assert result.rounds[0].components_before == 300


class TestWorkScaling:
    def test_linear_work_growth(self):
        # Asymptotically linear cost (the paper's Figure 7 argument):
        # doubling n should not quadruple the distance evaluations.
        evals = []
        for n in (2000, 4000, 8000):
            result = emst(uniform(n, 3, seed=0))
            evals.append(result.total_counters.distance_evals)
        assert evals[1] < 3.0 * evals[0]
        assert evals[2] < 3.0 * evals[1]

    def test_distance_evals_per_point_bounded(self):
        # The optimizations keep per-point work ~constant: far below the
        # hundreds a naive implementation would need.
        for gen, name in ((uniform, "uniform"), (None, "hacc")):
            pts = hacc(10_000, seed=0) if gen is None \
                else uniform(10_000, 3, seed=0)
            result = emst(pts)
            per_point = result.total_counters.distance_evals / 10_000
            assert per_point < 40, (name, per_point)

    def test_divergence_factor_moderate(self):
        # Morton-presorted queries keep warps coherent: the measured
        # divergence stays far below the worst case of 32.
        result = emst(uniform(10_000, 3, seed=5))
        assert result.total_counters.divergence_factor < 6.0
