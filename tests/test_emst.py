"""End-to-end tests of the single-tree EMST (repro.core.emst)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.naive import brute_force_emst, brute_force_mrd_emst
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.errors import InvalidInputError
from repro.mst.validate import is_spanning_tree
from tests.conftest import finite_points

ALL_CONFIGS = [
    SingleTreeConfig(subtree_skipping=s, component_bounds=b)
    for s, b in itertools.product((True, False), repeat=2)
]


def assert_matches_oracle(points, result):
    u, v, w = brute_force_emst(points)
    assert is_spanning_tree(len(points), result.edges[:, 0],
                            result.edges[:, 1])
    assert result.total_weight == pytest.approx(float(w.sum()))
    got = {tuple(e) for e in result.edges.tolist()}
    ref = {(int(a), int(b)) for a, b in zip(u, v)}
    assert got == ref


class TestCorrectness:
    @pytest.mark.parametrize("n,d,seed", [
        (2, 2, 0), (3, 3, 1), (10, 2, 2), (50, 3, 3), (200, 2, 4),
        (333, 3, 5),
    ])
    def test_matches_oracle(self, n, d, seed):
        points = np.random.default_rng(seed).random((n, d))
        assert_matches_oracle(points, emst(points))

    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: f"skip={c.subtree_skipping},"
                                           f"bounds={c.component_bounds}")
    def test_optimizations_do_not_change_result(self, rng, config):
        points = rng.random((150, 3))
        result = emst(points, config=config)
        assert_matches_oracle(points, result)

    def test_integer_grid_ties(self):
        pts = np.array(list(itertools.product(range(7), range(7))),
                       dtype=float)
        result = emst(pts)
        assert result.total_weight == pytest.approx(48.0)
        assert_matches_oracle(pts, result)

    def test_grid_3d_ties(self):
        pts = np.array(list(itertools.product(range(4), repeat=3)),
                       dtype=float)
        assert_matches_oracle(pts, emst(pts))

    def test_duplicate_points(self, rng):
        pts = np.repeat(rng.random((10, 2)), 5, axis=0)
        result = emst(pts)
        assert_matches_oracle(pts, result)
        # Duplicates contribute zero-weight edges.
        assert np.count_nonzero(result.weights == 0.0) >= 40 - 10

    def test_collinear(self):
        pts = np.stack([np.linspace(0, 1, 40), np.zeros(40)], axis=1)
        result = emst(pts)
        assert result.total_weight == pytest.approx(1.0)

    def test_two_points(self):
        result = emst(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert result.edges.tolist() == [[0, 1]]
        assert result.weights[0] == pytest.approx(5.0)

    def test_single_point(self):
        result = emst(np.array([[1.0, 2.0]]))
        assert result.edges.shape == (0, 2)
        assert result.total_weight == 0.0

    def test_skewed_clusters(self, clustered_3d):
        assert_matches_oracle(clustered_3d, emst(clustered_3d))

    def test_low_resolution_morton_still_correct(self, rng):
        # Degenerate Z-curve (GeoLife pathology) affects speed only.
        pts = rng.random((120, 3))
        result = emst(pts, config=SingleTreeConfig(bits=2))
        assert_matches_oracle(pts, result)

    def test_huge_coordinates(self, rng):
        pts = rng.random((60, 2)) * 1e12
        result = emst(pts)
        assert is_spanning_tree(60, result.edges[:, 0], result.edges[:, 1])

    def test_tiny_coordinates(self, rng):
        pts = rng.random((60, 2)) * 1e-12
        assert_matches_oracle(pts, emst(pts))

    @given(finite_points(min_n=2, max_n=60))
    @settings(max_examples=20)
    def test_property_matches_oracle(self, pts):
        assert_matches_oracle(pts, emst(pts))


class TestResultMetadata:
    def test_edges_canonical_order(self, uniform_2d):
        result = emst(uniform_2d)
        assert np.all(result.edges[:, 0] < result.edges[:, 1])
        assert np.all(np.diff(result.weights) >= 0)

    def test_iteration_count_logarithmic(self, rng):
        pts = rng.random((1000, 2))
        result = emst(pts)
        assert 1 <= result.n_iterations <= np.ceil(np.log2(1000)) + 2

    def test_phases_present(self, uniform_3d):
        result = emst(uniform_3d)
        assert set(result.phases) == {"tree", "mst"}
        assert set(result.counters) == {"tree", "mst"}

    def test_round_stats(self, uniform_3d):
        result = emst(uniform_3d)
        assert len(result.rounds) == result.n_iterations
        comps = [r.components_before for r in result.rounds]
        assert comps[0] == len(uniform_3d)
        assert all(r.components_after < r.components_before
                   for r in result.rounds)
        assert result.rounds[-1].components_after == 1

    def test_rounds_can_be_disabled(self, uniform_2d):
        result = emst(uniform_2d,
                      config=SingleTreeConfig(record_rounds=False))
        assert result.rounds == []

    def test_counters_work_recorded(self, uniform_3d):
        result = emst(uniform_3d)
        total = result.total_counters
        assert total.distance_evals > 0
        assert total.sort_elements >= len(uniform_3d)
        assert total.divergence_factor >= 1.0

    def test_deterministic(self, rng):
        pts = rng.random((300, 3))
        r1 = emst(pts)
        r2 = emst(pts)
        assert np.array_equal(r1.edges, r2.edges)
        assert np.array_equal(r1.weights, r2.weights)

    def test_permutation_invariant_weight(self, rng):
        pts = rng.random((200, 2))
        perm = rng.permutation(200)
        r1 = emst(pts)
        r2 = emst(pts[perm])
        assert r1.total_weight == pytest.approx(r2.total_weight)


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(InvalidInputError):
            emst(np.zeros(5))

    def test_rejects_4d(self, rng):
        with pytest.raises(InvalidInputError):
            emst(rng.random((10, 4)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            emst(np.array([[0.0, np.nan]]))

    def test_rejects_inf(self):
        with pytest.raises(InvalidInputError):
            emst(np.array([[0.0, np.inf], [1.0, 1.0]]))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            emst(np.empty((0, 2)))


class TestMutualReachability:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 10])
    def test_matches_oracle(self, rng, k):
        pts = rng.random((80, 2))
        result = mutual_reachability_emst(pts, k)
        u, v, w = brute_force_mrd_emst(pts, k)
        assert result.total_weight == pytest.approx(float(w.sum()))
        assert is_spanning_tree(80, result.edges[:, 0], result.edges[:, 1])

    def test_k1_equals_euclidean(self, rng):
        pts = rng.random((100, 3))
        assert mutual_reachability_emst(pts, 1).total_weight == \
            pytest.approx(emst(pts).total_weight)

    def test_weight_nondecreasing_in_k(self, rng):
        pts = rng.random((120, 2))
        weights = [mutual_reachability_emst(pts, k).total_weight
                   for k in (1, 2, 4, 8)]
        assert all(b >= a - 1e-9 for a, b in zip(weights, weights[1:]))

    def test_core_phase_present(self, rng):
        result = mutual_reachability_emst(rng.random((50, 2)), 3)
        assert set(result.phases) == {"tree", "core", "mst"}
        assert result.counters["core"].distance_evals > 0

    def test_rejects_bad_k(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(InvalidInputError):
            mutual_reachability_emst(pts, 0)
        with pytest.raises(InvalidInputError):
            mutual_reachability_emst(pts, 11)

    def test_mrd_weights_at_least_euclidean(self, rng):
        pts = rng.random((60, 3))
        assert mutual_reachability_emst(pts, 5).total_weight >= \
            emst(pts).total_weight - 1e-9

    @given(finite_points(min_n=4, max_n=40))
    @settings(max_examples=15)
    def test_property_mrd_matches_oracle(self, pts):
        k = min(3, len(pts))
        result = mutual_reachability_emst(pts, k)
        _, _, w = brute_force_mrd_emst(pts, k)
        assert result.total_weight == pytest.approx(float(w.sum()))
