"""Tests for phase timing (repro.timing)."""

import time

import pytest

from repro.timing import PhaseTimer, stopwatch


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        assert timer.get("a") >= 0.0
        assert list(timer.totals) == ["a"]

    def test_order_is_first_entry(self):
        timer = PhaseTimer()
        with timer.phase("tree"):
            pass
        with timer.phase("mst"):
            pass
        with timer.phase("tree"):
            pass
        assert list(timer.totals) == ["tree", "mst"]

    def test_measures_time(self):
        timer = PhaseTimer()
        with timer.phase("sleep"):
            time.sleep(0.01)
        assert timer.get("sleep") >= 0.009

    def test_total(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total == 3.0

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("a", -1.0)

    def test_get_missing_is_zero(self):
        assert PhaseTimer().get("nope") == 0.0

    def test_merged_with(self):
        a = PhaseTimer({"x": 1.0})
        b = PhaseTimer({"x": 2.0, "y": 3.0})
        merged = a.merged_with(b)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        # Originals untouched.
        assert a.get("x") == 1.0

    def test_as_dict_is_copy(self):
        timer = PhaseTimer({"x": 1.0})
        d = timer.as_dict()
        d["x"] = 99.0
        assert timer.get("x") == 1.0

    def test_exception_still_records(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError
        assert "boom" in timer.totals


class TestStopwatch:
    def test_measures(self):
        with stopwatch() as sw:
            time.sleep(0.01)
        assert sw.seconds >= 0.009

    def test_zero_block(self):
        with stopwatch() as sw:
            pass
        assert sw.seconds >= 0.0
