"""Tests for the observability layer (repro.obs)."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRouter, Node
from repro.cluster.server import create_router_server
from repro.metrics import Histogram
from repro.obs import (
    TRACE_HEADER,
    EventLog,
    MetricsRegistry,
    format_trace,
    from_header,
    histogram_from_sample,
    make_span,
    make_trace,
    new_trace_id,
    parse_prometheus_text,
    render_prometheus,
    to_header,
)
from repro.service import Engine, JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec
from repro.service.server import create_server


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        jobs = reg.counter("repro_t_jobs_total", "jobs")
        jobs.inc()
        jobs.inc(3)
        assert jobs.value() == 4.0

    def test_labeled_counter_children_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_t_lookups_total", labels=("tier", "out"))
        fam.inc(tier="tree", out="hit")
        fam.inc(2, tier="tree", out="miss")
        assert fam.value(tier="tree", out="hit") == 1.0
        assert fam.value(tier="tree", out="miss") == 2.0

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_t_neg_total")
        with pytest.raises(ValueError):
            fam.inc(-1)

    def test_gauge_set(self):
        reg = MetricsRegistry()
        depth = reg.gauge("repro_t_depth")
        depth.set(7)
        depth.set(3)
        assert depth.value() == 3.0

    def test_fn_gauge_collected_at_scrape(self):
        reg = MetricsRegistry()
        state = {"n": 5}
        reg.gauge("repro_t_live", fn=lambda: state["n"])
        doc = reg.as_dict()
        (metric,) = [m for m in doc["metrics"] if m["name"] == "repro_t_live"]
        assert metric["samples"] == [{"labels": {}, "value": 5.0}]
        state["n"] = 9
        doc = reg.as_dict()
        (metric,) = [m for m in doc["metrics"] if m["name"] == "repro_t_live"]
        assert metric["samples"][0]["value"] == 9.0

    def test_histogram_observe_and_quantile(self):
        reg = MetricsRegistry()
        fam = reg.histogram("repro_t_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5):
            fam.observe(value)
        hist = fam.histogram()
        assert hist.count == 4
        assert 0.0 < hist.quantile(0.5) <= 0.1
        assert 0.1 < hist.quantile(0.99) <= 1.0

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_t_total", "help", labels=("x",))
        b = reg.counter("repro_t_total", "help", labels=("x",))
        assert a is b

    def test_registration_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_total", labels=("x",))
        with pytest.raises(ValueError):
            reg.gauge("repro_t_total")
        with pytest.raises(ValueError):
            reg.counter("repro_t_total", labels=("y",))

    def test_bad_metric_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name!")

    def test_disabled_registry_noops(self):
        reg = MetricsRegistry(enabled=False)
        fam = reg.counter("repro_t_total")
        fam.inc(10)
        hist = reg.histogram("repro_t_seconds")
        hist.observe(0.5)
        assert fam.value() == 0.0
        assert hist.histogram().count == 0

    def test_unlabeled_family_scrapes_zero_before_traffic(self):
        # A counter that has never fired must still expose a zero sample,
        # so dashboards see the series from the first scrape.
        reg = MetricsRegistry()
        reg.counter("repro_t_failed_total", "failures")
        parsed = parse_prometheus_text(reg.render_prometheus())
        assert parsed["repro_t_failed_total"] == [({}, 0.0)]

    def test_prometheus_render_parse_round_trip(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_t_total", labels=("tier",))
        fam.inc(2, tier="tree")
        hist = reg.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = reg.render_prometheus()
        parsed = parse_prometheus_text(text)
        assert ({"tier": "tree"}, 2.0) in parsed["repro_t_total"]
        buckets = {labels["le"]: value
                   for labels, value in parsed["repro_t_seconds_bucket"]}
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 2.0}
        assert parsed["repro_t_seconds_count"] == [({}, 2.0)]

    def test_multi_document_merge_keeps_one_type_block(self):
        # The fleet scrape merges router + node documents: one HELP/TYPE
        # block per family, node samples distinguished by a node= label.
        node_a, node_b = MetricsRegistry(), MetricsRegistry()
        node_a.counter("repro_t_total").inc(1)
        node_b.counter("repro_t_total").inc(2)
        text = render_prometheus([({"node": "a"}, node_a.as_dict()),
                                  ({"node": "b"}, node_b.as_dict())])
        assert text.count("# TYPE repro_t_total counter") == 1
        parsed = parse_prometheus_text(text)
        assert sorted(parsed["repro_t_total"], key=str) == [
            ({"node": "a"}, 1.0), ({"node": "b"}, 2.0)]

    def test_histogram_from_sample_round_trip(self):
        reg = MetricsRegistry()
        fam = reg.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        fam.observe(0.05)
        doc = reg.as_dict()
        (metric,) = [m for m in doc["metrics"]
                     if m["name"] == "repro_t_seconds"]
        hist = histogram_from_sample(metric["samples"][0])
        assert isinstance(hist, Histogram)
        assert hist.count == 1


class TestTrace:
    def test_header_round_trip(self):
        trace = make_trace(spans=[make_span("submit", node="n0", job="j1")])
        assert from_header(to_header(trace)) == trace

    def test_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert new_trace_id().startswith("tr-")

    def test_from_header_rejects_garbage(self):
        assert from_header(None) is None
        assert from_header("") is None
        assert from_header("not json{") is None
        assert from_header(json.dumps(["wrong", "shape"])) is None
        assert from_header(json.dumps({"trace_id": "t"})) is None

    def test_from_header_rejects_oversize(self):
        trace = make_trace(spans=[
            make_span("x", filler="y" * 70000)])
        assert from_header(to_header(trace)) is None

    def test_from_header_rejects_span_flood(self):
        trace = make_trace(spans=[make_span(f"s{i}") for i in range(1000)])
        assert from_header(to_header(trace)) is None

    def test_make_span_meta_and_children(self):
        child = make_span("inner", duration_s=0.1)
        span = make_span("outer", node="n0", children=[child], attempt=2)
        assert span["meta"] == {"attempt": 2}
        assert span["children"] == [child]
        assert "meta" not in child and "children" not in child

    def test_format_trace_renders_span_tree(self):
        trace = make_trace(spans=[
            make_span("route", node="n1", outcome="accepted"),
            make_span("executed", node="n1", duration_s=0.02,
                      children=[make_span("mst", node="n1",
                                          duration_s=0.01)])])
        text = format_trace(trace)
        assert trace["trace_id"] in text
        for token in ("route", "executed", "mst", "outcome=accepted"):
            assert token in text


class TestEventLog:
    def test_sampling_is_deterministic(self):
        log = EventLog(sample=0.5, max_buffer=1000)
        kept = sum(log.emit("e", i=i) for i in range(100))
        assert kept == 50
        assert log.stats()["sampled_out"] == 50

    def test_full_sampling_keeps_everything(self):
        log = EventLog(sample=1.0)
        assert all(log.emit("e") for _ in range(10))
        assert log.stats()["emitted"] == 10

    def test_buffer_is_bounded(self):
        log = EventLog(max_buffer=4)
        for i in range(10):
            log.emit("e", i=i)
        recent = log.recent()
        assert len(recent) == 4
        assert [r["i"] for r in recent] == [6, 7, 8, 9]

    def test_stream_receives_json_lines(self):
        stream = io.StringIO()
        log = EventLog(stream=stream)
        log.emit("http_access", path="/v1/jobs", code=202)
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["event"] == "http_access"
        assert record["code"] == 202


class TestEngineTracing:
    def _run(self, engine, body):
        job_id = engine.submit(JobSpec.from_dict(body))
        result = engine.result(job_id, timeout=60.0)
        assert result.status.value == "done", result.error
        return result

    def test_job_result_carries_span_tree(self):
        body = {"dataset": "Uniform100M2:300", "algorithm": "mrd_emst",
                "k_pts": 4}
        with Engine(max_workers=1, batch_window=0.001, obs=True) as engine:
            result = self._run(engine, body)
        names = [span["name"] for span in result.trace["spans"]]
        assert names == ["submit", "queued", "batched", "executed", "served"]
        executed = result.trace["spans"][3]
        assert executed["duration_s"] > 0
        phases = [child["name"] for child in executed["children"]]
        assert "mst" in phases
        counters = executed["meta"]["counters"]
        assert counters["distance_evals"] > 0

    def test_trace_survives_json_round_trip(self):
        with Engine(max_workers=1, batch_window=0.001, obs=True) as engine:
            result = self._run(engine, {"dataset": "Uniform100M2:310"})
        wire = json.loads(json.dumps(result.to_dict()))
        assert wire["trace"] == result.trace

    def test_obs_off_produces_no_trace(self):
        with Engine(max_workers=1, batch_window=0.001, obs=False) as engine:
            result = self._run(engine, {"dataset": "Uniform100M2:320"})
        assert result.trace is None

    def test_canonical_bytes_identical_with_and_without_obs(self):
        body = {"dataset": "Uniform100M2:330", "algorithm": "mrd_emst",
                "k_pts": 4}
        with Engine(max_workers=1, batch_window=0.001, obs=True) as on:
            traced = self._run(on, body)
        with Engine(max_workers=1, batch_window=0.001, obs=False) as off:
            plain = self._run(off, body)
        assert traced.trace is not None and plain.trace is None
        assert canonical_payload_bytes(traced.payload) == \
            canonical_payload_bytes(plain.payload)

    def test_trace_marks_replayed_phases_on_result_hit(self):
        body = {"dataset": "Uniform100M2:340"}
        with Engine(max_workers=1, batch_window=0.001, obs=True) as engine:
            self._run(engine, body)
            hit = self._run(engine, body)
        assert hit.cache["result_hit"]
        executed = hit.trace["spans"][3]
        assert all(child["meta"].get("replayed")
                   for child in executed["children"])

    def test_upstream_trace_context_is_prepended(self):
        parent = make_trace(spans=[make_span("route", node="router",
                                             outcome="accepted")])
        with Engine(max_workers=1, batch_window=0.001, obs=True) as engine:
            job_id = engine.submit(
                JobSpec.from_dict({"dataset": "Uniform100M2:350"}),
                trace=parent)
            result = engine.result(job_id, timeout=60.0)
        assert result.trace["trace_id"] == parent["trace_id"]
        assert result.trace["spans"][0]["name"] == "route"

    def test_phase_histograms_skip_replayed_work(self):
        body = {"dataset": "Uniform100M2:360"}
        with Engine(max_workers=1, batch_window=0.001, obs=True) as engine:
            self._run(engine, body)
            fam = engine.registry.histogram("repro_phase_seconds",
                                            labels=("phase",))
            cold = fam.histogram(phase="mst").count
            self._run(engine, body)  # result hit: phases replayed, not run
            assert fam.histogram(phase="mst").count == cold


class TestMetricsEndpoint:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.read().decode(), resp.headers.get("Content-Type", "")

    def _post_job(self, api, body, headers=None):
        request = urllib.request.Request(
            f"{api}/v1/jobs", data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json", **(headers or {})})
        with urllib.request.urlopen(request, timeout=30) as resp:
            return json.loads(resp.read())

    def _await(self, api, job_id):
        body, _ = self._get(f"{api}/v1/jobs/{job_id}?wait_s=60")
        result = json.loads(body)
        assert result["status"] == "done", result.get("error")
        return result

    def test_prometheus_scrape_is_parseable(self, api):
        accepted = self._post_job(api, {"dataset": "Uniform100M2:300"})
        self._await(api, accepted["job_id"])
        text, content_type = self._get(f"{api}/v1/metrics")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        parsed = parse_prometheus_text(text)
        assert parsed["repro_jobs_completed_total"] == [({}, 1.0)]
        # Per-tier cache lookup counters are all present.
        tiers = {(labels["tier"], labels["level"])
                 for labels, _ in parsed["repro_cache_lookups_total"]}
        assert ("tree", "memory") in tiers and ("result", "disk") in tiers
        # Job latency is a computable histogram: buckets + sum + count.
        buckets = [value for labels, value
                   in parsed["repro_job_seconds_bucket"]
                   if labels.get("algorithm") == "emst"]
        assert buckets[-1] == 1.0  # +Inf cumulative count
        assert parsed["repro_job_seconds_count"] == \
            [({"algorithm": "emst"}, 1.0)]

    def test_json_scrape_yields_computable_quantiles(self, api):
        accepted = self._post_job(api, {"dataset": "Uniform100M2:305"})
        self._await(api, accepted["job_id"])
        body, content_type = self._get(f"{api}/v1/metrics?format=json")
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        (metric,) = [m for m in doc["metrics"]
                     if m["name"] == "repro_job_seconds"]
        hist = histogram_from_sample(metric["samples"][0])
        assert hist.count == 1
        assert 0.0 < hist.quantile(0.5) <= hist.quantile(0.99)

    def test_unknown_format_is_a_400(self, api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{api}/v1/metrics?format=xml")
        assert excinfo.value.code == 400

    def test_trace_header_is_adopted(self, api):
        parent = make_trace(spans=[make_span("route", node="router",
                                             outcome="accepted")])
        accepted = self._post_job(api, {"dataset": "Uniform100M2:315"},
                                  headers={TRACE_HEADER: to_header(parent)})
        result = self._await(api, accepted["job_id"])
        assert result["trace"]["trace_id"] == parent["trace_id"]
        assert result["trace"]["spans"][0]["name"] == "route"

    def test_stats_shape_is_untouched_by_instrumentation(self, api):
        # /v1/stats is test-pinned elsewhere; here just assert the
        # registry-backed reimplementation still answers alongside /v1/metrics.
        accepted = self._post_job(api, {"dataset": "Uniform100M2:325"})
        self._await(api, accepted["job_id"])
        body, _ = self._get(f"{api}/v1/stats")
        stats = json.loads(body)
        assert stats["scheduler"]["jobs_completed"] == 1
        assert stats["jobs"]["done"] == 1


@pytest.fixture
def obs_fleet(tmp_path):
    """Three live nodes + a router HTTP server; yields a handle."""
    engines, servers = [], []
    for i in range(3):
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / f"node-{i}"))
        server = create_server(engine, node_name=f"node-{i}")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        engines.append(engine)
        servers.append(server)
    nodes = [Node(f"http://127.0.0.1:{server.server_address[1]}",
                  name=f"node-{i}")
             for i, server in enumerate(servers)]
    router = ClusterRouter(nodes, timeout=30.0)
    router_server = create_router_server(router)
    threading.Thread(target=router_server.serve_forever,
                     daemon=True).start()

    class Fleet:
        pass

    handle = Fleet()
    handle.router = router
    handle.base = (f"http://127.0.0.1:{router_server.server_address[1]}")
    handle.down = set()

    def kill(name):
        index = int(name.rsplit("-", 1)[1])
        servers[index].shutdown()
        servers[index].server_close()
        engines[index].close()
        handle.down.add(name)

    handle.kill = kill
    try:
        yield handle
    finally:
        router_server.shutdown()
        router_server.server_close()
        for i, server in enumerate(servers):
            if f"node-{i}" not in handle.down:
                server.shutdown()
                server.server_close()
                engines[i].close()
        router.close()


def _spec_owned_by(router, name):
    """A dataset body whose ring primary is node ``name``."""
    for n in range(300, 400):
        body = {"dataset": f"Uniform100M2:{n}"}
        fp = router.fingerprint(JobSpec.from_dict(body))
        if router.ring.node_for(fp).name == name:
            return body
    raise AssertionError(f"no probe spec owned by {name}")


class TestRouterTracing:
    def test_routed_trace_shows_router_and_node_spans(self, obs_fleet):
        accepted = obs_fleet.router.submit({"dataset": "Uniform100M2:300"})
        result, node = obs_fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert result["status"] == "done", result.get("error")
        spans = result["trace"]["spans"]
        names = [span["name"] for span in spans]
        assert names == ["route", "submit", "queued", "batched",
                         "executed", "served"]
        assert spans[0]["node"] == node
        assert spans[0]["meta"]["outcome"] == "accepted"
        assert spans[4]["meta"]["counters"]["distance_evals"] > 0

    def test_failover_trace_records_failed_hop(self, obs_fleet):
        victim = "node-1"
        body = _spec_owned_by(obs_fleet.router, victim)
        obs_fleet.kill(victim)
        accepted = obs_fleet.router.submit(dict(body))
        assert accepted["node"] != victim
        result, _ = obs_fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert result["status"] == "done", result.get("error")
        hops = [span for span in result["trace"]["spans"]
                if span["name"] == "route"]
        assert [hop["node"] for hop in hops] == \
            [victim, accepted["node"]]
        assert hops[0]["meta"]["outcome"] == "unavailable"
        assert "error" in hops[0]["meta"]
        assert hops[1]["meta"]["outcome"] == "accepted"

    def test_recovery_trace_records_lost_node_and_new_hop(self, obs_fleet):
        victim = "node-2"
        body = _spec_owned_by(obs_fleet.router, victim)
        accepted = obs_fleet.router.submit(dict(body))
        assert accepted["node"] == victim
        obs_fleet.router.job(accepted["job_id"], wait_s=60.0)
        obs_fleet.kill(victim)
        result, node = obs_fleet.router.job(accepted["job_id"], wait_s=60.0)
        assert node != victim
        assert result["status"] == "done", result.get("error")
        names = [span["name"] for span in result["trace"]["spans"]]
        lost = names.index("lost")
        assert result["trace"]["spans"][lost]["node"] == victim
        # A fresh route hop follows the loss marker.
        assert "route" in names[lost:]
        # Traces never leak into the canonical payload.
        reference = execute_spec(
            make_exec_spec(JobSpec.from_dict(body)))["payload"]
        assert canonical_payload_bytes(result["payload"]) == \
            canonical_payload_bytes(reference)

    def test_fleet_scrape_relabels_node_series(self, obs_fleet):
        accepted = obs_fleet.router.submit({"dataset": "Uniform100M2:305"})
        obs_fleet.router.job(accepted["job_id"], wait_s=60.0)
        with urllib.request.urlopen(f"{obs_fleet.base}/v1/metrics",
                                    timeout=30) as resp:
            text = resp.read().decode()
        assert text.count("# TYPE repro_jobs_completed_total counter") == 1
        parsed = parse_prometheus_text(text)
        completed = {labels["node"]: value for labels, value
                     in parsed["repro_jobs_completed_total"]}
        assert set(completed) == {"node-0", "node-1", "node-2"}
        assert sum(completed.values()) == 1.0
        # Router-side series carry no node label.
        assert parsed["repro_router_jobs_routed_total"] == [({}, 1.0)]

    def test_fleet_json_scrape_nests_node_documents(self, obs_fleet):
        with urllib.request.urlopen(
                f"{obs_fleet.base}/v1/metrics?format=json",
                timeout=30) as resp:
            doc = json.loads(resp.read())
        assert doc["role"] == "router"
        assert set(doc["nodes"]) == {"node-0", "node-1", "node-2"}
        for node_doc in doc["nodes"].values():
            assert "metrics" in node_doc
