"""Tests for double-resolution (128-bit) Morton codes — the GeoLife fix."""

import numpy as np
import pytest

from repro.baselines.naive import brute_force_emst
from repro.bvh import build_bvh, check_bvh_invariants
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst
from repro.data import geolife
from repro.errors import DimensionError, InvalidInputError
from repro.geometry.morton import (
    common_prefix_length_high,
    morton_encode,
    morton_encode_high,
    morton_order_high,
)
from repro.mst.validate import edges_canonical


class TestEncodeHigh:
    def test_refines_64bit_order(self, rng):
        # The high word at full-dimension granularity must order points
        # identically to the single-word code of the same resolution.
        pts = rng.random((300, 3))
        hi, lo = morton_encode_high(pts)
        coarse = morton_encode(pts, bits=21)
        order_hi = np.argsort(hi, kind="stable")
        order_coarse = np.argsort(coarse, kind="stable")
        # hi interleaves the top 21 of 42 bits, i.e. exactly the 21-bit
        # grid: same codes up to scaling, hence the same stable order.
        assert np.array_equal(order_hi, order_coarse)

    def test_resolves_subcell_structure(self):
        # Points inside one coarse (21-bit) cell share hi but differ in lo.
        # Construct exact grid coordinates: coarse cell 1000, two fine
        # offsets well inside it.
        scale = 2.0**42 - 1.0
        x1 = (1000 * 2**21 + 5) / scale
        x2 = (1000 * 2**21 + 90_000) / scale
        pts = np.array([
            [x1, x1, x1],
            [x2, x1, x1],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
        ])
        hi, lo = morton_encode_high(pts)
        assert hi[0] == hi[1]
        assert lo[0] != lo[1]

    def test_resolves_geolife_hotspots(self):
        pts = geolife(3000, seed=0)
        codes64 = morton_encode(pts)
        hi, lo = morton_encode_high(pts)
        pairs = np.stack([hi, lo], axis=1)
        unique64 = np.unique(codes64).size
        unique128 = np.unique(pairs, axis=0).shape[0]
        assert unique64 < 0.5 * len(pts)  # the pathology
        assert unique128 > 0.99 * len(pts)  # the fix

    def test_2d_supported(self, rng):
        hi, lo = morton_encode_high(rng.random((50, 2)))
        assert hi.shape == lo.shape == (50,)

    def test_rejects_4d(self, rng):
        with pytest.raises(DimensionError):
            morton_encode_high(rng.random((10, 4)))

    def test_order_high_permutation(self, rng):
        pts = rng.random((100, 3))
        order = morton_order_high(pts)
        assert np.array_equal(np.sort(order), np.arange(100))


class TestPrefixHigh:
    def test_hi_difference_dominates(self):
        hi = np.array([0b10, 0b11], dtype=np.uint64)
        lo = np.array([0, 0], dtype=np.uint64)
        d = common_prefix_length_high(hi, lo, np.array([0]), np.array([1]))
        assert d[0] == 63

    def test_lo_difference_offsets_by_64(self):
        hi = np.array([7, 7], dtype=np.uint64)
        lo = np.array([0b100, 0b101], dtype=np.uint64)
        d = common_prefix_length_high(hi, lo, np.array([0]), np.array([1]))
        assert d[0] == 127

    def test_full_tie_uses_index(self):
        hi = np.array([1, 1], dtype=np.uint64)
        lo = np.array([2, 2], dtype=np.uint64)
        d = common_prefix_length_high(hi, lo, np.array([0]), np.array([1]))
        assert d[0] > 128

    def test_out_of_range(self):
        hi = np.array([1], dtype=np.uint64)
        lo = np.array([1], dtype=np.uint64)
        assert common_prefix_length_high(hi, lo, np.array([0]),
                                         np.array([5]))[0] == -1


class TestHighResolutionBVH:
    def test_invariants(self, rng):
        for n in (2, 3, 50, 400):
            bvh = build_bvh(rng.random((n, 3)), high_resolution=True)
            check_bvh_invariants(bvh)
            assert bvh.codes_lo is not None

    def test_duplicates(self, rng):
        pts = np.repeat(rng.random((5, 2)), 10, axis=0)
        bvh = build_bvh(pts, high_resolution=True)
        check_bvh_invariants(bvh)

    def test_exclusive_with_bits(self, rng):
        with pytest.raises(InvalidInputError):
            build_bvh(rng.random((10, 2)), bits=8, high_resolution=True)

    def test_emst_identical_result(self, rng):
        pts = rng.random((150, 3))
        r64 = emst(pts)
        r128 = emst(pts, config=SingleTreeConfig(high_resolution=True))
        assert r64.total_weight == pytest.approx(r128.total_weight)
        assert edges_canonical(r64.edges[:, 0], r64.edges[:, 1]) == \
            edges_canonical(r128.edges[:, 0], r128.edges[:, 1])

    def test_emst_matches_oracle(self, rng):
        pts = rng.random((90, 2))
        r = emst(pts, config=SingleTreeConfig(high_resolution=True))
        u, v, w = brute_force_emst(pts)
        assert r.total_weight == pytest.approx(float(w.sum()))

    def test_geolife_gets_cheaper(self):
        pts = geolife(2500, seed=1)
        r64 = emst(pts)
        r128 = emst(pts, config=SingleTreeConfig(high_resolution=True))
        assert r64.total_weight == pytest.approx(r128.total_weight)
        assert r128.total_counters.nodes_visited < \
            r64.total_counters.nodes_visited
