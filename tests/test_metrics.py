"""Tests for the rate metric (repro.metrics)."""

import math

import pytest

from repro.metrics import (
    features,
    features_per_second,
    fleet_hit_rate,
    fleet_mfeatures_per_second,
    format_rate,
    hit_rate,
    jobs_per_second,
    mfeatures_per_second,
    speedup,
)


class TestFleetAggregates:
    def test_fleet_hit_rate_pools_lookups(self):
        # Pooled, not averaged: the busy node dominates.
        assert fleet_hit_rate([(9, 1), (0, 0)]) == 0.9
        assert fleet_hit_rate([(1, 1), (1, 1), (2, 0)]) == \
            pytest.approx(4 / 6)

    def test_fleet_hit_rate_idle_fleet(self):
        assert fleet_hit_rate([]) == 0.0
        assert fleet_hit_rate([(0, 0), (0, 0)]) == 0.0

    def test_fleet_hit_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            fleet_hit_rate([(1, 2), (-1, 0)])

    def test_fleet_throughput_pools_busy_time(self):
        assert fleet_mfeatures_per_second(
            [2_000_000, 1_000_000], [2.0, 1.0]) == 1.0

    def test_fleet_throughput_idle_fleet(self):
        assert fleet_mfeatures_per_second([], []) == 0.0
        assert fleet_mfeatures_per_second([0, 0], [0.0, 0.0]) == 0.0

    def test_fleet_throughput_rejects_negative(self):
        with pytest.raises(ValueError):
            fleet_mfeatures_per_second([-1], [1.0])
        with pytest.raises(ValueError):
            fleet_mfeatures_per_second([1], [-1.0])


class TestServiceRates:
    def test_hit_rate(self):
        assert hit_rate(3, 1) == 0.75
        assert hit_rate(0, 5) == 0.0
        assert hit_rate(5, 0) == 1.0

    def test_hit_rate_untouched_cache(self):
        assert hit_rate(0, 0) == 0.0

    def test_hit_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            hit_rate(-1, 2)

    def test_jobs_per_second(self):
        assert jobs_per_second(10, 2.0) == 5.0
        assert jobs_per_second(0, 1.0) == 0.0

    def test_jobs_per_second_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            jobs_per_second(-1, 1.0)
        with pytest.raises(ValueError):
            jobs_per_second(1, 0.0)


class TestFeatures:
    def test_product(self):
        assert features(1000, 3) == 3000

    def test_zero_points(self):
        assert features(0, 2) == 0

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            features(-1, 2)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            features(10, 0)


class TestRates:
    def test_features_per_second(self):
        assert features_per_second(100, 2, 2.0) == 100.0

    def test_mfeatures_matches_paper_definition(self):
        # 37M 3D points in 0.41s ~ 270 MFeatures/sec (the abstract's claim).
        rate = mfeatures_per_second(37_000_000, 3, 0.41)
        assert 250 < rate < 290

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            mfeatures_per_second(10, 2, 0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            features_per_second(10, 2, -1.0)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_slowdown_below_one(self):
        assert speedup(1.0, 2.0) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestFormatRate:
    def test_small_one_decimal(self):
        assert format_rate(0.74) == "0.7"

    def test_large_integer(self):
        assert format_rate(270.66) == "271"

    def test_boundary(self):
        assert format_rate(9.99) == "10.0"
        assert format_rate(10.0) == "10"

    def test_nan(self):
        assert format_rate(math.nan) == "nan"
