"""Tests for the rate metric (repro.metrics)."""

import math

import pytest

from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    features,
    features_per_second,
    fleet_hit_rate,
    fleet_mfeatures_per_second,
    fleet_histogram,
    format_rate,
    hit_rate,
    jobs_per_second,
    mfeatures_per_second,
    speedup,
)


class TestFleetAggregates:
    def test_fleet_hit_rate_pools_lookups(self):
        # Pooled, not averaged: the busy node dominates.
        assert fleet_hit_rate([(9, 1), (0, 0)]) == 0.9
        assert fleet_hit_rate([(1, 1), (1, 1), (2, 0)]) == \
            pytest.approx(4 / 6)

    def test_fleet_hit_rate_idle_fleet(self):
        assert fleet_hit_rate([]) == 0.0
        assert fleet_hit_rate([(0, 0), (0, 0)]) == 0.0

    def test_fleet_hit_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            fleet_hit_rate([(1, 2), (-1, 0)])

    def test_fleet_throughput_pools_busy_time(self):
        assert fleet_mfeatures_per_second(
            [2_000_000, 1_000_000], [2.0, 1.0]) == 1.0

    def test_fleet_throughput_idle_fleet(self):
        assert fleet_mfeatures_per_second([], []) == 0.0
        assert fleet_mfeatures_per_second([0, 0], [0.0, 0.0]) == 0.0

    def test_fleet_throughput_rejects_negative(self):
        with pytest.raises(ValueError):
            fleet_mfeatures_per_second([-1], [1.0])
        with pytest.raises(ValueError):
            fleet_mfeatures_per_second([1], [-1.0])


class TestServiceRates:
    def test_hit_rate(self):
        assert hit_rate(3, 1) == 0.75
        assert hit_rate(0, 5) == 0.0
        assert hit_rate(5, 0) == 1.0

    def test_hit_rate_untouched_cache(self):
        assert hit_rate(0, 0) == 0.0

    def test_hit_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            hit_rate(-1, 2)

    def test_jobs_per_second(self):
        assert jobs_per_second(10, 2.0) == 5.0
        assert jobs_per_second(0, 1.0) == 0.0

    def test_jobs_per_second_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            jobs_per_second(-1, 1.0)
        with pytest.raises(ValueError):
            jobs_per_second(1, 0.0)


class TestFeatures:
    def test_product(self):
        assert features(1000, 3) == 3000

    def test_zero_points(self):
        assert features(0, 2) == 0

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            features(-1, 2)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            features(10, 0)


class TestRates:
    def test_features_per_second(self):
        assert features_per_second(100, 2, 2.0) == 100.0

    def test_mfeatures_matches_paper_definition(self):
        # 37M 3D points in 0.41s ~ 270 MFeatures/sec (the abstract's claim).
        rate = mfeatures_per_second(37_000_000, 3, 0.41)
        assert 250 < rate < 290

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            mfeatures_per_second(10, 2, 0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            features_per_second(10, 2, -1.0)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_slowdown_below_one(self):
        assert speedup(1.0, 2.0) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestFormatRate:
    def test_small_one_decimal(self):
        assert format_rate(0.74) == "0.7"

    def test_large_integer(self):
        assert format_rate(270.66) == "271"

    def test_boundary(self):
        assert format_rate(9.99) == "10.0"
        assert format_rate(10.0) == "10"

    def test_nan(self):
        assert format_rate(math.nan) == "nan"


class TestHistogram:
    def test_observe_buckets_and_totals(self):
        h = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            h.observe(value)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.mean == pytest.approx(7.0 / 3)

    def test_default_bucket_scheme(self):
        h = Histogram()
        assert h.bounds == DEFAULT_LATENCY_BUCKETS
        assert len(h.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(2.0)
        # Overflow observations clamp to the largest finite bound.
        h.observe(100.0)
        assert h.quantile(1.0) == 4.0

    def test_quantile_of_empty_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        with pytest.raises(ValueError):
            Histogram().quantile(-0.1)

    def test_merge_pools_counts(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        merged = a.merge(b)
        assert merged is a
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_dict_round_trip(self):
        h = Histogram(bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        clone = Histogram.from_dict(h.as_dict())
        assert clone.bounds == h.bounds
        assert clone.counts == h.counts
        assert clone.sum == h.sum
        assert clone.count == h.count

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))


class TestFleetHistogram:
    def test_pools_rather_than_averages(self):
        busy, idle = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        for _ in range(99):
            busy.observe(0.5)
        idle.observe(1.5)
        pooled = fleet_histogram([busy, idle])
        # 99 fast observations dominate the pooled median; averaging
        # per-node quantiles would report ~1.0 instead.
        assert pooled.quantile(0.5) < 1.0
        assert pooled.count == 100

    def test_inputs_are_not_mutated(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        a.observe(0.5)
        b.observe(0.5)
        pooled = fleet_histogram([a, b])
        assert pooled.count == 2
        assert a.count == 1 and b.count == 1

    def test_empty_fleet_uses_seed_bounds(self):
        pooled = fleet_histogram([], bounds=(0.5, 5.0))
        assert pooled.bounds == (0.5, 5.0)
        assert pooled.count == 0

    def test_mismatched_bounds_raise(self):
        with pytest.raises(ValueError):
            fleet_histogram([Histogram(bounds=(1.0,)),
                             Histogram(bounds=(2.0,))])
