"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, load_points, main
from repro.errors import InvalidInputError


class TestLoadPoints:
    def test_dataset_spec(self):
        pts = load_points("dataset:Uniform100M2:100")
        assert pts.shape == (100, 2)

    def test_dataset_spec_with_seed(self):
        a = load_points("dataset:Hacc37M:50:1")
        b = load_points("dataset:Hacc37M:50:2")
        assert not np.array_equal(a, b)

    def test_npy_file(self, tmp_path, rng):
        path = tmp_path / "pts.npy"
        np.save(path, rng.random((20, 3)))
        assert load_points(str(path)).shape == (20, 3)

    def test_bad_spec(self):
        with pytest.raises(InvalidInputError):
            load_points("dataset:OnlyTwoParts")

    def test_bad_shape(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros(5))
        with pytest.raises(InvalidInputError):
            load_points(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidInputError, match="no such file"):
            load_points(str(tmp_path / "absent.npy"))

    def test_not_an_npy_file(self, tmp_path):
        path = tmp_path / "garbage.npy"
        path.write_bytes(b"this is not a numpy file")
        with pytest.raises(InvalidInputError, match="not a readable"):
            load_points(str(path))

    def test_non_numeric_array(self, tmp_path):
        path = tmp_path / "words.npy"
        np.save(path, np.array([["a", "b"], ["c", "d"]]))
        with pytest.raises(InvalidInputError, match="numeric"):
            load_points(str(path))

    def test_non_integer_dataset_size(self):
        with pytest.raises(InvalidInputError, match="integer"):
            load_points("dataset:Uniform100M2:many")
        with pytest.raises(InvalidInputError, match="integer"):
            load_points("dataset:Uniform100M2:100:later")

    def test_negative_seed_rejected(self):
        with pytest.raises(InvalidInputError, match="seed"):
            load_points("dataset:Uniform100M2:100:-5")

    def test_bool_array_still_accepted(self, tmp_path):
        path = tmp_path / "bool.npy"
        np.save(path, np.array([[0, 0], [1, 0], [0, 1]], dtype=bool))
        assert load_points(str(path)).shape == (3, 2)

    def test_complex_array_rejected(self, tmp_path):
        path = tmp_path / "complex.npy"
        np.save(path, np.array([[1 + 2j, 2.0], [3.0, 4.0]]))
        with pytest.raises(InvalidInputError, match="numeric"):
            load_points(str(path))

    def test_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["emst", str(tmp_path / "absent.npy")]) == 2
        assert "error:" in capsys.readouterr().err


class TestEmstCommand:
    def test_basic(self, capsys):
        assert main(["emst", "dataset:Uniform100M2:200"]) == 0
        out = capsys.readouterr().out
        assert "total weight" in out
        assert "Boruvka rounds" in out

    def test_mrd(self, capsys):
        assert main(["emst", "dataset:Normal100M3:100", "--mrd", "4"]) == 0
        assert "mutual reachability" in capsys.readouterr().out

    def test_kdtree_backend(self, capsys):
        assert main(["emst", "dataset:Uniform100M3:150",
                     "--tree", "kdtree"]) == 0

    def test_high_resolution(self, capsys):
        assert main(["emst", "dataset:Uniform100M2:100",
                     "--high-resolution"]) == 0

    def test_ablation_flags(self, capsys):
        assert main(["emst", "dataset:Uniform100M2:100",
                     "--no-subtree-skipping",
                     "--no-component-bounds"]) == 0

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "edges.npy"
        assert main(["emst", "dataset:Uniform100M2:50",
                     "--out", str(out)]) == 0
        edges = np.load(out)
        assert edges.shape == (49, 3)
        assert np.all(edges[:, 2] >= 0)

    def test_error_exit_code(self, capsys):
        assert main(["emst", "dataset:NoSuch:10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_hdbscan(self, tmp_path, capsys, rng):
        path = tmp_path / "pts.npy"
        blobs = np.concatenate([rng.normal((0, 0), 0.05, size=(60, 2)),
                                rng.normal((5, 5), 0.05, size=(60, 2))])
        np.save(path, blobs)
        labels_out = tmp_path / "labels.npy"
        assert main(["hdbscan", str(path), "--min-cluster-size", "10",
                     "--out", str(labels_out)]) == 0
        labels = np.load(labels_out)
        assert labels.shape == (120,)
        assert "2 clusters" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Hacc37M" in out
        assert "GeoLife24M3D" in out

    def test_bench_quick(self, capsys):
        assert main(["bench", "fig1", "--quick"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestServiceCommands:
    """CLI submit against the live-server ``api`` fixture (conftest.py)."""

    def test_submit_dataset_round_trip(self, api, capsys):
        assert main(["submit", "dataset:Uniform100M2:300",
                     "--url", api]) == 0
        out = capsys.readouterr().out
        assert "done (emst)" in out
        assert "total weight" in out

    def test_submit_npy_file(self, api, tmp_path, capsys, rng):
        path = tmp_path / "pts.npy"
        np.save(path, rng.random((150, 3)))
        assert main(["submit", str(path), "--url", api]) == 0
        assert "150 (3D)" in capsys.readouterr().out

    def test_submit_hdbscan(self, api, capsys):
        assert main(["submit", "dataset:VisualVar10M2D:400",
                     "--algorithm", "hdbscan", "--url", api]) == 0
        assert "clusters" in capsys.readouterr().out

    def test_submit_bad_dataset_rejected_by_server(self, api, capsys):
        assert main(["submit", "dataset:NoSuchDataset:50",
                     "--url", api]) == 1
        assert "rejected" in capsys.readouterr().err

    def test_submit_unreachable_server(self, capsys):
        assert main(["submit", "dataset:Uniform100M2:50",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_bad_local_file_exit_code(self, tmp_path, capsys):
        assert main(["submit", str(tmp_path / "absent.npy")]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_serve_backend_flag(self):
        args = build_parser().parse_args(
            ["serve", "--backend", "process", "--workers", "3"])
        assert args.backend == "process"
        assert args.workers == 3
        # Thread is the default (process pays worker startup and pickling;
        # it only wins on CPU-bound concurrent batches).
        assert build_parser().parse_args(["serve"]).backend == "thread"

    def test_serve_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "greenlet"])

    def test_serve_store_flags(self):
        args = build_parser().parse_args(
            ["serve", "--store-dir", "/tmp/s", "--store-mb", "64"])
        assert args.store_dir == "/tmp/s"
        assert args.store_mb == 64
        # Persistence is opt-in: no flag, no store.
        assert build_parser().parse_args(["serve"]).store_dir is None
