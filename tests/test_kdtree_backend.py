"""Tests for the kd-tree backend (repro.core.kdtree_backend)."""

import numpy as np
import pytest

from repro.baselines.naive import brute_force_emst, brute_force_mrd_emst
from repro.bvh import batched_knn, batched_nearest, check_bvh_invariants
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.core.kdtree_backend import kdtree_as_bvh
from repro.errors import InvalidInputError
from repro.mst.validate import edges_canonical

KD = SingleTreeConfig(tree_type="kdtree")


class TestStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 64, 333])
    def test_invariants(self, rng, n):
        tree = kdtree_as_bvh(rng.random((n, 3)))
        check_bvh_invariants(tree)

    def test_duplicates(self, rng):
        pts = np.repeat(rng.random((6, 2)), 12, axis=0)
        check_bvh_invariants(kdtree_as_bvh(pts))

    def test_collinear(self):
        pts = np.stack([np.linspace(0, 1, 50), np.zeros(50)], axis=1)
        check_bvh_invariants(kdtree_as_bvh(pts))

    def test_order_is_permutation(self, rng):
        tree = kdtree_as_bvh(rng.random((100, 2)))
        assert np.array_equal(np.sort(tree.order), np.arange(100))

    def test_balanced_height(self, rng):
        tree = kdtree_as_bvh(rng.random((1024, 3)))
        assert tree.height <= 12  # median splits: ceil(log2(1024)) + slack

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            kdtree_as_bvh(np.array([[np.nan, 0.0]]))


class TestQueriesOnKdTree:
    def test_nearest_matches_scipy(self, rng):
        from scipy.spatial import cKDTree
        pts = rng.random((300, 3))
        tree = kdtree_as_bvh(pts)
        q = rng.random((100, 3))
        res = batched_nearest(tree, q)
        d_ref, _ = cKDTree(tree.points).query(q)
        assert np.allclose(np.sqrt(res.distance_sq), d_ref)

    def test_knn_matches_scipy(self, rng):
        from scipy.spatial import cKDTree
        pts = rng.random((200, 2))
        tree = kdtree_as_bvh(pts)
        res = batched_knn(tree, tree.points, 5)
        d_ref, _ = cKDTree(tree.points).query(tree.points, k=5)
        assert np.allclose(np.sqrt(res.distance_sq), d_ref)


class TestEMSTOnKdTree:
    @pytest.mark.parametrize("n,d,seed", [(2, 2, 0), (40, 3, 1), (150, 2, 2)])
    def test_matches_oracle(self, n, d, seed):
        pts = np.random.default_rng(seed).random((n, d))
        r = emst(pts, config=KD)
        u, v, w = brute_force_emst(pts)
        assert r.total_weight == pytest.approx(float(w.sum()))
        assert edges_canonical(r.edges[:, 0], r.edges[:, 1]) == \
            edges_canonical(u, v)

    def test_identical_to_bvh_backend(self, rng):
        pts = rng.random((200, 3))
        r_bvh = emst(pts)
        r_kd = emst(pts, config=KD)
        assert np.array_equal(r_bvh.edges, r_kd.edges)
        assert np.allclose(r_bvh.weights, r_kd.weights)

    def test_grid_ties(self):
        import itertools
        pts = np.array(list(itertools.product(range(6), range(6))),
                       dtype=float)
        r = emst(pts, config=KD)
        assert r.total_weight == pytest.approx(35.0)

    def test_mrd_matches_oracle(self, rng):
        pts = rng.random((70, 2))
        r = mutual_reachability_emst(pts, 4, config=KD)
        _, _, w = brute_force_mrd_emst(pts, 4)
        assert r.total_weight == pytest.approx(float(w.sum()))

    def test_ablation_flags_work(self, rng):
        pts = rng.random((100, 2))
        config = SingleTreeConfig(tree_type="kdtree",
                                  subtree_skipping=False,
                                  component_bounds=False)
        r = emst(pts, config=config)
        u, v, w = brute_force_emst(pts)
        assert r.total_weight == pytest.approx(float(w.sum()))

    def test_unknown_tree_type(self, rng):
        with pytest.raises(InvalidInputError):
            emst(rng.random((10, 2)),
                 config=SingleTreeConfig(tree_type="octree"))

    def test_morton_options_rejected(self, rng):
        with pytest.raises(InvalidInputError):
            emst(rng.random((10, 2)),
                 config=SingleTreeConfig(tree_type="kdtree",
                                         high_resolution=True))
