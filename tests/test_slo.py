"""Tests for the SLO burn-rate engine (repro.obs.slo)."""

import pytest

from repro.obs import (
    DEFAULT_SLOS,
    MetricsRegistry,
    SLO,
    SloEngine,
    format_window,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _engine(registry, clock, windows=(300.0, 3600.0), slos=DEFAULT_SLOS):
    return SloEngine(registry, slos=slos, windows=windows, clock=clock)


class TestSloDeclaration:
    def test_format_window(self):
        assert format_window(300.0) == "5m"
        assert format_window(3600.0) == "1h"
        assert format_window(90.0) == "90s"
        assert format_window(5400.0) == "90m"

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", "throughput", 0.99)
        with pytest.raises(ValueError):
            SLO("x", "availability", 1.0)
        with pytest.raises(ValueError):
            SLO("x", "latency", 0.95)  # no threshold_s

    def test_latency_threshold_must_sit_on_a_bucket_bound(self):
        registry = MetricsRegistry()
        offbucket = SLO("latency_odd", "latency", 0.95, threshold_s=0.33)
        with pytest.raises(ValueError, match="bucket"):
            _engine(registry, FakeClock(), slos=(offbucket,))

    def test_engine_rejects_empty_config(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            _engine(registry, FakeClock(), slos=())
        with pytest.raises(ValueError):
            _engine(registry, FakeClock(), windows=())


class TestBurnMath:
    def _counters(self, registry):
        completed = registry.counter("repro_jobs_completed_total")
        failed = registry.counter("repro_jobs_failed_total")
        latency = registry.histogram("repro_job_seconds",
                                     labels=("algorithm",))
        return completed, failed, latency

    def test_availability_burn_over_a_window(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)  # baseline seeded at t=1000
        completed, failed, _ = self._counters(registry)
        for _ in range(100):
            completed.inc()
        failed.inc()  # 1% failure against a 0.1% budget
        clock.advance(60.0)
        burn = engine.burn_rates()
        assert burn[("availability", "5m")] == pytest.approx(
            0.01 / (1.0 - 0.999))
        # Both windows see the same young delta.
        assert burn[("availability", "1h")] == \
            pytest.approx(burn[("availability", "5m")])

    def test_latency_burn_counts_over_threshold_jobs(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)
        completed, _, latency = self._counters(registry)
        for _ in range(8):
            latency.observe(0.01, algorithm="emst")
            completed.inc()
        for _ in range(2):  # over the 1 s threshold, split across labels
            latency.observe(2.0, algorithm="hdbscan")
            completed.inc()
        clock.advance(60.0)
        burn = engine.burn_rates()
        assert burn[("latency_1s", "5m")] == pytest.approx(
            0.2 / (1.0 - 0.95))

    def test_zero_traffic_burns_nothing(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)
        clock.advance(60.0)
        assert set(engine.burn_rates().values()) == {0.0}
        assert set(engine.budget_remaining().values()) == {1.0}

    def test_old_errors_age_out_of_the_window(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock, windows=(300.0,))
        completed, failed, _ = self._counters(registry)
        for _ in range(100):
            completed.inc()
        failed.inc()
        clock.advance(60.0)
        assert engine.burn_rates()[("availability", "5m")] > 0.0
        # A clean 10 minutes later the bad minute is outside the window.
        for _ in range(100):
            completed.inc()
        clock.advance(600.0)
        assert engine.burn_rates()[("availability", "5m")] == 0.0

    def test_budget_remaining_is_all_time(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)
        completed, failed, _ = self._counters(registry)
        for _ in range(2000):
            completed.inc()
        failed.inc()  # 0.05% of a 0.1% budget: half spent
        clock.advance(60.0)
        assert engine.budget_remaining()["availability"] == \
            pytest.approx(0.5)

    def test_report_is_json_safe_and_complete(self):
        import json

        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)
        completed, _, _ = self._counters(registry)
        completed.inc()
        clock.advance(60.0)
        report = json.loads(json.dumps(engine.report()))
        assert [entry["name"] for entry in report] == \
            ["availability", "latency_1s"]
        assert set(report[0]["burn_rate"]) == {"5m", "1h"}
        assert report[0]["total"] == 1.0

    def test_snapshot_history_stays_bounded(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock, windows=(300.0,))
        for _ in range(100):
            clock.advance(30.0)
            engine.burn_rates()
        # ~10 snapshots cover a 300 s window at one per 30 s; the deque
        # must not grow with scrape count.
        assert len(engine._snapshots) < 15


class TestSloGauges:
    def test_gauges_render_without_recursion(self):
        registry, clock = MetricsRegistry(), FakeClock()
        _engine(registry, clock)
        completed = registry.counter("repro_jobs_completed_total")
        failed = registry.counter("repro_jobs_failed_total")
        for _ in range(10):
            completed.inc()
        failed.inc()
        clock.advance(60.0)
        text = registry.render_prometheus()
        assert 'repro_slo_burn_rate{slo="availability",window="5m"}' in text
        assert 'repro_slo_budget_remaining{slo="latency_1s"}' in text
        assert 'repro_slo_target{slo="availability"} 0.999' in text

    def test_scrapes_inside_the_guard_share_one_snapshot(self):
        registry, clock = MetricsRegistry(), FakeClock()
        engine = _engine(registry, clock)
        completed = registry.counter("repro_jobs_completed_total")
        completed.inc()
        clock.advance(60.0)
        engine.burn_rates()
        depth = len(engine._snapshots)
        # Same instant (the several SLO gauges on one metrics page):
        # no second snapshot is taken.
        engine.budget_remaining()
        engine.burn_rates()
        assert len(engine._snapshots) == depth
