"""Tests for the HDBSCAN* pipeline (repro.hdbscan)."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import linkage as scipy_linkage

from repro.core.emst import emst
from repro.errors import InvalidInputError
from repro.hdbscan import (
    condense_tree,
    core_distances,
    hdbscan,
    single_linkage_tree,
)
from repro.hdbscan.stability import cluster_stabilities, extract_clusters


@pytest.fixture
def blobs(rng):
    clusters = [rng.normal(c, 0.05, size=(100, 2))
                for c in [(0, 0), (4, 0), (0, 4)]]
    noise = rng.uniform(-1, 5, size=(30, 2))
    return np.concatenate(clusters + [noise])


class TestCoreDistances:
    def test_k1_is_zero(self, uniform_2d):
        assert np.allclose(core_distances(uniform_2d, 1), 0.0)

    def test_monotone_in_k(self, uniform_2d):
        c2 = core_distances(uniform_2d, 2)
        c5 = core_distances(uniform_2d, 5)
        assert np.all(c5 >= c2)

    def test_matches_brute_force(self, rng):
        pts = rng.random((60, 3))
        k = 4
        d = np.sqrt(np.sum((pts[:, None] - pts[None]) ** 2, axis=2))
        expected = np.sort(d, axis=1)[:, k - 1]  # row includes self (0)
        assert np.allclose(core_distances(pts, k), expected)

    def test_caller_order(self, rng):
        # Results must be in the caller's point order, not Z-order.
        pts = rng.random((50, 2))
        c = core_distances(pts, 3)
        perm = rng.permutation(50)
        c_perm = core_distances(pts[perm], 3)
        assert np.allclose(c_perm, c[perm])

    def test_rejects_bad_k(self, uniform_2d):
        with pytest.raises(InvalidInputError):
            core_distances(uniform_2d, 0)
        with pytest.raises(InvalidInputError):
            core_distances(uniform_2d, len(uniform_2d) + 1)

    def test_dense_region_smaller_core(self, rng):
        dense = rng.normal(0, 0.01, size=(50, 2))
        sparse = rng.normal(5, 1.0, size=(50, 2))
        c = core_distances(np.concatenate([dense, sparse]), 5)
        assert c[:50].mean() < c[50:].mean()


class TestSingleLinkage:
    def test_matches_scipy(self, rng):
        pts = rng.random((40, 2))
        result = emst(pts)
        Z = single_linkage_tree(40, result.edges[:, 0], result.edges[:, 1],
                                result.weights)
        Zs = scipy_linkage(pts, method="single")
        assert np.allclose(np.sort(Z[:, 2]), np.sort(Zs[:, 2]), atol=1e-12)
        assert np.allclose(Z[:, 3], Zs[:, 3])

    def test_sizes_accumulate(self, rng):
        pts = rng.random((30, 2))
        r = emst(pts)
        Z = single_linkage_tree(30, r.edges[:, 0], r.edges[:, 1], r.weights)
        assert Z[-1, 3] == 30
        assert np.all(np.diff(Z[:, 2]) >= 0)

    def test_rejects_wrong_edge_count(self):
        with pytest.raises(InvalidInputError):
            single_linkage_tree(5, np.array([0]), np.array([1]),
                                np.array([1.0]))

    def test_rejects_cycle(self):
        with pytest.raises(InvalidInputError):
            single_linkage_tree(3, np.array([0, 1]), np.array([1, 0]),
                                np.array([1.0, 2.0]))


class TestCondense:
    def _linkage(self, pts):
        r = emst(pts)
        return single_linkage_tree(len(pts), r.edges[:, 0], r.edges[:, 1],
                                   r.weights)

    def test_point_rows_cover_all_points(self, blobs):
        tree = condense_tree(self._linkage(blobs), 10)
        points = tree.child[tree.child < tree.n_points]
        assert np.array_equal(np.sort(points), np.arange(len(blobs)))

    def test_sizes_consistent(self, blobs):
        tree = condense_tree(self._linkage(blobs), 10)
        cluster_rows = tree.child >= tree.n_points
        for parent, child, size in zip(tree.parent[cluster_rows],
                                       tree.child[cluster_rows],
                                       tree.child_size[cluster_rows]):
            # A cluster child's size equals the sum of everything that
            # ever leaves it (points are counted once).
            member_rows = _subtree_point_count(tree, int(child))
            assert member_rows == size

    def test_three_blobs_recovered(self, blobs):
        # Plain-Euclidean single linkage (no core-distance smoothing, i.e.
        # k_pts=1) may grant a small noise clump its own cluster; the three
        # real blobs must be found, possibly plus such a fragment.
        tree = condense_tree(self._linkage(blobs), 10)
        stabilities = cluster_stabilities(tree)
        assert all(np.isfinite(v) for v in stabilities.values())
        labels, _ = extract_clusters(tree)
        n_found = len(set(labels[labels >= 0]))
        assert 3 <= n_found <= 4

    def test_min_cluster_size_2_valid(self, rng):
        tree = condense_tree(self._linkage(rng.random((30, 2))), 2)
        assert tree.n_points == 30

    def test_rejects_min_cluster_size_1(self, rng):
        with pytest.raises(InvalidInputError):
            condense_tree(self._linkage(rng.random((10, 2))), 1)

    def test_lambda_nonnegative(self, blobs):
        tree = condense_tree(self._linkage(blobs), 5)
        assert np.all(tree.lambda_val >= 0)


def _subtree_point_count(tree, cluster):
    count = 0
    stack = [cluster]
    while stack:
        c = stack.pop()
        rows = tree.parent == c
        for child, size in zip(tree.child[rows], tree.child_size[rows]):
            if child < tree.n_points:
                count += 1
            else:
                stack.append(int(child))
    return count


class TestHDBSCAN:
    def test_recovers_blobs(self, blobs):
        result = hdbscan(blobs, min_cluster_size=10, k_pts=5)
        assert result.n_clusters == 3
        for i in range(3):
            seg = result.labels[i * 100:(i + 1) * 100]
            values, counts = np.unique(seg[seg >= 0], return_counts=True)
            assert counts.max() >= 90  # each blob ~pure

    def test_blob_purity(self, blobs):
        result = hdbscan(blobs, min_cluster_size=10, k_pts=5)
        # Majority labels of the three blobs are distinct clusters.
        majors = []
        for i in range(3):
            seg = result.labels[i * 100:(i + 1) * 100]
            values, counts = np.unique(seg[seg >= 0], return_counts=True)
            majors.append(values[np.argmax(counts)])
        assert len(set(majors)) == 3

    def test_noise_detected(self, blobs):
        result = hdbscan(blobs, min_cluster_size=10, k_pts=5)
        assert 0.0 < result.noise_fraction < 0.3

    def test_probabilities_range(self, blobs):
        result = hdbscan(blobs, min_cluster_size=10)
        assert np.all(result.probabilities >= 0)
        assert np.all(result.probabilities <= 1)
        assert np.all(result.probabilities[result.labels < 0] == 0)

    def test_uniform_mostly_one_or_no_cluster(self, rng):
        result = hdbscan(rng.random((200, 2)), min_cluster_size=20)
        assert result.n_clusters <= 3

    def test_deterministic(self, blobs):
        r1 = hdbscan(blobs, min_cluster_size=10)
        r2 = hdbscan(blobs, min_cluster_size=10)
        assert np.array_equal(r1.labels, r2.labels)

    def test_rejects_tiny_input(self):
        with pytest.raises(InvalidInputError):
            hdbscan(np.array([[0.0, 0.0]]))

    def test_rejects_bad_min_cluster_size(self, blobs):
        with pytest.raises(InvalidInputError):
            hdbscan(blobs, min_cluster_size=1)

    def test_emst_attached(self, blobs):
        result = hdbscan(blobs, min_cluster_size=10, k_pts=3)
        assert result.emst.edges.shape == (len(blobs) - 1, 2)
        assert "core" in result.phases

    def test_duplicate_heavy_data(self, rng):
        pts = np.repeat(rng.random((8, 2)) * 10, 25, axis=0)
        pts += 0.001 * rng.standard_normal(pts.shape)
        result = hdbscan(pts, min_cluster_size=10, k_pts=3)
        assert result.n_clusters == 8
