"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    ConvergenceError,
    DimensionError,
    ExecutionSpaceError,
    InvalidInputError,
    NotBuiltError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for exc in (InvalidInputError, DimensionError, NotBuiltError,
                ConvergenceError, ExecutionSpaceError):
        assert issubclass(exc, ReproError)


def test_invalid_input_is_value_error():
    assert issubclass(InvalidInputError, ValueError)


def test_dimension_is_invalid_input():
    assert issubclass(DimensionError, InvalidInputError)


def test_runtime_family():
    assert issubclass(ConvergenceError, RuntimeError)
    assert issubclass(NotBuiltError, RuntimeError)
    assert issubclass(ExecutionSpaceError, RuntimeError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise DimensionError("d=7")
