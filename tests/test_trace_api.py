"""HTTP surface tests for trace archive, events and flight-recorder dumps.

Covers the four PR endpoints on both roles — node (`repro serve`) and
router (`repro route`): ``GET /v1/traces``, ``GET /v1/traces/<id>``,
``GET /v1/admin/events`` and ``POST /v1/admin/dump``.  Failing jobs are
the workhorse probe: the retention policy *always* keeps a failure, so
the assertions hold at any sample rate.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterRouter, Node
from repro.cluster.server import create_router_server
from repro.service import Engine
from repro.service.server import create_server

#: Passes submit validation, fails at runtime (hdbscan needs >= 2 points)
#: — a guaranteed-retained trace at any sample rate.
FAILING_BODY = {"points": [[0.0, 0.0]], "algorithm": "hdbscan"}


def _get(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=30) as resp:
        return json.loads(resp.read())


def _post(base, path, body):
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def _error(base, path, body=None):
    """(status, error envelope) for a request expected to fail."""
    try:
        if body is None:
            _get(base, path)
        else:
            _post(base, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())["error"]
    raise AssertionError(f"{path} unexpectedly succeeded")


def _run_failing_job(base):
    """Submit the failing probe and return its terminal body."""
    accepted = _post(base, "/v1/jobs", dict(FAILING_BODY))
    body = _get(base, f"/v1/jobs/{accepted['job_id']}?wait_s=60")
    assert body["status"] == "failed", body
    assert body.get("trace"), "failed job must still carry its span tree"
    return body


class TestNodeTraceEndpoints:
    def test_failed_trace_always_archived_and_queryable(self, api):
        body = _run_failing_job(api)
        doc = _get(api, "/v1/traces?outcome=failed&limit=500")
        ids = [record["trace_id"] for record in doc["traces"]]
        assert body["trace"]["trace_id"] in ids
        record = next(r for r in doc["traces"]
                      if r["trace_id"] == body["trace"]["trace_id"])
        assert record["reason"] == "failed"
        assert record["algorithm"] == "hdbscan"
        assert doc["stats"]["retained"] >= 1

    def test_archived_record_byte_identical_to_job_body_trace(self, api):
        body = _run_failing_job(api)
        record = _get(api, f"/v1/traces/{body['trace']['trace_id']}")
        assert json.dumps(record["trace"], sort_keys=True) \
            == json.dumps(body["trace"], sort_keys=True)

    def test_unknown_trace_is_a_404_with_typed_code(self, api):
        status, envelope = _error(api, "/v1/traces/tr-does-not-exist")
        assert status == 404
        assert envelope["code"] == "unknown_trace"

    def test_bad_query_params_are_400(self, api):
        for path in ("/v1/traces?limit=0",
                     "/v1/traces?limit=9999",
                     "/v1/traces?outcome=exploded",
                     "/v1/traces?min_duration_ms=banana",
                     "/v1/admin/events?limit=0"):
            status, envelope = _error(api, path)
            assert status == 400, path
            assert envelope["code"] == "bad_request", path

    def test_min_duration_filter_excludes_fast_jobs(self, api):
        _run_failing_job(api)
        doc = _get(api, "/v1/traces?min_duration_ms=3600000")
        assert doc["traces"] == []

    def test_events_ring_answers_with_stats(self, api):
        _run_failing_job(api)
        doc = _get(api, "/v1/admin/events?limit=5")
        assert len(doc["events"]) <= 5
        assert doc["stats"]["seen"] > 0

    def test_dump_is_a_complete_bundle(self, api):
        _run_failing_job(api)
        bundle = _post(api, "/v1/admin/dump", {})
        assert bundle["role"] == "node"
        assert bundle["config"]["max_workers"] == 1
        assert bundle["stats"]["jobs"]["failed"] >= 1
        assert any(m["name"] == "repro_jobs_failed_total"
                   for m in bundle["metrics"]["metrics"])
        assert [s["name"] for s in bundle["slo"]] \
            == ["availability", "latency_1s"]
        assert bundle["trace_archive"]["retained"] >= 1
        assert "events" in bundle and "events_stats" in bundle
        json.dumps(bundle)  # the whole bundle must be JSON-serializable


@pytest.fixture
def trace_fleet(tmp_path):
    """Two live nodes (everything retained) + a router HTTP server."""
    engines, servers = [], []
    for i in range(2):
        engine = Engine(max_workers=1, batch_window=0.0,
                        store_dir=str(tmp_path / f"node-{i}"),
                        trace_slow_threshold=0.0)  # retain every trace
        server = create_server(engine, node_name=f"node-{i}")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        engines.append(engine)
        servers.append(server)
    nodes = [Node(f"http://127.0.0.1:{server.server_address[1]}",
                  name=f"node-{i}")
             for i, server in enumerate(servers)]
    router = ClusterRouter(nodes, timeout=30.0)
    router_server = create_router_server(router)
    threading.Thread(target=router_server.serve_forever,
                     daemon=True).start()
    base = f"http://127.0.0.1:{router_server.server_address[1]}"
    try:
        yield base
    finally:
        router_server.shutdown()
        router_server.server_close()
        for server, engine in zip(servers, engines):
            server.shutdown()
            server.server_close()
            engine.close()
        router.close()


class TestRouterTraceEndpoints:
    def _submit_spread(self, base, count=4):
        """Distinct fast jobs so the ring spreads them over both nodes."""
        bodies = []
        for n in range(300, 300 + count):
            accepted = _post(base, "/v1/jobs",
                             {"dataset": f"Uniform100M2:{n}"})
            body = _get(base, f"/v1/jobs/{accepted['job_id']}?wait_s=60")
            assert body["status"] == "done", body
            bodies.append(body)
        return bodies

    def test_fanout_merges_node_tagged_records(self, trace_fleet):
        bodies = self._submit_spread(trace_fleet)
        doc = _get(trace_fleet, "/v1/traces?limit=500")
        ids = {record["trace_id"] for record in doc["traces"]}
        assert {b["trace"]["trace_id"] for b in bodies} <= ids
        assert all(record["node"].startswith("node-")
                   for record in doc["traces"])
        assert set(doc["nodes"]) == {"node-0", "node-1"}
        assert all("returned" in entry for entry in doc["nodes"].values())
        durations = [record["duration_s"] for record in doc["traces"]]
        assert durations == sorted(durations, reverse=True)

    def test_lookup_resolves_across_the_fleet(self, trace_fleet):
        bodies = self._submit_spread(trace_fleet)
        for body in bodies:
            record = _get(trace_fleet,
                          f"/v1/traces/{body['trace']['trace_id']}")
            assert json.dumps(record["trace"], sort_keys=True) \
                == json.dumps(body["trace"], sort_keys=True)
        status, envelope = _error(trace_fleet, "/v1/traces/tr-nowhere")
        assert status == 404 and envelope["code"] == "unknown_trace"

    def test_router_dump_and_events(self, trace_fleet):
        self._submit_spread(trace_fleet, count=1)
        bundle = _post(trace_fleet, "/v1/admin/dump", {})
        assert bundle["role"] == "router"
        assert {node["name"] for node in bundle["healthz"]["nodes"]} \
            == {"node-0", "node-1"}
        assert "key_share" in bundle and "events" in bundle
        json.dumps(bundle)
        doc = _get(trace_fleet, "/v1/admin/events?limit=5")
        assert doc["stats"]["seen"] > 0

    def test_router_metrics_carry_node_labeled_slo_series(self, trace_fleet):
        self._submit_spread(trace_fleet, count=1)
        with urllib.request.urlopen(f"{trace_fleet}/v1/metrics",
                                    timeout=30) as resp:
            text = resp.read().decode()
        assert 'repro_slo_burn_rate{' in text
        assert 'node="node-0"' in text
