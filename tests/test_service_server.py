"""Tests for the JSON-over-HTTP front end (repro.service.server)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import emst


def get(url):
    with urllib.request.urlopen(url, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def post(url, obj):
    req = urllib.request.Request(
        url, data=json.dumps(obj).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def test_healthz(api):
    status, body = get(f"{api}/v1/healthz")
    assert status == 200
    assert body["status"] == "ok"
    # The probe names the execution backend so deployment smoke checks can
    # assert the server runs the one they asked for.
    assert body["backend"] == "thread"


def test_job_round_trip_dataset(api):
    status, submitted = post(f"{api}/v1/jobs",
                             {"dataset": "Uniform100M2:300"})
    assert status == 202
    job_id = submitted["job_id"]
    status, result = get(f"{api}/v1/jobs/{job_id}?wait=60")
    assert status == 200
    assert result["status"] == "done"
    assert len(result["payload"]["edges"]) == 299
    assert result["payload"]["n_points"] == 300


def test_job_round_trip_inline_points(api, uniform_2d):
    direct = emst(uniform_2d)
    _, submitted = post(f"{api}/v1/jobs",
                        {"points": uniform_2d.tolist()})
    _, result = get(f"{api}/v1/jobs/{submitted['job_id']}?wait=60")
    assert result["status"] == "done"
    assert np.array_equal(np.asarray(result["payload"]["edges"]),
                          direct.edges)
    assert np.allclose(np.asarray(result["payload"]["weights"]),
                       direct.weights)


def test_hdbscan_over_http(api):
    _, submitted = post(f"{api}/v1/jobs",
                        {"dataset": "VisualVar10M2D:400",
                         "algorithm": "hdbscan",
                         "min_cluster_size": 10})
    _, result = get(f"{api}/v1/jobs/{submitted['job_id']}?wait=60")
    assert result["status"] == "done"
    assert result["payload"]["n_clusters"] >= 1
    assert len(result["payload"]["labels"]) == 400


def test_stats_reflect_cache_hits(api):
    for _ in range(2):
        _, submitted = post(f"{api}/v1/jobs", {"dataset": "Normal100M2:200"})
        _, result = get(f"{api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["status"] == "done"
    assert result["cache"]["result_hit"]
    status, stats = get(f"{api}/v1/stats")
    assert status == 200
    assert stats["jobs"]["done"] == 2
    assert stats["result_cache"]["hits"] == 1
    assert stats["scheduler"]["jobs_completed"] == 2


def test_pending_status_without_wait(api):
    _, submitted = post(f"{api}/v1/jobs", {"dataset": "Uniform100M3:2000"})
    status, body = get(f"{api}/v1/jobs/{submitted['job_id']}")
    assert status == 200
    assert body["status"] in ("pending", "running", "done")


def test_unknown_job_is_404(api):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{api}/v1/jobs/job-424242")
    assert excinfo.value.code == 404


def test_unknown_endpoint_is_404(api):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{api}/v2/jobs")
    assert excinfo.value.code == 404


def test_bad_json_is_400(api):
    req = urllib.request.Request(f"{api}/v1/jobs", data=b"not json{",
                                 headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=30)
    assert excinfo.value.code == 400


def test_bad_spec_is_400(api):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(f"{api}/v1/jobs", {"dataset": "Uniform100M2:50",
                                "algorithm": "kmeans"})
    assert excinfo.value.code == 400
    detail = json.loads(excinfo.value.read())
    assert detail["error"]["code"] == "bad_request"
    assert detail["error"]["retryable"] is False
    assert "algorithm" in detail["error"]["message"]


def test_failed_job_reported_over_http(api):
    # Valid at submit time, fails in the worker (hdbscan needs >= 2 points).
    _, submitted = post(f"{api}/v1/jobs", {"points": [[0.0, 0.0]],
                                           "algorithm": "hdbscan"})
    _, result = get(f"{api}/v1/jobs/{submitted['job_id']}?wait=60")
    assert result["status"] == "failed"
    assert result["error"]


def test_wrong_typed_fields_are_400(api):
    for body in ({"dataset": "Uniform100M2:50", "k_pts": "5"},
                 {"dataset": "Uniform100M2:50", "min_cluster_size": "3"},
                 {"dataset": "Uniform100M2:50", "priority": "high"}):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{api}/v1/jobs", body)
        assert excinfo.value.code == 400
        assert "integer" in \
            json.loads(excinfo.value.read())["error"]["message"]


def test_bad_dataset_spec_is_400(api):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(f"{api}/v1/jobs", {"dataset": "NoSuchDataset:100"})
    assert excinfo.value.code == 400
    assert "unknown dataset" in \
        json.loads(excinfo.value.read())["error"]["message"]


def test_wait_s_long_poll_alias(api):
    _, submitted = post(f"{api}/v1/jobs", {"dataset": "Uniform100M2:300"})
    status, body = get(f"{api}/v1/jobs/{submitted['job_id']}?wait_s=60")
    assert status == 200
    assert body["status"] == "done"


def test_bad_wait_s_is_400(api):
    _, submitted = post(f"{api}/v1/jobs", {"dataset": "Uniform100M2:300"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{api}/v1/jobs/{submitted['job_id']}?wait_s=soon")
    assert excinfo.value.code == 400


def test_huge_integer_points_are_400_not_500(api):
    # JSON integers are unbounded; converting one that overflows float64
    # raises OverflowError, which must surface as a client error and not
    # crash the handler (the connection would die with no response).
    body = json.dumps({"points": [[1, int("9" * 400)]]}).encode()
    req = urllib.request.Request(f"{api}/v1/jobs", data=body,
                                 headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=30)
    assert excinfo.value.code == 400
    assert "points" in json.loads(excinfo.value.read())["error"]["message"]


def test_ragged_points_are_400(api):
    for points in ([[1.0, 2.0], [3.0]],            # ragged
                   [[1.0, "x"], [3.0, 4.0]],       # non-numeric
                   [[1.0, {"v": 2}]]):             # nested object
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{api}/v1/jobs", {"points": points})
        assert excinfo.value.code == 400


def test_x_repro_node_header_and_identity(api):
    with urllib.request.urlopen(f"{api}/v1/healthz", timeout=30) as resp:
        body = json.loads(resp.read())
        header = resp.headers.get("X-Repro-Node")
    assert header  # default identity is host:port
    assert body["node"] == header
