"""Wavefront traversal engine: equivalence, counters, workspaces, plans.

The wavefront kernels must be *indistinguishable by answer* from the
single-pop reference engine on every query the EMST pipeline issues —
including adversarial inputs (duplicate points, collinear sets,
all-identical points) under every constraint combination (component
labels x mutual-reachability x self-exclusion x initial radius).  The
canonical payload bytes certify that end to end; a pinned-counter
regression keeps the multi-pop accounting semantics from drifting.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.bvh import (
    TraversalWorkspace,
    batched_knn,
    batched_nearest,
    build_bvh,
    radius_search,
    traversal_engine,
)
from repro.bvh.plan import build_query_plan
from repro.bvh.traversal import (
    ENGINES,
    get_default_engine,
    set_default_engine,
)
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.core.labels import reduce_labels
from repro.errors import InvalidInputError
from repro.hdbscan.hdbscan import hdbscan
from repro.kokkos.counters import CostCounters
from repro.service.jobs import (
    canonical_payload_bytes,
    emst_result_to_dict,
    hdbscan_result_to_dict,
)
from tests.conftest import finite_points

#: The pre-wavefront configuration: the semantics every new knob must
#: reproduce byte for byte.
OLD_CONFIG = SingleTreeConfig(leaf_size=1, warm_frontier=False,
                              bound_window=1)


def adversarial_point_sets():
    rng = np.random.default_rng(7)
    uniform = rng.random((120, 2))
    return [
        ("uniform", uniform),
        ("duplicates", np.repeat(rng.random((40, 2)), 3, axis=0)),
        ("collinear", np.stack([np.linspace(0.0, 1.0, 90),
                                np.zeros(90)], axis=1)),
        ("identical", np.zeros((33, 2))),
        ("two-clusters", np.concatenate([uniform * 0.01,
                                         uniform * 0.01 + 5.0])),
    ]


class TestEngineSelection:
    def test_default_is_wavefront(self):
        assert get_default_engine() == "wavefront"
        assert set(ENGINES) == {"wavefront", "reference"}

    def test_context_manager_restores(self):
        before = get_default_engine()
        with traversal_engine("reference"):
            assert get_default_engine() == "reference"
        assert get_default_engine() == before

    def test_rejects_unknown_engine(self):
        with pytest.raises(InvalidInputError):
            set_default_engine("gpu")
        rng = np.random.default_rng(0)
        bvh = build_bvh(rng.random((10, 2)))
        with pytest.raises(InvalidInputError):
            batched_nearest(bvh, bvh.points, engine="cuda")


class TestByteIdentity:
    """New vs reference results on adversarial inputs, every constraint."""

    @pytest.mark.parametrize("name,pts", adversarial_point_sets())
    @pytest.mark.parametrize("leaf_size", [1, 3])
    @pytest.mark.parametrize("warm", [False, True])
    def test_emst_canonical_bytes(self, name, pts, leaf_size, warm):
        reference = emst(pts, config=OLD_CONFIG)
        want = canonical_payload_bytes(emst_result_to_dict(reference))
        config = SingleTreeConfig(leaf_size=leaf_size, warm_frontier=warm)
        for engine in ENGINES:
            with traversal_engine(engine):
                got = emst(pts, config=config)
            assert canonical_payload_bytes(emst_result_to_dict(got)) \
                == want, (name, leaf_size, warm, engine)

    @pytest.mark.parametrize("name,pts", adversarial_point_sets())
    def test_mrd_emst_canonical_bytes(self, name, pts):
        reference = mutual_reachability_emst(pts, 4, config=OLD_CONFIG)
        want = canonical_payload_bytes(emst_result_to_dict(reference))
        for engine in ENGINES:
            for leaf_size in (1, 4):
                with traversal_engine(engine):
                    got = mutual_reachability_emst(
                        pts, 4, config=SingleTreeConfig(leaf_size=leaf_size))
                assert canonical_payload_bytes(emst_result_to_dict(got)) \
                    == want, (name, engine, leaf_size)

    def test_hdbscan_canonical_bytes(self):
        rng = np.random.default_rng(3)
        centers = rng.random((4, 2)) * 10
        pts = np.concatenate([c + rng.normal(0, 0.1, (50, 2))
                              for c in centers])
        reference = hdbscan(pts, min_cluster_size=6, k_pts=4,
                            config=OLD_CONFIG)
        want = canonical_payload_bytes(hdbscan_result_to_dict(reference))
        for engine in ENGINES:
            with traversal_engine(engine):
                got = hdbscan(pts, min_cluster_size=6, k_pts=4)
            assert canonical_payload_bytes(hdbscan_result_to_dict(got)) \
                == want, engine

    @given(finite_points(min_n=2, max_n=60))
    def test_property_engines_agree_on_emst(self, pts):
        results = []
        for engine in ENGINES:
            with traversal_engine(engine):
                results.append(emst(pts))
        assert np.array_equal(results[0].edges, results[1].edges)
        assert np.array_equal(results[0].weights, results[1].weights)

    @pytest.mark.parametrize("name,pts", adversarial_point_sets())
    def test_constrained_nearest_all_combos(self, name, pts):
        """labels x mrd x exclude x init-radius, keyed: identical answers."""
        rng = np.random.default_rng(11)
        bvh = build_bvh(pts)
        n = bvh.n
        labels = rng.integers(0, 3, size=n)
        node_labels = reduce_labels(bvh, labels)
        core = rng.random(n) * 0.05
        combos = []
        for use_labels in (False, True):
            for use_mrd in (False, True):
                for use_excl in (False, True):
                    for use_radius in (False, True):
                        combos.append(
                            (use_labels, use_mrd, use_excl, use_radius))
        for use_labels, use_mrd, use_excl, use_radius in combos:
            kwargs = dict(query_ids=bvh.order, point_ids=bvh.order)
            if use_labels:
                kwargs.update(query_labels=labels, node_labels=node_labels,
                              point_labels=labels)
            if use_mrd:
                kwargs.update(query_core_sq=core, point_core_sq=core)
            if use_excl:
                kwargs.update(exclude_position=np.arange(n))
            if use_radius:
                kwargs.update(init_radius_sq=np.full(n, 0.3))
            outs = []
            for engine in ENGINES:
                outs.append(batched_nearest(bvh, bvh.points, engine=engine,
                                            **kwargs))
            combo = (use_labels, use_mrd, use_excl, use_radius)
            assert np.array_equal(outs[0].position, outs[1].position), \
                (name, combo)
            assert np.array_equal(outs[0].distance_sq, outs[1].distance_sq), \
                (name, combo)
            assert np.array_equal(outs[0].key, outs[1].key), (name, combo)

    def test_knn_distances_agree(self):
        for name, pts in adversarial_point_sets():
            bvh = build_bvh(pts)
            for k in (1, 4):
                a = batched_knn(bvh, bvh.points, k, engine="wavefront")
                b = batched_knn(bvh, bvh.points, k, engine="reference")
                assert np.array_equal(a.distance_sq, b.distance_sq), \
                    (name, k)

    def test_radius_sets_agree(self):
        for name, pts in adversarial_point_sets():
            bvh = build_bvh(pts)
            offs_a, pos_a, _ = radius_search(bvh, bvh.points, 0.2,
                                             engine="wavefront")
            offs_b, pos_b, _ = radius_search(bvh, bvh.points, 0.2,
                                             engine="reference")
            assert np.array_equal(offs_a, offs_b), name
            for i in range(bvh.n):
                assert set(pos_a[offs_a[i]:offs_a[i + 1]]) == \
                    set(pos_b[offs_b[i]:offs_b[i + 1]]), (name, i)


def _grid16():
    xs, ys = np.meshgrid(np.arange(4.0), np.arange(4.0))
    return np.stack([xs.ravel(), ys.ravel()], axis=1)


class TestCounterRegression:
    """Exact visit counts on a fixed 16-point grid — pinned so the
    multi-pop counter semantics cannot silently drift."""

    def _count(self, bvh, engine, width=None, **kwargs):
        counters = CostCounters()
        extra = {} if width is None else {"width": width}
        batched_nearest(bvh, bvh.points, engine=engine, counters=counters,
                        exclude_position=np.arange(bvh.n), **extra, **kwargs)
        return counters

    def test_reference_counts(self):
        c = self._count(build_bvh(_grid16()), "reference")
        assert (c.nodes_visited, c.stack_ops, c.box_distance_evals,
                c.distance_evals, c.leaf_visits, c.lane_steps,
                c.warp_steps) == (136, 256, 376, 48, 48, 136, 10)

    def test_wavefront_width1_matches_reference_pops(self):
        # Single-pop wavefront: identical traversal, remembered bounds
        # (the only divergence is box evals: root seed + 2 per survivor
        # instead of 3 recomputes per pop).
        c = self._count(build_bvh(_grid16()), "wavefront", width=1)
        assert (c.nodes_visited, c.stack_ops, c.distance_evals,
                c.leaf_visits, c.lane_steps, c.warp_steps) \
            == (136, 256, 48, 48, 136, 10)
        assert c.box_distance_evals == 256

    def test_wavefront_multi_pop_counts(self):
        # Draining 2 entries per lane per iteration halves the lane steps
        # and overvisits nodes against the per-drain (staler) radii —
        # both effects pinned exactly.
        c = self._count(build_bvh(_grid16()), "wavefront", width=2)
        assert (c.nodes_visited, c.stack_ops, c.box_distance_evals,
                c.distance_evals, c.leaf_visits, c.lane_steps,
                c.warp_steps) == (184, 352, 288, 64, 64, 104, 7)

    def test_wavefront_seeded_counts(self):
        # Plan seeding starts each lane at its path siblings: node visits
        # drop from 136 to 88 and lane steps from 136 to 36 on the grid.
        c = CostCounters()
        bvh = build_bvh(_grid16())
        batched_nearest(bvh, bvh.points, engine="wavefront", width=4,
                        workspace=TraversalWorkspace(),
                        exclude_position=np.arange(16), counters=c,
                        self_queries=True)
        assert (c.nodes_visited, c.stack_ops, c.distance_evals,
                c.leaf_visits, c.lane_steps, c.warp_steps) \
            == (88, 176, 48, 48, 36, 3)

    def test_blocked_leaves_counts(self):
        # leaf_size=4: a quarter of the leaves, whole-block evaluation.
        c = self._count(build_bvh(_grid16(), leaf_size=4), "wavefront",
                        width=2)
        assert (c.nodes_visited, c.stack_ops, c.box_distance_evals,
                c.distance_evals, c.leaf_visits, c.lane_steps,
                c.warp_steps) == (48, 80, 112, 240, 64, 32, 2)

    def test_emst_round_counters_populated(self):
        # RoundStats survive the new kernels (used by the figure benches).
        result = emst(np.random.default_rng(0).random((256, 2)))
        for r in result.rounds:
            assert r.nodes_visited > 0
            assert r.warp_steps > 0
            assert r.lane_steps >= r.warp_steps


class TestWorkspace:
    def test_stack_reuse_across_launches(self):
        rng = np.random.default_rng(1)
        bvh = build_bvh(rng.random((300, 3)))
        ws = TraversalWorkspace()
        batched_knn(bvh, bvh.points, 4, workspace=ws)
        allocations = ws.allocations
        for _ in range(3):
            batched_knn(bvh, bvh.points, 4, workspace=ws)
        assert ws.allocations == allocations  # steady state: no reallocs
        assert ws.nbytes > 0

    def test_take_grows_and_reuses(self):
        ws = TraversalWorkspace()
        a = ws.take("x", 100)
        before = ws.allocations
        b = ws.take("x", 50)
        assert ws.allocations == before  # served from the same buffer
        assert b.base is a.base or b.base is a  # same arena memory
        ws.take("x", 10_000)
        assert ws.allocations == before + 1

    def test_emst_accepts_shared_workspace(self):
        rng = np.random.default_rng(2)
        pts = rng.random((200, 2))
        ws = TraversalWorkspace()
        first = emst(pts, workspace=ws)
        second = emst(pts, workspace=ws)
        assert np.array_equal(first.edges, second.edges)

    def test_plan_cached_per_tree(self):
        rng = np.random.default_rng(3)
        ws = TraversalWorkspace()
        bvh_a = build_bvh(rng.random((64, 2)))
        plan_a, built_a = ws.plan_for(bvh_a)
        plan_a2, built_a2 = ws.plan_for(bvh_a)
        assert built_a and not built_a2 and plan_a is plan_a2
        bvh_b = build_bvh(rng.random((64, 2)))
        _, built_b = ws.plan_for(bvh_b)
        assert built_b  # different tree -> new plan


class TestQueryPlan:
    def test_path_siblings_partition_tree(self):
        rng = np.random.default_rng(5)
        bvh = build_bvh(rng.random((37, 2)))
        plan = build_query_plan(bvh)
        for lane in (0, 17, 36):
            nodes = [int(x) for x in plan.sib_nodes[lane] if x >= 0]
            # Own leaf is the last column.
            assert nodes[-1] >= bvh.leaf_base
            # The union of all subtree leaves is every sorted position.
            seen = []
            for node in nodes:
                stack = [node]
                while stack:
                    x = stack.pop()
                    if x >= bvh.leaf_base:
                        block = x - bvh.leaf_base
                        start = int(bvh.leaf_start[block])
                        seen.extend(range(start,
                                          start + int(bvh.leaf_count[block])))
                    else:
                        stack.extend([int(bvh.left[x]), int(bvh.right[x])])
            assert sorted(seen) == list(range(bvh.n))

    def test_self_queries_requires_full_batch(self):
        rng = np.random.default_rng(6)
        bvh = build_bvh(rng.random((50, 2)))
        with pytest.raises(InvalidInputError):
            batched_nearest(bvh, bvh.points[:10], engine="wavefront",
                            self_queries=True)
