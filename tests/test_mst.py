"""Tests for classical MST algorithms (repro.mst)."""

import numpy as np
import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.mst import (
    UnionFind,
    boruvka_graph,
    is_spanning_tree,
    kruskal,
    prim,
    total_weight,
)
from repro.mst.validate import edges_canonical, is_spanning_forest

ALGORITHMS = [kruskal, prim, boruvka_graph]


def random_connected_graph(n, m, seed, *, weight_levels=None):
    rng = np.random.default_rng(seed)
    # Spanning chain guarantees connectivity; extra random edges on top.
    chain_u = np.arange(n - 1)
    chain_v = np.arange(1, n)
    extra_u = rng.integers(0, n, size=m)
    extra_v = rng.integers(0, n, size=m)
    keep = extra_u != extra_v
    u = np.concatenate([chain_u, extra_u[keep]])
    v = np.concatenate([chain_v, extra_v[keep]])
    if weight_levels:
        w = rng.integers(1, weight_levels + 1, size=u.size).astype(float)
    else:
        w = rng.random(u.size)
    return u, v, w


def nx_mst_weight(n, u, v, w):
    G = nx.Graph()
    G.add_nodes_from(range(n))
    for a, b, ww in zip(u, v, w):
        if not G.has_edge(a, b) or G[a][b]["weight"] > ww:
            G.add_edge(int(a), int(b), weight=float(ww))
    return sum(d["weight"]
               for _, _, d in nx.minimum_spanning_tree(G).edges(data=True))


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.union(1, 0)  # already merged
        assert uf.n_components == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_find_many_matches_find(self):
        uf = UnionFind(20)
        rng = np.random.default_rng(0)
        for _ in range(15):
            uf.union(int(rng.integers(0, 20)), int(rng.integers(0, 20)))
        many = uf.find_many(np.arange(20))
        assert all(many[i] == uf.find(i) for i in range(20))

    def test_component_labels_partition(self):
        uf = UnionFind(10)
        uf.union(0, 5)
        uf.union(5, 7)
        labels = uf.component_labels()
        assert labels[0] == labels[5] == labels[7]
        assert len(np.unique(labels)) == uf.n_components

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(4))
    def test_weight_matches(self, alg, seed):
        n = 30
        u, v, w = random_connected_graph(n, 60, seed)
        mu, mv, mw = alg(n, u, v, w)
        assert is_spanning_tree(n, mu, mv)
        assert total_weight(mw) == pytest.approx(nx_mst_weight(n, u, v, w))

    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("seed", range(3))
    def test_heavy_ties_weight_matches(self, alg, seed):
        n = 25
        u, v, w = random_connected_graph(n, 80, seed, weight_levels=3)
        mu, mv, mw = alg(n, u, v, w)
        assert is_spanning_tree(n, mu, mv)
        assert total_weight(mw) == pytest.approx(nx_mst_weight(n, u, v, w))

    @pytest.mark.parametrize("seed", range(3))
    def test_all_algorithms_identical_edge_sets(self, seed):
        # The tie-broken total order makes the MST unique.
        n = 30
        u, v, w = random_connected_graph(n, 90, seed, weight_levels=2)
        sets = [edges_canonical(*alg(n, u, v, w)[:2]) for alg in ALGORITHMS]
        assert sets[0] == sets[1] == sets[2]


class TestEdgeCases:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_single_vertex(self, alg):
        mu, mv, mw = alg(1, np.empty(0, int), np.empty(0, int),
                         np.empty(0, float))
        assert mu.size == 0

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_two_vertices(self, alg):
        mu, mv, mw = alg(2, np.array([0]), np.array([1]), np.array([2.5]))
        assert mu.tolist() == [0]
        assert mw.tolist() == [2.5]

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_disconnected_forest(self, alg):
        # Two components: edges within {0,1} and {2,3}.
        mu, mv, mw = alg(4, np.array([0, 2]), np.array([1, 3]),
                         np.array([1.0, 2.0]))
        assert mu.size == 2
        assert is_spanning_forest(4, mu, mv)

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_parallel_edges(self, alg):
        mu, mv, mw = alg(2, np.array([0, 0, 1]), np.array([1, 1, 0]),
                         np.array([5.0, 1.0, 3.0]))
        assert mw.tolist() == [1.0]

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_rejects_out_of_range(self, alg):
        with pytest.raises(InvalidInputError):
            alg(2, np.array([0]), np.array([2]), np.array([1.0]))

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_rejects_shape_mismatch(self, alg):
        with pytest.raises(InvalidInputError):
            alg(3, np.array([0]), np.array([1, 2]), np.array([1.0]))


class TestValidators:
    def test_spanning_tree_accepts_path(self):
        assert is_spanning_tree(4, np.array([0, 1, 2]), np.array([1, 2, 3]))

    def test_rejects_cycle(self):
        assert not is_spanning_tree(3, np.array([0, 1, 0]),
                                    np.array([1, 2, 2]))

    def test_rejects_wrong_count(self):
        assert not is_spanning_tree(4, np.array([0]), np.array([1]))

    def test_rejects_disconnected(self):
        assert not is_spanning_tree(4, np.array([0, 0, 0]),
                                    np.array([1, 1, 2]))

    def test_forest_accepts_empty(self):
        assert is_spanning_forest(3, np.empty(0, int), np.empty(0, int))

    def test_empty_graph(self):
        assert is_spanning_tree(0, np.empty(0, int), np.empty(0, int))

    def test_canonical_edges(self):
        assert edges_canonical(np.array([2, 1]), np.array([0, 3])) == \
            {(0, 2), (1, 3)}


class TestCounters:
    def test_kruskal_records_sort(self):
        counters = CostCounters()
        u, v, w = random_connected_graph(20, 40, 0)
        kruskal(20, u, v, w, counters=counters)
        assert counters.sort_elements == u.size

    def test_boruvka_rounds_bounded(self):
        u, v, w = random_connected_graph(64, 200, 1)
        mu, mv, mw = boruvka_graph(64, u, v, w)
        assert is_spanning_tree(64, mu, mv)


@given(st.integers(2, 40), st.integers(0, 100), st.integers(0, 5))
def test_property_three_algorithms_agree(n, m, seed):
    u, v, w = random_connected_graph(n, m, seed, weight_levels=4)
    results = [alg(n, u, v, w) for alg in ALGORITHMS]
    weights = [total_weight(r[2]) for r in results]
    assert weights[0] == pytest.approx(weights[1])
    assert weights[0] == pytest.approx(weights[2])
    assert edges_canonical(*results[0][:2]) == edges_canonical(*results[1][:2])
