"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

# Property tests build spatial indexes, which is slow under the default
# deadline; a single relaxed profile keeps hypothesis stable on CI.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def api():
    """A live repro.service HTTP server on a free port; yields its base URL."""
    import threading

    from repro.service import Engine
    from repro.service.server import create_server

    engine = Engine(max_workers=1, batch_window=0.001)
    server = create_server(engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        engine.close()


@pytest.fixture
def uniform_2d(rng):
    return rng.random((200, 2))


@pytest.fixture
def uniform_3d(rng):
    return rng.random((200, 3))


@pytest.fixture
def clustered_3d(rng):
    centers = rng.random((5, 3))
    pts = centers[rng.integers(0, 5, 300)] + 0.01 * rng.standard_normal((300, 3))
    return pts


def finite_points(min_n=2, max_n=80, dims=(2, 3)):
    """Hypothesis strategy: well-conditioned (n, d) float point arrays."""
    return st.integers(min_value=min_n, max_value=max_n).flatmap(
        lambda n: st.sampled_from(list(dims)).flatmap(
            lambda d: arrays(
                dtype=np.float64,
                shape=(n, d),
                elements=st.floats(min_value=-1e3, max_value=1e3,
                                   allow_nan=False, allow_infinity=False,
                                   width=32),
            )))


# Re-exported for test modules.
points_strategy = finite_points
