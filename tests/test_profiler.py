"""Tests for the sampling profiler and resource telemetry
(repro.obs.profiler), the thread→phase registry (repro.timing) and the
``/v1/profile`` wire surface."""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.contract import ApiError, parse_profile_query
from repro.obs import MetricsRegistry
from repro.obs.profiler import (
    DEFAULT_PROFILE_HZ,
    MAX_PROFILE_HZ,
    MAX_PROFILE_SECONDS,
    ResourceCollector,
    SamplingProfiler,
    empty_profile_doc,
    merge_profiles,
    render_collapsed,
)
from repro.service import Engine, JobSpec, canonical_payload_bytes
from repro.timing import (
    PhaseTimer,
    active_phase,
    active_phases,
    phase_registry_size,
)

#: Engine phase names the trace layer emits — samples may only ever
#: attribute to these.
ENGINE_PHASES = {"resolve", "tree", "core", "mst", "tree_build",
                 "compute", "dispatch"}


def _spin_in_phase(name, entered, release):
    """Target: hold ``name`` on the phase registry until released."""
    with PhaseTimer().phase(name):
        entered.set()
        release.wait(timeout=30)


@contextlib.contextmanager
def _idle_thread(name="idler"):
    """A phase-less thread for the sampler to observe (``sample_once``
    deliberately skips its calling thread)."""
    release = threading.Event()
    thread = threading.Thread(target=release.wait, args=(30,), name=name)
    thread.start()
    try:
        yield thread
    finally:
        release.set()
        thread.join(timeout=10)


# --------------------------------------------------------- phase registry

class TestPhaseRegistry:
    def test_phase_visible_while_active_and_gone_after(self):
        ident = threading.get_ident()
        assert active_phase(ident) is None
        before = phase_registry_size()
        with PhaseTimer().phase("mst"):
            assert active_phase(ident) == "mst"
        assert active_phase(ident) is None
        assert phase_registry_size() == before

    def test_nested_phases_report_innermost(self):
        ident = threading.get_ident()
        timer = PhaseTimer()
        with timer.phase("compute"):
            with timer.phase("core"):
                assert active_phase(ident) == "core"
            assert active_phase(ident) == "compute"
        assert active_phase(ident) is None

    def test_exception_still_pops(self):
        ident = threading.get_ident()
        with pytest.raises(RuntimeError):
            with PhaseTimer().phase("mst"):
                raise RuntimeError("boom")
        assert active_phase(ident) is None

    def test_threads_are_isolated(self):
        entered, release = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_spin_in_phase, args=("tree_build", entered, release))
        worker.start()
        try:
            assert entered.wait(timeout=10)
            assert active_phases()[worker.ident] == "tree_build"
            assert active_phase(threading.get_ident()) is None
        finally:
            release.set()
            worker.join(timeout=10)
        assert worker.ident not in active_phases()


# ------------------------------------------------------ sampling profiler

class TestSamplingProfiler:
    def test_rejects_bad_hz(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            SamplingProfiler(reg, hz=0, auto_start=False)
        with pytest.raises(ValueError):
            SamplingProfiler(reg, hz=MAX_PROFILE_HZ + 1, auto_start=False)

    def test_sample_lands_in_the_active_phase(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, auto_start=False)
        entered, release = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_spin_in_phase, args=("mst", entered, release))
        worker.start()
        try:
            assert entered.wait(timeout=10)
            assert profiler.sample_once() >= 1
        finally:
            release.set()
            worker.join(timeout=10)
        doc = profiler.profile_doc()
        assert doc["enabled"] and doc["samples"] >= 1
        assert doc["phases"].get("mst", 0) >= 1
        mst_rows = [row for row in doc["stacks"] if row["phase"] == "mst"]
        assert mst_rows and all(row["stack"] for row in mst_rows)
        # frame tokens are collapsed-safe: no spaces or semicolons
        for row in doc["stacks"]:
            for frame in row["stack"]:
                assert " " not in frame and ";" not in frame

    def test_threads_outside_phases_are_unattributed(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, auto_start=False)
        with _idle_thread():
            assert profiler.sample_once() >= 1
        doc = profiler.profile_doc()
        assert doc["samples"] >= 1
        assert doc["in_phase_samples"] == 0
        samples = reg.counter(
            "repro_profile_samples_total", labels=("state",))
        assert samples.value(state="unattributed") >= 1

    def test_background_loop_fills_the_ring(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, hz=100.0)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline \
                    and profiler.profile_doc()["samples"] < 3:
                time.sleep(0.02)
        finally:
            profiler.stop()
        assert profiler.profile_doc()["samples"] >= 3
        assert profiler.stats()["running"] is False

    def test_capture_clamps_and_reports_window(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, hz=50.0)
        try:
            doc = profiler.capture(0.3, hz=150.0)
        finally:
            profiler.stop()
        assert doc["hz"] == 150.0
        assert 0.25 <= doc["duration_s"] <= 2.0
        assert doc["samples"] >= 5  # ~45 expected at 150 Hz
        # seconds above the cap clamp instead of hanging the caller
        assert MAX_PROFILE_SECONDS < 60
        assert profiler.capture(-1.0)["samples"] == 0

    def test_capture_only_counts_its_own_window(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, auto_start=False)
        with _idle_thread():
            profiler.sample_once()  # stale ring record
            since = time.monotonic()
            doc = profiler.profile_doc(since=since)
            assert doc["samples"] == 0
            profiler.sample_once()
            assert profiler.profile_doc(since=since)["samples"] >= 1

    def test_stats_shape(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, auto_start=False)
        with _idle_thread():
            profiler.sample_once()
        stats = profiler.stats()
        assert stats["samples_total"] == \
            stats["in_phase_samples"] + stats["unattributed_samples"]
        assert stats["hz"] == DEFAULT_PROFILE_HZ
        assert stats["sampling_seconds"] > 0
        assert stats["ring_samples"] >= 1

    def test_sampling_seconds_gauge_is_scrapeable(self):
        reg = MetricsRegistry()
        profiler = SamplingProfiler(reg, auto_start=False)
        profiler.sample_once()  # seconds accrue even with no peer threads
        doc = reg.as_dict()
        (metric,) = [m for m in doc["metrics"]
                     if m["name"] == "repro_profile_sampling_seconds_total"]
        assert metric["samples"][0]["value"] > 0


# --------------------------------------------- collapsed render and merge

class TestCollapsedAndMerge:
    DOC = {"enabled": True, "hz": 17.0, "default_hz": 17.0,
           "duration_s": 1.0, "samples": 5, "in_phase_samples": 3,
           "threads": ["worker_0"], "phases": {"mst": 3},
           "stacks": [
               {"phase": "mst", "stack": ["a.py:f:1", "b.py:g:2"],
                "count": 3},
               {"phase": None, "stack": ["c.py:h:3"], "count": 2},
           ],
           "truncated_stacks": 0}

    def test_render_collapsed_lines(self):
        text = render_collapsed(self.DOC)
        lines = text.splitlines()
        assert lines[0] == "mst;a.py:f:1;b.py:g:2 3"
        assert lines[1] == "idle;c.py:h:3 2"

    def test_render_collapsed_empty_doc(self):
        assert render_collapsed(empty_profile_doc()) == ""

    def test_merge_tags_nodes_and_pools_counts(self):
        other = json.loads(json.dumps(self.DOC))  # deep copy
        other["phases"] = {"mst": 1, "core": 2}
        other["in_phase_samples"] = 3
        merged = merge_profiles({"n1": self.DOC, "n2": other})
        assert merged["enabled"] is True
        assert merged["samples"] == 10
        assert merged["in_phase_samples"] == 6
        assert merged["phases"] == {"mst": 4, "core": 2}
        assert {row["node"] for row in merged["stacks"]} == {"n1", "n2"}
        assert sorted(merged["threads"]) == \
            ["n1:worker_0", "n2:worker_0"]
        # node-tagged stacks render with the node as the root frame
        first = render_collapsed(merged).splitlines()[0]
        assert first.startswith(("n1;", "n2;"))

    def test_merge_of_disabled_nodes_stays_disabled(self):
        merged = merge_profiles({"n1": empty_profile_doc(),
                                 "n2": empty_profile_doc()})
        assert merged["enabled"] is False
        assert merged["samples"] == 0

    def test_merge_skips_malformed_entries(self):
        merged = merge_profiles({"ok": self.DOC, "bad": None})
        assert merged["samples"] == self.DOC["samples"]


# ------------------------------------------------------ engine attribution

def _mixed_bodies(n, count):
    # distinct sizes so no result-cache hit short-circuits the compute
    return [{"dataset": f"Uniform100M2:{n + 37 * i}",
             "algorithm": "mrd_emst", "k_pts": 4} for i in range(count)]


def _sample_while_running(engine, job_ids, interval=0.004):
    """Drive the profiler deterministically until every job finishes."""
    for job_id in job_ids:
        while True:
            try:
                engine.result(job_id, timeout=0.0)
                break
            except TimeoutError:
                engine.profiler.sample_once()
                time.sleep(interval)


class TestEngineAttribution:
    def test_thread_backend_attributes_in_job_samples(self):
        with Engine(max_workers=2, batch_window=0.001) as engine:
            job_ids = [engine.submit(JobSpec.from_dict(body))
                       for body in _mixed_bodies(4000, 4)]
            _sample_while_running(engine, job_ids)
            doc = engine.profile()
        assert set(doc["phases"]) <= ENGINE_PHASES
        assert doc["in_phase_samples"] > 0
        # the acceptance bar: >= 80% of in-job samples (stacks inside
        # the executor) attribute to a named engine phase
        in_job = attributed = 0
        for row in doc["stacks"]:
            if any("executor.py" in frame for frame in row["stack"]):
                in_job += row["count"]
                if row["phase"] is not None:
                    attributed += row["count"]
        assert in_job > 0
        assert attributed / in_job >= 0.8, (attributed, in_job)

    def test_process_backend_attributes_dispatch(self):
        with Engine(max_workers=2, backend="process",
                    batch_window=0.001) as engine:
            job_ids = [engine.submit(JobSpec.from_dict(body))
                       for body in _mixed_bodies(3000, 2)]
            _sample_while_running(engine, job_ids)
            doc = engine.profile()
        # worker frames live in other processes; the parent's pool wait
        # is what carries the attribution
        assert doc["phases"].get("dispatch", 0) >= 1
        assert set(doc["phases"]) <= ENGINE_PHASES

    def test_no_phase_registry_leak_after_engine_close(self):
        with Engine(max_workers=2, batch_window=0.001) as engine:
            job_ids = [engine.submit(JobSpec.from_dict(body))
                       for body in _mixed_bodies(2000, 3)]
            for job_id in job_ids:
                assert engine.result(job_id, timeout=60.0) is not None
        assert phase_registry_size() == 0

    def test_dispatch_phase_stays_out_of_timings_and_payload(self):
        body = {"dataset": "Uniform100M2:2000", "algorithm": "emst"}
        with Engine(max_workers=1, backend="process",
                    batch_window=0.0) as engine:
            result = engine.result(engine.submit(JobSpec.from_dict(body)),
                                   timeout=120.0)
        assert "dispatch" not in result.timings
        assert b"dispatch" not in canonical_payload_bytes(result.payload)

    def test_profiling_does_not_change_payload_bytes(self):
        body = {"dataset": "Uniform100M2:3000", "algorithm": "mrd_emst",
                "k_pts": 4}
        with Engine(max_workers=1, batch_window=0.0, obs=False) as engine:
            off = engine.result(engine.submit(JobSpec.from_dict(body)),
                                timeout=120.0)
        with Engine(max_workers=1, batch_window=0.0) as engine:
            job_id = engine.submit(JobSpec.from_dict(body))
            _sample_while_running(engine, [job_id], interval=0.001)
            on = engine.result(job_id, timeout=120.0)
        assert canonical_payload_bytes(on.payload) == \
            canonical_payload_bytes(off.payload)

    def test_obs_off_engine_has_no_profiler(self):
        with Engine(max_workers=1, obs=False) as engine:
            assert engine.profiler is None
            assert engine.resources is None
            doc = engine.profile()
            assert doc["enabled"] is False and doc["samples"] == 0
            dump = engine.dump()
            assert dump["profile"] is None
            assert dump["resources"] is None

    def test_dump_carries_profile_and_resources(self):
        with Engine(max_workers=1) as engine:
            engine.profiler.sample_once()
            dump = engine.dump()
        assert dump["profile"]["samples_total"] >= 1
        assert dump["resources"]["parent"]["pid"] > 0


# ------------------------------------------------------- resource collector

class TestResourceCollector:
    def test_parent_rss_and_cpu_gauges(self):
        reg = MetricsRegistry()
        collector = ResourceCollector(reg)
        try:
            doc = reg.as_dict()
            by_name = {m["name"]: m for m in doc["metrics"]}
            rss = by_name["repro_process_rss_bytes"]["samples"]
            parent = [s for s in rss
                      if s["labels"] == {"role": "parent"}]
            assert parent and parent[0]["value"] > 0
            cpu = by_name["repro_process_cpu_seconds"]["samples"]
            assert any(s["labels"] == {"role": "parent"} and
                       s["value"] >= 0 for s in cpu)
        finally:
            collector.close()

    def test_gc_pauses_land_in_histogram(self):
        import gc
        reg = MetricsRegistry()
        collector = ResourceCollector(reg)
        try:
            gc.collect()
            snap = collector.snapshot()
        finally:
            collector.close()
        assert snap["gc"]["collections"] >= 1
        assert snap["gc"]["pause_seconds_sum"] >= 0.0
        assert snap["parent"]["rss_bytes"] > 0

    def test_worker_pids_callable_failure_is_tolerated(self):
        reg = MetricsRegistry()

        def exploding():
            raise RuntimeError("pool is broken")

        collector = ResourceCollector(reg, worker_pids=exploding)
        try:
            snap = collector.snapshot()
            assert snap["workers"] == []
        finally:
            collector.close()

    def test_disabled_registry_installs_no_gc_hook(self):
        import gc
        before = len(gc.callbacks)
        collector = ResourceCollector(MetricsRegistry(enabled=False))
        assert len(gc.callbacks) == before
        collector.close()

    def test_close_is_idempotent(self):
        import gc
        collector = ResourceCollector(MetricsRegistry())
        before = len(gc.callbacks)
        collector.close()
        collector.close()
        assert len(gc.callbacks) == before - 1


# ------------------------------------------------------------ wire surface

class TestProfileQueryValidation:
    def test_defaults(self):
        assert parse_profile_query("") == \
            {"seconds": None, "hz": None, "format": "collapsed"}

    def test_parses_values(self):
        opts = parse_profile_query("seconds=2.5&hz=97&format=json")
        assert opts == {"seconds": 2.5, "hz": 97.0, "format": "json"}

    @pytest.mark.parametrize("query", [
        "seconds=nan-ish", "seconds=-1", "seconds=31",
        "hz=0", "hz=200", "hz=wat", "format=xml",
    ])
    def test_bad_values_are_400(self, query):
        with pytest.raises(ApiError) as err:
            parse_profile_query(query)
        assert err.value.status == 400


class TestProfileEndpoint:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=60) as resp:
            return resp.read().decode(), resp.headers.get_content_type()

    def test_json_document(self, api):
        body, ctype = self._get(f"{api}/v1/profile?format=json")
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["enabled"] is True
        assert doc["default_hz"] == DEFAULT_PROFILE_HZ

    def test_collapsed_is_default_format(self, api):
        body, ctype = self._get(f"{api}/v1/profile?seconds=0.2&hz=150")
        assert ctype == "text/plain"
        for line in body.splitlines():
            frames, _, count = line.rpartition(" ")
            assert frames and int(count) >= 1

    def test_bad_query_is_400(self, api):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(f"{api}/v1/profile?seconds=99")
        assert err.value.code == 400

    def test_obs_off_server_answers_disabled(self):
        from repro.service.server import create_server

        engine = Engine(max_workers=1, obs=False)
        server = create_server(engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            body, _ = self._get(
                f"http://{host}:{port}/v1/profile?format=json")
            doc = json.loads(body)
            assert doc["enabled"] is False and doc["samples"] == 0
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_router_fans_out_and_tags_nodes(self, api):
        from repro.cluster import ClusterRouter, Node, create_router_server

        router = ClusterRouter([Node(api, name="n1")])
        server = create_router_server(router)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            body, _ = self._get(
                f"http://{host}:{port}/v1/profile?format=json")
            doc = json.loads(body)
            assert doc["role"] == "router"
            assert doc["enabled"] is True
            assert doc["nodes"]["n1"]["enabled"] is True
            assert all(row["node"] == "n1" for row in doc["stacks"])
        finally:
            server.shutdown()
            server.server_close()
            router.close()


# ------------------------------------------------------------ CLI surface

class TestProfileCLI:
    def test_profile_command_writes_collapsed(self, api, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "prof.collapsed"
        code = main(["profile", api, "--seconds", "0.3", "--hz", "150",
                     "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "profile of" in captured
        assert "hot functions" in captured
        assert out.read_text().strip()

    def test_profile_command_ring_read(self, api, capsys):
        from repro.cli import main

        assert main(["profile", api, "--seconds", "0"]) == 0
        assert "samples" in capsys.readouterr().out

    def test_profile_command_obs_off_degrades(self, capsys):
        from repro.cli import main
        from repro.service.server import create_server

        engine = Engine(max_workers=1, obs=False)
        server = create_server(engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            code = main(["profile", f"http://{host}:{port}",
                         "--seconds", "0"])
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
        assert code == 1
        assert "REPRO_OBS=off" in capsys.readouterr().err

    def test_profile_command_unreachable_server(self, capsys):
        from repro.cli import main

        code = main(["profile", "http://127.0.0.1:9",
                     "--seconds", "0"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_top_degrades_on_docs_without_metrics(self, capsys,
                                                  monkeypatch):
        from repro import cli

        class FakeClient:
            url = "http://fake:1"

            def __init__(self, *args, **kwargs):
                pass

            def metrics_json(self):
                return {"status": "ok"}  # older server: no series at all

        import repro.client
        monkeypatch.setattr(repro.client, "Client", FakeClient)
        code = cli.main(["top", "http://fake:1", "--iterations", "1"])
        assert code == 1
        assert "no metrics series" in capsys.readouterr().err

    def test_slo_degrades_on_docs_without_metrics(self, capsys,
                                                  monkeypatch):
        from repro import cli

        class FakeClient:
            url = "http://fake:1"

            def __init__(self, *args, **kwargs):
                pass

            def metrics_json(self):
                return {"role": "router", "nodes": {"n1": {"x": 1}}}

        import repro.client
        monkeypatch.setattr(repro.client, "Client", FakeClient)
        code = cli.main(["slo", "http://fake:1"])
        assert code == 1
        assert "no SLO series" in capsys.readouterr().err

    def test_render_helpers_tolerate_sparse_docs(self, capsys):
        from repro.cli import _render_metrics_doc, _slo_rows

        assert _slo_rows({}) == []
        assert _slo_rows({"metrics": [{"name": "repro_slo_target"}]}) == []
        _render_metrics_doc("node", {"metrics": [
            {"name": "x"},  # no type, no samples
            {"type": "histogram", "name": "h", "samples": [{}]},
            {"type": "counter", "name": "c", "samples": [{}]},
        ]})
        assert "-- node" in capsys.readouterr().out
