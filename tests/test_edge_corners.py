"""Additional corner-case coverage across modules."""

import numpy as np
import pytest

from repro.baselines.delaunay2d import delaunay_emst_2d
from repro.bvh import build_bvh
from repro.bvh.traversal import batched_nearest
from repro.core.emst import emst
from repro.kokkos.counters import CostCounters
from repro.kokkos.costmodel import simulate_phases
from repro.kokkos.devices import A100, EPYC_7763_SEQ
from repro.kokkos.views import View
from repro.mst.boruvka import boruvka_graph
from repro.mst.kruskal import kruskal


class TestCountersConsistency:
    def test_traversal_counter_relationships_reference(self, rng):
        pts = rng.random((500, 3))
        bvh = build_bvh(pts)
        counters = CostCounters()
        batched_nearest(bvh, pts[:100], counters=counters,
                        engine="reference")
        # Every popped node evaluates its own box + two child boxes at
        # most; leaf evaluations never exceed leaf visits.
        assert counters.box_distance_evals <= 3 * counters.nodes_visited
        assert counters.distance_evals == counters.leaf_visits
        # Lane steps equal the number of pops (one pop per active lane
        # per iteration).
        assert counters.lane_steps == counters.nodes_visited

    def test_traversal_counter_relationships_wavefront(self, rng):
        pts = rng.random((500, 3))
        bvh = build_bvh(pts)
        counters = CostCounters()
        batched_nearest(bvh, pts[:100], counters=counters,
                        engine="wavefront")
        # Re-tests reuse remembered bounds: one root seed per lane plus
        # at most two child evaluations per popped node.
        assert counters.box_distance_evals <= \
            2 * counters.nodes_visited + 100
        assert counters.distance_evals == counters.leaf_visits
        # Multi-pop drains: a lane advances one step per drain but may
        # pop several nodes in it.
        assert counters.lane_steps <= counters.nodes_visited

    def test_emst_counters_monotone_in_n(self):
        rng = np.random.default_rng(0)
        small = emst(rng.random((500, 2))).total_counters
        big = emst(rng.random((2000, 2))).total_counters
        assert big.distance_evals > small.distance_evals
        assert big.nodes_visited > small.nodes_visited
        assert big.sort_elements > small.sort_elements

    def test_phase_pricing_sums(self, rng):
        result = emst(rng.random((300, 3)))
        per_phase = simulate_phases(result.counters, A100)
        total = sum(per_phase.values())
        merged = result.total_counters
        # Merging counters changes saturation (max_batch) only, which is
        # identical here, so the sum of phase prices ~ price of the merge.
        from repro.kokkos.costmodel import simulate_seconds
        assert total == pytest.approx(
            simulate_seconds(merged, A100).seconds, rel=0.05)

    def test_sequential_pricing_phase_additive(self, rng):
        result = emst(rng.random((300, 3)))
        per_phase = simulate_phases(result.counters, EPYC_7763_SEQ)
        assert all(v > 0 for v in per_phase.values())
        assert per_phase["mst"] > per_phase["tree"]


class TestGraphMSTCorners:
    def test_boruvka_two_parallel_equal_edges(self):
        # Equal-weight parallel edges must not create a cycle.
        mu, mv, mw = boruvka_graph(2, np.array([0, 0]), np.array([1, 1]),
                                   np.array([1.0, 1.0]))
        assert mu.size == 1

    def test_boruvka_complete_k4_equal_weights(self):
        u, v = np.triu_indices(4, 1)
        mu, mv, mw = boruvka_graph(4, u, v, np.ones(u.size))
        assert mu.size == 3
        assert mw.sum() == 3.0

    def test_kruskal_empty_graph(self):
        mu, mv, mw = kruskal(3, np.empty(0, int), np.empty(0, int),
                             np.empty(0, float))
        assert mu.size == 0

    def test_kruskal_self_loop_is_ignored(self):
        mu, mv, mw = kruskal(2, np.array([0, 0]), np.array([0, 1]),
                             np.array([0.5, 1.0]))
        assert list(zip(mu, mv)) == [(0, 1)]


class TestDelaunayCorners:
    def test_duplicate_points(self, rng):
        pts = np.repeat(rng.random((10, 2)), 3, axis=0)
        u, v, w = delaunay_emst_2d(pts)
        from repro.baselines.naive import brute_force_emst
        _, _, w0 = brute_force_emst(pts)
        assert w.sum() == pytest.approx(float(w0.sum()))

    def test_single_point(self):
        u, v, w = delaunay_emst_2d(np.array([[0.0, 0.0]]))
        assert u.size == 0

    def test_coincident_cluster_plus_line(self):
        pts = np.concatenate([np.zeros((5, 2)),
                              np.stack([np.arange(1.0, 6.0),
                                        np.zeros(5)], axis=1)])
        u, v, w = delaunay_emst_2d(pts)
        assert w.sum() == pytest.approx(5.0)


class TestViewCorners:
    def test_repr(self):
        v = View("labels", 4, dtype=np.int64)
        text = repr(v)
        assert "labels" in text and "Host" in text

    def test_wrap_shares_memory(self):
        arr = np.arange(3.0)
        v = View.wrap("x", arr)
        v.data[0] = 99.0
        assert arr[0] == 99.0


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        assert repro.__version__ == "1.1.0"

    def test_emst_accepts_lists(self):
        result = emst(np.asarray([[0.0, 0.0], [1.0, 0.0]]))
        assert result.total_weight == 1.0

    def test_float32_input_upcast(self, rng):
        pts32 = rng.random((100, 2)).astype(np.float32)
        result = emst(pts32)
        assert result.weights.dtype == np.float64
        from repro.baselines.naive import brute_force_emst
        _, _, w = brute_force_emst(pts32.astype(np.float64))
        assert result.total_weight == pytest.approx(float(w.sum()))

    def test_fortran_order_input(self, rng):
        pts = np.asfortranarray(rng.random((120, 3)))
        result = emst(pts)
        assert result.edges.shape == (119, 2)

    def test_readonly_input(self, rng):
        pts = rng.random((80, 2))
        pts.setflags(write=False)
        result = emst(pts)
        assert result.edges.shape == (79, 2)
