"""Tests for Morton codes (repro.geometry.morton)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError, InvalidInputError
from repro.geometry.morton import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    bit_length_u64,
    common_prefix_length,
    morton_encode,
    morton_encode_scalar,
    morton_order,
    normalize_to_grid,
)


class TestNormalizeToGrid:
    def test_range(self, rng):
        grid = normalize_to_grid(rng.random((100, 3)), 10)
        assert grid.min() >= 0
        assert grid.max() <= 2**10 - 1

    def test_corners_hit_extremes(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        grid = normalize_to_grid(pts, 8)
        assert grid[0].tolist() == [0, 0]
        assert grid[1].tolist() == [255, 255]

    def test_degenerate_axis_maps_to_zero(self):
        pts = np.array([[0.0, 5.0], [1.0, 5.0]])
        grid = normalize_to_grid(pts, 8)
        assert np.all(grid[:, 1] == 0)

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            normalize_to_grid(np.array([[np.nan, 0.0]]), 8)

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            normalize_to_grid(np.empty((0, 2)), 8)

    def test_explicit_bounds(self):
        pts = np.array([[0.5, 0.5]])
        grid = normalize_to_grid(pts, 8, lo=np.zeros(2), hi=np.ones(2))
        assert np.all(np.abs(grid[0].astype(float) - 127.5) <= 0.5)


class TestEncode:
    @pytest.mark.parametrize("d,bits", [(2, MAX_BITS_2D), (3, MAX_BITS_3D)])
    def test_matches_scalar_reference(self, rng, d, bits):
        pts = rng.random((200, d))
        codes = morton_encode(pts)
        grid = normalize_to_grid(pts, bits)
        for i in range(0, 200, 7):
            ref = morton_encode_scalar(tuple(int(g) for g in grid[i]), bits)
            assert ref == int(codes[i])

    def test_interleaving_2d_manual(self):
        # grid (1, 0) -> bit 0 set; grid (0, 1) -> bit 1 set.
        assert morton_encode_scalar((1, 0), 4) == 0b01
        assert morton_encode_scalar((0, 1), 4) == 0b10
        assert morton_encode_scalar((1, 1), 4) == 0b11
        assert morton_encode_scalar((2, 0), 4) == 0b100

    def test_interleaving_3d_manual(self):
        assert morton_encode_scalar((1, 0, 0), 4) == 0b001
        assert morton_encode_scalar((0, 1, 0), 4) == 0b010
        assert morton_encode_scalar((0, 0, 1), 4) == 0b100
        assert morton_encode_scalar((1, 1, 1), 4) == 0b111

    def test_rejects_4d(self, rng):
        with pytest.raises(DimensionError):
            morton_encode(rng.random((10, 4)))

    def test_rejects_bits_out_of_range(self, rng):
        with pytest.raises(InvalidInputError):
            morton_encode(rng.random((10, 3)), bits=22)
        with pytest.raises(InvalidInputError):
            morton_encode(rng.random((10, 2)), bits=0)

    def test_locality(self, rng):
        # Points closer in space tend to be closer in code (weak check:
        # identical grid cells give identical codes).
        pts = np.array([[0.1, 0.1], [0.100001, 0.100001], [0.9, 0.9]])
        codes = morton_encode(pts, bits=8)
        assert codes[0] == codes[1]
        assert codes[0] != codes[2]

    @given(st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1),
           st.integers(0, 2**21 - 1))
    def test_scalar_3d_bijective_on_grid(self, x, y, z):
        code = morton_encode_scalar((x, y, z), 21)
        # Decode by extracting every third bit.
        dx = sum(((code >> (3 * b)) & 1) << b for b in range(21))
        dy = sum(((code >> (3 * b + 1)) & 1) << b for b in range(21))
        dz = sum(((code >> (3 * b + 2)) & 1) << b for b in range(21))
        assert (dx, dy, dz) == (x, y, z)


class TestOrder:
    def test_sorts_codes(self, rng):
        pts = rng.random((500, 3))
        order = morton_order(pts)
        codes = morton_encode(pts)[order]
        assert np.all(codes[:-1] <= codes[1:])

    def test_is_permutation(self, rng):
        pts = rng.random((100, 2))
        order = morton_order(pts)
        assert np.array_equal(np.sort(order), np.arange(100))

    def test_deterministic_with_duplicates(self, rng):
        pts = np.repeat(rng.random((5, 2)), 10, axis=0)
        assert np.array_equal(morton_order(pts), morton_order(pts))


class TestBitLength:
    def test_known_values(self):
        x = np.array([0, 1, 2, 3, 255, 256, 2**31, 2**32, 2**63, 2**64 - 1],
                     dtype=np.uint64)
        expected = [0, 1, 2, 2, 8, 9, 32, 33, 64, 64]
        assert bit_length_u64(x).tolist() == expected

    @given(st.integers(0, 2**64 - 1))
    def test_matches_python(self, value):
        got = int(bit_length_u64(np.array([value], dtype=np.uint64))[0])
        assert got == value.bit_length()


class TestCommonPrefix:
    def test_identical_codes_use_index_tiebreak(self):
        codes = np.array([5, 5, 5], dtype=np.uint64)
        d01 = common_prefix_length(codes, np.array([0]), np.array([1]))
        d02 = common_prefix_length(codes, np.array([0]), np.array([2]))
        assert d01[0] > 64  # beyond the code length
        assert d01[0] != d02[0]  # indices 1 and 2 differ

    def test_out_of_range_is_minus_one(self):
        codes = np.array([1, 2], dtype=np.uint64)
        assert common_prefix_length(codes, np.array([0]), np.array([-1]))[0] == -1
        assert common_prefix_length(codes, np.array([0]), np.array([2]))[0] == -1

    def test_prefix_value(self):
        codes = np.array([0b1000, 0b1001], dtype=np.uint64)
        d = common_prefix_length(codes, np.array([0]), np.array([1]))
        assert d[0] == 63  # differ only in the lowest bit

    def test_monotone_away_from_neighbor(self):
        codes = np.sort(np.array([3, 9, 17, 250, 251, 260], dtype=np.uint64))
        i = np.array([2, 2])
        j = np.array([3, 5])
        d = common_prefix_length(codes, i, j)
        assert d[0] >= d[1]
