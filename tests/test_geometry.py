"""Tests for AABBs and distance kernels (repro.geometry)."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import InvalidInputError
from repro.geometry.aabb import (
    aabb_of_points,
    aabb_union,
    box_contains_box,
    box_contains_points,
    box_diameter_sq,
    validate_boxes,
)
from repro.geometry.distance import (
    all_pairs_sq,
    box_box_max_sq,
    box_box_sq,
    gather_pair_sq,
    point_box_sq,
    points_sq,
)
from tests.conftest import finite_points


class TestAABB:
    def test_tight_bounds(self):
        lo, hi = aabb_of_points(np.array([[0.0, 1.0], [2.0, -1.0]]))
        assert lo.tolist() == [0.0, -1.0]
        assert hi.tolist() == [2.0, 1.0]

    def test_single_point_degenerate(self):
        lo, hi = aabb_of_points(np.array([[3.0, 4.0, 5.0]]))
        assert np.array_equal(lo, hi)

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            aabb_of_points(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            aabb_of_points(np.array([[np.nan, 0.0]]))

    def test_union(self):
        lo, hi = aabb_union(np.array([0.0, 0.0]), np.array([1.0, 1.0]),
                            np.array([-1.0, 0.5]), np.array([0.5, 2.0]))
        assert lo.tolist() == [-1.0, 0.0]
        assert hi.tolist() == [1.0, 2.0]

    def test_contains_points(self):
        mask = box_contains_points(np.zeros(2), np.ones(2),
                                   np.array([[0.5, 0.5], [1.5, 0.5]]))
        assert mask.tolist() == [True, False]

    def test_contains_boundary(self):
        mask = box_contains_points(np.zeros(2), np.ones(2),
                                   np.array([[1.0, 0.0]]))
        assert mask[0]

    def test_contains_box(self):
        assert box_contains_box(np.zeros(2), np.ones(2) * 2,
                                np.ones(2) * 0.5, np.ones(2))
        assert not box_contains_box(np.zeros(2), np.ones(2),
                                    np.ones(2) * 0.5, np.ones(2) * 1.5)

    def test_validate_rejects_inverted(self):
        with pytest.raises(InvalidInputError):
            validate_boxes(np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]]))

    def test_validate_rejects_shape_mismatch(self):
        with pytest.raises(InvalidInputError):
            validate_boxes(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_diameter(self):
        d2 = box_diameter_sq(np.zeros(2), np.array([3.0, 4.0]))
        assert d2 == 25.0


class TestPointDistances:
    def test_points_sq(self):
        assert points_sq(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_points_sq_batched(self, rng):
        a = rng.random((50, 3))
        b = rng.random((50, 3))
        d = points_sq(a, b)
        ref = np.sum((a - b) ** 2, axis=1)
        assert np.allclose(d, ref)

    def test_gather_pair(self, rng):
        pts = rng.random((20, 2))
        d = gather_pair_sq(pts, np.array([0, 1]), np.array([2, 3]))
        assert np.allclose(d, [points_sq(pts[0], pts[2]),
                               points_sq(pts[1], pts[3])])

    def test_point_box_inside_is_zero(self):
        d = point_box_sq(np.array([0.5, 0.5]), np.zeros(2), np.ones(2))
        assert d == 0.0

    def test_point_box_outside(self):
        d = point_box_sq(np.array([2.0, 0.5]), np.zeros(2), np.ones(2))
        assert d == 1.0

    def test_point_box_corner(self):
        d = point_box_sq(np.array([2.0, 2.0]), np.zeros(2), np.ones(2))
        assert d == 2.0

    @given(finite_points(min_n=2, max_n=30))
    def test_point_box_is_lower_bound(self, pts):
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        q = pts[0] + 10.0
        bound = point_box_sq(q, lo, hi)
        exact = points_sq(q[None, :], pts)
        assert np.all(bound <= exact + 1e-9)


class TestBoxBox:
    def test_overlapping_is_zero(self):
        d = box_box_sq(np.zeros(2), np.ones(2),
                       np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        assert d == 0.0

    def test_gap(self):
        d = box_box_sq(np.zeros(2), np.ones(2),
                       np.array([3.0, 0.0]), np.array([4.0, 1.0]))
        assert d == 4.0

    def test_max_distance_bound(self, rng):
        a = rng.random((10, 2))
        b = rng.random((10, 2)) + 2.0
        lo_a, hi_a = a.min(axis=0), a.max(axis=0)
        lo_b, hi_b = b.min(axis=0), b.max(axis=0)
        upper = box_box_max_sq(lo_a, hi_a, lo_b, hi_b)
        dmax = max(points_sq(pa, pb) for pa in a for pb in b)
        assert upper >= dmax - 1e-12


class TestAllPairs:
    def test_matches_pairwise(self, rng):
        pts = rng.random((30, 3))
        d2 = all_pairs_sq(pts)
        for i in (0, 7, 29):
            for j in (3, 15):
                assert d2[i, j] == pytest.approx(points_sq(pts[i], pts[j]),
                                                 abs=1e-9)

    def test_symmetric_zero_diagonal(self, rng):
        d2 = all_pairs_sq(rng.random((20, 2)))
        assert np.allclose(d2, d2.T)
        assert np.all(np.diag(d2) == 0.0)

    def test_nonnegative_despite_rounding(self, rng):
        pts = np.repeat(rng.random((2, 3)), 10, axis=0)
        assert np.all(all_pairs_sq(pts) >= 0.0)

    def test_refuses_large(self):
        with pytest.raises(InvalidInputError):
            all_pairs_sq(np.zeros((20_001, 2)))
