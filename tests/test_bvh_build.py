"""Tests for LBVH construction (repro.bvh.build / bvh / refit / validate)."""

import numpy as np
import pytest
from hypothesis import given

from repro.bvh import (
    build_bvh,
    check_bvh_invariants,
    karras_hierarchy,
    karras_hierarchy_scalar,
)
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.errors import InvalidInputError
from repro.geometry.morton import morton_encode
from repro.kokkos.counters import CostCounters
from tests.conftest import finite_points


def sorted_codes(pts):
    return np.sort(morton_encode(pts))


class TestKarras:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 64, 255, 1000])
    def test_matches_scalar_reference(self, rng, n):
        codes = sorted_codes(rng.random((n, 3)))
        l1, r1, p1 = karras_hierarchy(codes)
        l2, r2, p2 = karras_hierarchy_scalar(codes)
        assert np.array_equal(l1, l2)
        assert np.array_equal(r1, r2)
        assert np.array_equal(p1, p2)

    def test_duplicate_codes(self, rng):
        codes = np.sort(np.repeat(
            morton_encode(rng.random((8, 2))), 16))
        l1, r1, p1 = karras_hierarchy(codes)
        l2, r2, p2 = karras_hierarchy_scalar(codes)
        assert np.array_equal(l1, l2)
        assert np.array_equal(r1, r2)

    def test_all_identical_codes(self):
        codes = np.zeros(33, dtype=np.uint64)
        left, right, parent = karras_hierarchy(codes)
        # Valid binary tree despite 100% duplicates.
        children = np.concatenate([left, right])
        assert np.unique(children).size == children.size
        assert parent[0] == -1

    def test_two_elements(self):
        codes = np.array([1, 2], dtype=np.uint64)
        left, right, parent = karras_hierarchy(codes)
        assert left[0] == 1  # leaf 0 (node id n-1+0 = 1)
        assert right[0] == 2  # leaf 1

    def test_rejects_unsorted(self):
        with pytest.raises(InvalidInputError):
            karras_hierarchy(np.array([3, 1, 2], dtype=np.uint64))

    def test_rejects_single(self):
        with pytest.raises(InvalidInputError):
            karras_hierarchy(np.array([1], dtype=np.uint64))

    def test_counters_recorded(self, rng):
        codes = sorted_codes(rng.random((100, 2)))
        counters = CostCounters()
        karras_hierarchy(codes, counters)
        assert counters.scalar_ops > 0
        assert counters.kernel_launches == 1

    @given(finite_points(min_n=2, max_n=60))
    def test_property_valid_tree(self, pts):
        bvh = build_bvh(pts)
        check_bvh_invariants(bvh)


class TestSchedule:
    def test_bottom_up_order(self, rng):
        bvh = build_bvh(rng.random((100, 3)))
        seen = set()
        leaf_base = bvh.leaf_base
        for ids in bvh.schedule:
            for node in ids:
                for child in (bvh.left[node], bvh.right[node]):
                    if child < leaf_base:
                        assert child in seen, "child after parent"
                seen.add(node)
        assert len(seen) == bvh.n - 1

    def test_schedule_covers_all_internal(self, rng):
        bvh = build_bvh(rng.random((257, 2)))
        total = np.concatenate(bvh.schedule)
        assert np.array_equal(np.sort(total), np.arange(bvh.n - 1))


class TestRefit:
    def test_root_covers_everything(self, rng):
        pts = rng.random((300, 3))
        bvh = build_bvh(pts)
        assert np.allclose(bvh.lo[0], pts.min(axis=0))
        assert np.allclose(bvh.hi[0], pts.max(axis=0))

    def test_parent_contains_children(self, rng):
        bvh = build_bvh(rng.random((200, 2)))
        for node in range(bvh.n - 1):
            for child in (bvh.left[node], bvh.right[node]):
                assert np.all(bvh.lo[node] <= bvh.lo[child])
                assert np.all(bvh.hi[node] >= bvh.hi[child])

    def test_refit_after_moving_points(self, rng):
        pts = rng.random((50, 2))
        bvh = build_bvh(pts)
        moved = bvh.points + 1.0
        lo, hi = refit_bounds(moved, bvh.left, bvh.right, bvh.schedule)
        assert np.allclose(lo[0], moved.min(axis=0))

    def test_schedule_requires_two(self):
        with pytest.raises(InvalidInputError):
            bottom_up_schedule(np.empty(0, dtype=int),
                               np.empty(0, dtype=int), 1)


class TestBuildBVH:
    def test_single_point(self):
        bvh = build_bvh(np.array([[1.0, 2.0]]))
        assert bvh.n == 1
        assert bvh.n_nodes == 1
        check_bvh_invariants(bvh)

    def test_two_points(self):
        bvh = build_bvh(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert bvh.n_nodes == 3
        check_bvh_invariants(bvh)

    def test_order_is_permutation(self, rng):
        pts = rng.random((100, 3))
        bvh = build_bvh(pts)
        assert np.array_equal(np.sort(bvh.order), np.arange(100))
        assert np.array_equal(bvh.points, pts[bvh.order])

    def test_codes_sorted(self, rng):
        bvh = build_bvh(rng.random((128, 2)))
        assert np.all(bvh.codes[:-1] <= bvh.codes[1:])

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            build_bvh(np.array([[np.nan, 1.0]]))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            build_bvh(np.empty((0, 3)))

    def test_low_bits_still_valid(self, rng):
        # GeoLife-style Z-curve under-resolution: tree stays structurally
        # valid even when codes collide massively.
        bvh = build_bvh(rng.random((200, 3)), bits=2)
        check_bvh_invariants(bvh)

    def test_duplicate_points(self, rng):
        pts = np.repeat(rng.random((4, 3)), 25, axis=0)
        bvh = build_bvh(pts)
        check_bvh_invariants(bvh)

    def test_collinear_points(self):
        pts = np.stack([np.linspace(0, 1, 64), np.zeros(64)], axis=1)
        bvh = build_bvh(pts)
        check_bvh_invariants(bvh)

    def test_counters(self, rng):
        counters = CostCounters()
        build_bvh(rng.random((100, 3)), counters=counters)
        assert counters.sort_elements == 100
        assert counters.scalar_ops > 0

    def test_height_reasonable(self, rng):
        bvh = build_bvh(rng.random((1024, 3)))
        assert bvh.height <= 64
        assert bvh.height >= 10  # at least log2(1024)
