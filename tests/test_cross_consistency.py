"""Cross-implementation consistency properties.

The strongest correctness evidence in the repository: six EMST
implementations (single-tree BVH, single-tree kd, dual-tree, WSPD,
Bentley–Friedman, Delaunay-2D) built on three different spatial
substrates must agree with each other and with a dense oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import (
    delaunay_emst_2d,
    dual_tree_emst,
    memogfk_emst,
)
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.data import generate
from repro.hdbscan import hdbscan
from repro.mst.validate import edges_canonical
from tests.conftest import finite_points


@given(finite_points(min_n=3, max_n=50, dims=(2,)))
@settings(max_examples=15)
def test_delaunay_vs_single_tree_2d(pts):
    r = emst(pts)
    u, v, w = delaunay_emst_2d(pts)
    assert r.total_weight == pytest.approx(float(w.sum()))


@given(finite_points(min_n=2, max_n=60))
@settings(max_examples=15)
def test_kdtree_vs_bvh_backends(pts):
    r_bvh = emst(pts)
    r_kd = emst(pts, config=SingleTreeConfig(tree_type="kdtree"))
    assert edges_canonical(r_bvh.edges[:, 0], r_bvh.edges[:, 1]) == \
        edges_canonical(r_kd.edges[:, 0], r_kd.edges[:, 1])


@given(finite_points(min_n=4, max_n=40))
@settings(max_examples=10)
def test_mrd_wspd_vs_single_tree(pts):
    k = min(3, len(pts))
    r_tree = mutual_reachability_emst(pts, k)
    r_wspd = memogfk_emst(pts, k_pts=k)
    assert r_tree.total_weight == pytest.approx(r_wspd.total_weight)


@pytest.mark.parametrize("name", ["Hacc37M", "GeoLife24M3D", "Ngsim",
                                  "VisualVar10M2D", "PortoTaxi"])
def test_realistic_datasets_agree(name):
    pts = generate(name, 400, seed=6)
    w0 = emst(pts).total_weight
    assert float(dual_tree_emst(pts)[2].sum()) == pytest.approx(w0)
    assert memogfk_emst(pts).total_weight == pytest.approx(w0)
    assert emst(pts, config=SingleTreeConfig(
        tree_type="kdtree")).total_weight == pytest.approx(w0)


def test_hdbscan_partition_permutation_invariant(rng):
    blobs = np.concatenate([rng.normal((0, 0), 0.05, size=(80, 2)),
                            rng.normal((4, 4), 0.05, size=(80, 2))])
    perm = rng.permutation(160)
    r1 = hdbscan(blobs, min_cluster_size=10, k_pts=4)
    r2 = hdbscan(blobs[perm], min_cluster_size=10, k_pts=4)
    # Same partition up to relabelling: compare co-membership matrices.
    inv = np.empty(160, dtype=np.int64)
    inv[perm] = np.arange(160)
    l1 = r1.labels
    l2 = r2.labels[inv]
    co1 = (l1[:, None] == l1[None, :]) & (l1[:, None] >= 0)
    co2 = (l2[:, None] == l2[None, :]) & (l2[:, None] >= 0)
    assert (co1 == co2).mean() > 0.99


def test_emst_total_weight_scale_equivariance(rng):
    pts = rng.random((150, 3))
    w1 = emst(pts).total_weight
    w2 = emst(pts * 7.5).total_weight
    assert w2 == pytest.approx(7.5 * w1)


def test_emst_translation_invariance(rng):
    pts = rng.random((150, 2))
    w1 = emst(pts).total_weight
    w2 = emst(pts + 123.456).total_weight
    assert w2 == pytest.approx(w1, rel=1e-9)


def test_emst_rotation_invariance(rng):
    pts = rng.random((120, 2))
    theta = 0.7
    rot = np.array([[np.cos(theta), -np.sin(theta)],
                    [np.sin(theta), np.cos(theta)]])
    w1 = emst(pts).total_weight
    w2 = emst(pts @ rot.T).total_weight
    assert w2 == pytest.approx(w1, rel=1e-9)
