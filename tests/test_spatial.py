"""Tests for the spatial substrate (repro.spatial)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidInputError
from repro.geometry.distance import points_sq
from repro.spatial import (
    bichromatic_closest_pair,
    build_fair_split_tree,
    build_kdtree,
    well_separated_pairs,
)
from repro.spatial.wspd import wspd_covers_all_pairs
from tests.conftest import finite_points


def check_flat_tree(tree, n):
    """Structural invariants shared by KDTree and FairSplitTree."""
    assert tree.node_size(0) == n
    for node in range(tree.n_nodes):
        idx = tree.node_indices(node)
        pts = tree.points[idx]
        assert np.all(pts >= tree.lo[node] - 1e-12)
        assert np.all(pts <= tree.hi[node] + 1e-12)
        if not tree.is_leaf(node):
            l, r = int(tree.left[node]), int(tree.right[node])
            assert tree.node_size(l) + tree.node_size(r) == tree.node_size(node)
            assert tree.node_size(l) >= 1
            assert tree.node_size(r) >= 1
            combined = np.sort(np.concatenate([tree.node_indices(l),
                                               tree.node_indices(r)]))
            assert np.array_equal(combined, np.sort(idx))


class TestKDTree:
    def test_structure(self, rng):
        tree = build_kdtree(rng.random((257, 3)), leaf_size=8)
        check_flat_tree(tree, 257)

    def test_leaf_sizes(self, rng):
        tree = build_kdtree(rng.random((100, 2)), leaf_size=4)
        for node in range(tree.n_nodes):
            if tree.is_leaf(node):
                assert tree.node_size(node) <= 4

    def test_perm_is_permutation(self, rng):
        tree = build_kdtree(rng.random((64, 2)))
        assert np.array_equal(np.sort(tree.perm), np.arange(64))

    def test_single_point(self):
        tree = build_kdtree(np.array([[1.0, 2.0]]))
        assert tree.n_nodes == 1
        assert tree.is_leaf(0)

    def test_duplicates(self, rng):
        pts = np.repeat(rng.random((3, 2)), 20, axis=0)
        tree = build_kdtree(pts, leaf_size=4)
        check_flat_tree(tree, 60)

    def test_rejects_bad_leaf_size(self, rng):
        with pytest.raises(InvalidInputError):
            build_kdtree(rng.random((10, 2)), leaf_size=0)

    def test_rejects_nan(self):
        with pytest.raises(InvalidInputError):
            build_kdtree(np.array([[np.nan, 0.0]]))


class TestFairSplitTree:
    def test_structure(self, rng):
        tree = build_fair_split_tree(rng.random((200, 3)))
        check_flat_tree(tree, 200)

    def test_leaves_are_single_points(self, rng):
        tree = build_fair_split_tree(rng.random((50, 2)))
        for node in range(tree.n_nodes):
            if tree.is_leaf(node):
                # only duplicates may share a leaf
                idx = tree.node_indices(node)
                assert idx.size == 1 or np.all(
                    tree.points[idx] == tree.points[idx[0]])

    def test_split_on_longest_side(self, rng):
        pts = rng.random((100, 2)) * np.array([10.0, 1.0])
        tree = build_fair_split_tree(pts)
        # Root must split the long (x) axis: children's x-extents are
        # strictly smaller than the root's.
        root_extent = tree.hi[0][0] - tree.lo[0][0]
        for child in (int(tree.left[0]), int(tree.right[0])):
            assert tree.hi[child][0] - tree.lo[child][0] < root_extent

    def test_duplicates_become_multipoint_leaf(self):
        pts = np.zeros((10, 2))
        tree = build_fair_split_tree(pts)
        assert tree.n_nodes == 1
        assert tree.node_size(0) == 10

    def test_radius_and_center(self, rng):
        tree = build_fair_split_tree(rng.random((30, 2)))
        r = tree.radius(0)
        c = tree.center(0)
        pts = tree.points
        assert np.all(np.sqrt(points_sq(pts, c)) <= r + 1e-12)


class TestWSPD:
    @pytest.mark.parametrize("s", [2.0, 3.0])
    def test_covering_property(self, rng, s):
        pts = rng.random((40, 2))
        tree = build_fair_split_tree(pts)
        pairs = well_separated_pairs(tree, s)
        assert wspd_covers_all_pairs(tree, pairs)

    def test_covering_3d(self, rng):
        pts = rng.random((30, 3))
        tree = build_fair_split_tree(pts)
        assert wspd_covers_all_pairs(tree, well_separated_pairs(tree))

    def test_separation_property(self, rng):
        pts = rng.random((50, 2))
        tree = build_fair_split_tree(pts)
        s = 2.0
        for pair in well_separated_pairs(tree, s):
            ra, rb = tree.radius(pair.a), tree.radius(pair.b)
            if ra == 0.0 and rb == 0.0:
                continue  # duplicate-point degenerate pairs
            d = np.sqrt(points_sq(tree.center(pair.a), tree.center(pair.b)))
            assert d - ra - rb >= s * max(ra, rb) - 1e-9

    def test_gap_is_lower_bound(self, rng):
        pts = rng.random((40, 2))
        tree = build_fair_split_tree(pts)
        for pair in well_separated_pairs(tree)[:50]:
            ia = tree.node_indices(pair.a)
            ib = tree.node_indices(pair.b)
            dmin = min(np.sqrt(points_sq(tree.points[i], tree.points[j]))
                       for i in ia for j in ib)
            assert pair.gap <= dmin + 1e-9

    def test_pair_count_linear(self, rng):
        # O(n) pairs for bounded separation (Callahan-Kosaraju).
        counts = []
        for n in (100, 200, 400):
            tree = build_fair_split_tree(rng.random((n, 2)))
            counts.append(len(well_separated_pairs(tree, 2.0)))
        assert counts[2] < 3.0 * counts[1]
        assert counts[1] < 3.0 * counts[0]

    def test_duplicates_covered(self, rng):
        pts = np.repeat(rng.random((6, 2)), 5, axis=0)
        tree = build_fair_split_tree(pts)
        assert wspd_covers_all_pairs(tree, well_separated_pairs(tree))

    def test_rejects_bad_separation(self, rng):
        tree = build_fair_split_tree(rng.random((10, 2)))
        with pytest.raises(InvalidInputError):
            well_separated_pairs(tree, 0.0)

    @given(finite_points(min_n=2, max_n=30))
    @settings(max_examples=15)
    def test_property_covering(self, pts):
        tree = build_fair_split_tree(pts)
        assert wspd_covers_all_pairs(tree, well_separated_pairs(tree))


class TestBCP:
    def _brute(self, tree, a, b):
        ia = tree.node_indices(a)
        ib = tree.node_indices(b)
        best = (np.inf, None, None)
        for i in ia:
            for j in ib:
                d = float(points_sq(tree.points[i], tree.points[j]))
                key = (d, min(i, j), max(i, j))
                if key < (best[0], min(best[1], best[2]) if best[1] is not None else np.inf,
                          max(best[1], best[2]) if best[1] is not None else np.inf):
                    best = (d, int(i), int(j))
        return best

    def test_matches_brute_force(self, rng):
        pts = rng.random((60, 2))
        tree = build_fair_split_tree(pts)
        root_l, root_r = int(tree.left[0]), int(tree.right[0])
        u, v, d = bichromatic_closest_pair(tree, root_l, root_r)
        bd, bi, bj = self._brute(tree, root_l, root_r)
        assert d == pytest.approx(bd)
        assert {u, v} == {bi, bj} or d == pytest.approx(bd)

    def test_on_kdtree(self, rng):
        pts = rng.random((80, 3))
        tree = build_kdtree(pts, leaf_size=8)
        root_l, root_r = int(tree.left[0]), int(tree.right[0])
        u, v, d = bichromatic_closest_pair(tree, root_l, root_r)
        bd, _, _ = self._brute(tree, root_l, root_r)
        assert d == pytest.approx(bd)

    def test_component_constraint(self, rng):
        pts = rng.random((40, 2))
        tree = build_fair_split_tree(pts)
        comp = np.zeros(40, dtype=np.int64)  # everything same component
        root_l, root_r = int(tree.left[0]), int(tree.right[0])
        u, v, d = bichromatic_closest_pair(tree, root_l, root_r,
                                           component_of=comp)
        assert u == -1 and v == -1 and np.isinf(d)

    def test_mrd_metric(self, rng):
        pts = rng.random((30, 2))
        tree = build_fair_split_tree(pts)
        core_sq = rng.random(30)
        root_l, root_r = int(tree.left[0]), int(tree.right[0])
        u, v, d = bichromatic_closest_pair(tree, root_l, root_r,
                                           core_sq=core_sq)
        ia = tree.node_indices(root_l)
        ib = tree.node_indices(root_r)
        expect = min(max(float(points_sq(tree.points[i], tree.points[j])),
                         core_sq[i], core_sq[j])
                     for i in ia for j in ib)
        assert d == pytest.approx(expect)
