"""Tests for batched BVH traversals (repro.bvh.traversal)."""

import numpy as np
import pytest
from hypothesis import given
from scipy.spatial import cKDTree

from repro.bvh import batched_knn, batched_nearest, build_bvh, radius_search
from repro.bvh.traversal import INVALID_LABEL, pair_keys, radius_count
from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters
from tests.conftest import finite_points


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(5)
    pts = rng.random((400, 3))
    bvh = build_bvh(pts)
    queries = rng.random((150, 3))
    return bvh, queries


class TestPairKeys:
    def test_symmetric(self):
        a = np.array([3, 10])
        b = np.array([10, 3])
        assert pair_keys(a, b)[0] == pair_keys(b, a)[0]

    def test_orders_lexicographically(self):
        k1 = pair_keys(np.array([1]), np.array([5]))[0]
        k2 = pair_keys(np.array([1]), np.array([6]))[0]
        k3 = pair_keys(np.array([2]), np.array([3]))[0]
        assert k1 < k2 < k3


class TestNearest:
    def test_matches_scipy(self, world):
        bvh, queries = world
        res = batched_nearest(bvh, queries)
        d_ref, i_ref = cKDTree(bvh.points).query(queries)
        assert np.allclose(np.sqrt(res.distance_sq), d_ref)
        assert np.array_equal(res.position, i_ref)

    def test_self_query_returns_self_without_exclusion(self, world):
        bvh, _ = world
        res = batched_nearest(bvh, bvh.points)
        assert np.allclose(res.distance_sq, 0.0)

    def test_exclude_position(self, world):
        bvh, _ = world
        res = batched_nearest(bvh, bvh.points,
                              exclude_position=np.arange(bvh.n))
        d_ref, i_ref = cKDTree(bvh.points).query(bvh.points, k=2)
        assert np.allclose(np.sqrt(res.distance_sq), d_ref[:, 1])
        assert np.array_equal(res.position, i_ref[:, 1])

    def test_initial_radius_can_exclude_everything(self, world):
        bvh, queries = world
        res = batched_nearest(bvh, queries,
                              init_radius_sq=np.full(len(queries), 1e-20))
        assert np.all(~res.found | (res.distance_sq <= 1e-20))

    def test_initial_radius_inclusive_boundary(self):
        # A neighbor at exactly the initial radius must be found (the
        # <=-pruning that Borůvka's upper bounds rely on).
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        bvh = build_bvh(pts)
        q = np.array([[2.0, 0.0]])
        res = batched_nearest(bvh, q, init_radius_sq=np.array([1.0]))
        assert res.found[0]
        assert res.distance_sq[0] == 1.0

    def test_label_constraint(self, world):
        bvh, _ = world
        labels = np.arange(bvh.n) % 2
        node_labels = np.full(bvh.n_nodes, INVALID_LABEL, dtype=np.int64)
        node_labels[bvh.leaf_base:] = labels
        res = batched_nearest(bvh, bvh.points, query_labels=labels,
                              node_labels=node_labels)
        assert np.all(res.found)
        assert np.all(labels[res.position] != labels)

    def test_label_constraint_brute_force(self, rng):
        pts = rng.random((60, 2))
        bvh = build_bvh(pts)
        labels = rng.integers(0, 3, size=60)
        node_labels = np.full(bvh.n_nodes, INVALID_LABEL, dtype=np.int64)
        node_labels[bvh.leaf_base:] = labels
        res = batched_nearest(bvh, bvh.points, query_labels=labels,
                              node_labels=node_labels)
        d2 = np.sum((bvh.points[:, None] - bvh.points[None]) ** 2, axis=2)
        d2[labels[:, None] == labels[None, :]] = np.inf
        expect = d2.min(axis=1)
        assert np.allclose(res.distance_sq, expect)

    def test_single_component_finds_nothing(self, rng):
        pts = rng.random((30, 2))
        bvh = build_bvh(pts)
        labels = np.zeros(30, dtype=np.int64)
        node_labels = np.zeros(bvh.n_nodes, dtype=np.int64)
        res = batched_nearest(bvh, bvh.points, query_labels=labels,
                              node_labels=node_labels)
        assert not np.any(res.found)

    def test_tie_break_picks_smallest_pair(self):
        # Query equidistant from two points: the tie-break key must pick
        # the smaller (min, max) pair.
        pts = np.array([[1.0, 0.0], [-1.0, 0.0], [5.0, 5.0]])
        bvh = build_bvh(pts)
        ids = np.array([10])
        point_ids = np.empty(3, dtype=np.int64)
        point_ids[:] = [7, 3, 9][0:3]
        # sorted positions map: find which sorted pos has which id
        point_ids_sorted = point_ids[bvh.order]
        res = batched_nearest(bvh, np.array([[0.0, 0.0]]),
                              query_ids=ids, point_ids=point_ids_sorted)
        chosen_id = point_ids_sorted[res.position[0]]
        assert chosen_id == 3  # (3, 10) < (7, 10)

    def test_single_point_tree(self):
        bvh = build_bvh(np.array([[0.5, 0.5]]))
        res = batched_nearest(bvh, np.array([[0.0, 0.0]]))
        assert res.found[0]
        assert res.position[0] == 0

    def test_counters_populated(self, world):
        bvh, queries = world
        counters = CostCounters()
        batched_nearest(bvh, queries, counters=counters)
        assert counters.distance_evals > 0
        assert counters.nodes_visited > 0
        assert counters.warp_steps > 0
        assert counters.lane_steps >= counters.warp_steps

    def test_rejects_dim_mismatch(self, world):
        bvh, _ = world
        with pytest.raises(InvalidInputError):
            batched_nearest(bvh, np.zeros((5, 2)))

    @given(finite_points(min_n=2, max_n=50))
    def test_property_matches_brute_force(self, pts):
        bvh = build_bvh(pts)
        q = pts[: min(10, len(pts))] + 0.25
        res = batched_nearest(bvh, q)
        d2 = np.sum((q[:, None] - bvh.points[None]) ** 2, axis=2)
        assert np.allclose(res.distance_sq, d2.min(axis=1), rtol=1e-12)


class TestMutualReachability:
    def test_mrd_nearest_matches_brute_force(self, rng):
        pts = rng.random((80, 2))
        bvh = build_bvh(pts)
        core_sq = rng.random(80) * 0.05
        labels = rng.integers(0, 4, size=80)
        node_labels = np.full(bvh.n_nodes, INVALID_LABEL, dtype=np.int64)
        node_labels[bvh.leaf_base:] = labels
        res = batched_nearest(bvh, bvh.points, query_labels=labels,
                              node_labels=node_labels,
                              query_core_sq=core_sq, point_core_sq=core_sq)
        d2 = np.sum((bvh.points[:, None] - bvh.points[None]) ** 2, axis=2)
        m = np.maximum(d2, core_sq[:, None])
        m = np.maximum(m, core_sq[None, :])
        m[labels[:, None] == labels[None, :]] = np.inf
        assert np.allclose(res.distance_sq, m.min(axis=1))

    def test_core_requires_both_sides(self, world):
        bvh, queries = world
        with pytest.raises(InvalidInputError):
            batched_nearest(bvh, queries,
                            query_core_sq=np.zeros(len(queries)))


class TestKnn:
    def test_matches_scipy(self, world):
        bvh, queries = world
        for k in (1, 3, 8):
            res = batched_knn(bvh, queries, k)
            d_ref, i_ref = cKDTree(bvh.points).query(queries, k=k)
            if k == 1:
                d_ref = d_ref[:, None]
            assert np.allclose(np.sqrt(res.distance_sq), d_ref)

    def test_self_included(self, world):
        bvh, _ = world
        res = batched_knn(bvh, bvh.points, 1)
        assert np.allclose(res.distance_sq, 0.0)
        assert np.array_equal(res.positions[:, 0], np.arange(bvh.n))

    def test_kth_column_is_core_distance(self, world):
        bvh, _ = world
        res = batched_knn(bvh, bvh.points, 4)
        d_ref, _ = cKDTree(bvh.points).query(bvh.points, k=4)
        assert np.allclose(np.sqrt(res.kth_distance_sq), d_ref[:, 3])

    def test_k_exceeding_n_pads_with_inf(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        bvh = build_bvh(pts)
        res = batched_knn(bvh, bvh.points, 5)
        assert np.all(np.isinf(res.distance_sq[:, 2:]))
        assert np.all(res.positions[:, 2:] == -1)

    def test_sorted_rows(self, world):
        bvh, queries = world
        res = batched_knn(bvh, queries, 6)
        assert np.all(np.diff(res.distance_sq, axis=1) >= 0)

    def test_exclude_position(self, world):
        bvh, _ = world
        res = batched_knn(bvh, bvh.points, 2,
                          exclude_position=np.arange(bvh.n))
        assert np.all(res.distance_sq[:, 0] > 0)

    def test_rejects_bad_k(self, world):
        bvh, queries = world
        with pytest.raises(InvalidInputError):
            batched_knn(bvh, queries, 0)

    def test_single_point_tree(self):
        bvh = build_bvh(np.array([[0.0, 0.0]]))
        res = batched_knn(bvh, np.array([[1.0, 0.0]]), 2)
        assert res.distance_sq[0, 0] == 1.0
        assert np.isinf(res.distance_sq[0, 1])


class TestRadius:
    def test_matches_scipy(self, world):
        bvh, queries = world
        offsets, pos, _ = radius_search(bvh, queries, 0.25)
        ref = cKDTree(bvh.points).query_ball_point(queries, 0.25)
        counts = np.diff(offsets)
        assert np.array_equal(counts, [len(x) for x in ref])
        for i in range(len(queries)):
            assert set(pos[offsets[i]:offsets[i + 1]]) == set(ref[i])

    def test_radius_zero_finds_exact(self, world):
        bvh, _ = world
        counts = radius_count(bvh, bvh.points, 0.0)
        assert np.all(counts >= 1)  # at least the point itself

    def test_negative_radius_rejected(self, world):
        bvh, queries = world
        with pytest.raises(InvalidInputError):
            radius_search(bvh, queries, -1.0)

    def test_empty_result(self, world):
        bvh, _ = world
        far = np.full((3, 3), 100.0)
        counts = radius_count(bvh, far, 0.5)
        assert np.all(counts == 0)

    def test_single_point_tree(self):
        bvh = build_bvh(np.array([[0.0, 0.0]]))
        offsets, pos, _ = radius_search(bvh, np.zeros((2, 2)), 1.0)
        assert np.array_equal(np.diff(offsets), [1, 1])
