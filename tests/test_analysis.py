"""Tests for MST statistics (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    cut_fragments,
    degree_histogram,
    mst_statistics,
)
from repro.core.emst import emst
from repro.data import hacc, uniform
from repro.errors import InvalidInputError


@pytest.fixture
def chain():
    # Path 0-1-2-3 with weights 1, 5, 2.
    return 4, np.array([0, 1, 2]), np.array([1, 2, 3]), \
        np.array([1.0, 5.0, 2.0])


class TestStatistics:
    def test_chain_summary(self, chain):
        stats = mst_statistics(*chain)
        assert stats.n_vertices == 4
        assert stats.n_edges == 3
        assert stats.total_weight == 8.0
        assert stats.max_edge == 5.0
        assert stats.min_edge == 1.0
        assert stats.n_leaves == 2
        assert stats.n_branch_vertices == 0
        assert stats.max_degree == 2

    def test_star_degrees(self):
        stats = mst_statistics(4, np.array([0, 0, 0]),
                               np.array([1, 2, 3]), np.ones(3))
        assert stats.max_degree == 3
        assert stats.n_leaves == 3
        assert stats.n_branch_vertices == 1

    def test_percentiles_ordered(self, rng):
        result = emst(rng.random((200, 2)))
        stats = mst_statistics(200, result.edges[:, 0], result.edges[:, 1],
                               result.weights)
        ps = stats.edge_percentiles
        assert ps[1] <= ps[50] <= ps[99]

    def test_clustered_wider_dynamic_range(self):
        clustered = emst(hacc(1500, seed=0))
        flat = emst(uniform(1500, 3, seed=0))
        s_c = mst_statistics(1500, clustered.edges[:, 0],
                             clustered.edges[:, 1], clustered.weights)
        s_u = mst_statistics(1500, flat.edges[:, 0], flat.edges[:, 1],
                             flat.weights)
        assert s_c.dynamic_range > 3 * s_u.dynamic_range

    def test_rejects_bad_edges(self):
        with pytest.raises(InvalidInputError):
            mst_statistics(2, np.array([0]), np.array([5]), np.array([1.0]))


class TestDegreeHistogram:
    def test_chain(self, chain):
        n, u, v, w = chain
        hist = degree_histogram(n, u, v)
        assert hist[1] == 2  # two leaves
        assert hist[2] == 2  # two interior

    def test_tree_leaf_count_matches(self, rng):
        result = emst(rng.random((100, 3)))
        hist = degree_histogram(100, result.edges[:, 0], result.edges[:, 1])
        assert hist.sum() == 100
        assert hist[0] == 0  # a tree has no isolated vertices


class TestCutFragments:
    def test_cut_all(self, chain):
        labels, k = cut_fragments(*chain, cutoff=0.5)
        assert k == 4

    def test_cut_none(self, chain):
        labels, k = cut_fragments(*chain, cutoff=10.0)
        assert k == 1
        assert np.all(labels == 0)

    def test_cut_middle(self, chain):
        labels, k = cut_fragments(*chain, cutoff=2.5)
        assert k == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_labels_first_occurrence_order(self, chain):
        labels, _ = cut_fragments(*chain, cutoff=2.5)
        assert labels[0] == 0  # first vertex gets fragment 0

    def test_fof_recovers_blobs(self, rng):
        blobs = np.concatenate([
            rng.normal((0, 0), 0.02, size=(40, 2)),
            rng.normal((5, 5), 0.02, size=(40, 2)),
        ])
        result = emst(blobs)
        labels, k = cut_fragments(80, result.edges[:, 0],
                                  result.edges[:, 1], result.weights,
                                  cutoff=1.0)
        assert k == 2
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:])) == 1
