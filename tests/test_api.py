"""Tests for the shared ``/v1`` wire-API layer (repro.api).

Covers what the old thread-per-connection server could not: the uniform
error envelope on every non-2xx (node and router), typed/retryable-keyed
client exceptions, admission control (bounded queue → 429 + Retry-After
+ gauges, accepted work still byte-identical), and long-poll concurrency
beyond the worker pool size.
"""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import aioclient
from repro.api.contract import parse_error_envelope
from repro.client import Client
from repro.cluster import (
    ClusterRouter,
    Node,
    NodeClient,
    NodeHTTPError,
    NodeOverloadedError,
    create_router_server,
)
from repro.service import Engine, JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec
from repro.service.server import create_server


def get(url, timeout=120):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read()), dict(resp.headers)


def post(url, obj, timeout=120):
    req = urllib.request.Request(
        url, data=json.dumps(obj).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read()), dict(resp.headers)


def error_of(excinfo):
    """The envelope's ``error`` object from a raised HTTPError."""
    return json.loads(excinfo.value.read())["error"]


@pytest.fixture
def bounded_api():
    """A node with a tiny admission bound: 1 worker, 2 unfinished jobs."""
    engine = Engine(max_workers=1, batch_window=0.001, max_batch=1)
    server = create_server(engine, max_queue_depth=2)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", engine
    finally:
        server.shutdown()
        server.server_close()
        engine.close()


@pytest.fixture
def routed_api():
    """A router over one node; yields (router URL, node URL)."""
    engine = Engine(max_workers=1, batch_window=0.001)
    node_server = create_server(engine, node_name="n0")
    threading.Thread(target=node_server.serve_forever, daemon=True).start()
    node_url = "http://{}:{}".format(*node_server.server_address[:2])
    router = ClusterRouter([Node(node_url, name="n0")])
    router_server = create_router_server(router)
    threading.Thread(target=router_server.serve_forever,
                     daemon=True).start()
    router_url = "http://{}:{}".format(*router_server.server_address[:2])
    try:
        yield router_url, node_url
    finally:
        router_server.shutdown()
        router_server.server_close()
        router.close()
        node_server.shutdown()
        node_server.server_close()
        engine.close()


@pytest.fixture
def shedding_fleet():
    """A router over one node that sheds every submission
    (``max_queue_depth=0``); yields (router URL, node URL)."""
    engine = Engine(max_workers=1, batch_window=0.001)
    node_server = create_server(engine, node_name="n0", max_queue_depth=0)
    threading.Thread(target=node_server.serve_forever, daemon=True).start()
    node_url = "http://{}:{}".format(*node_server.server_address[:2])
    router = ClusterRouter([Node(node_url, name="n0")])
    router_server = create_router_server(router)
    threading.Thread(target=router_server.serve_forever,
                     daemon=True).start()
    router_url = "http://{}:{}".format(*router_server.server_address[:2])
    try:
        yield router_url, node_url, router
    finally:
        router_server.shutdown()
        router_server.server_close()
        router.close()
        node_server.shutdown()
        node_server.server_close()
        engine.close()


def metric_value(base, name, default=None):
    """One (unlabeled) metric's scalar value from ``?format=json``."""
    _, doc, _ = get(f"{base}/v1/metrics?format=json")
    for metric in doc["metrics"]:
        if metric["name"] == name:
            return sum(s["value"] for s in metric["samples"])
    return default


# ------------------------------------------------------------ error envelope

def test_envelope_on_bad_json(bounded_api):
    base, _engine = bounded_api
    req = urllib.request.Request(
        f"{base}/v1/jobs", data=b"{not json",
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(req, timeout=30)
    err = error_of(excinfo)
    assert err["code"] == "bad_request"
    assert err["retryable"] is False
    assert "bad JSON body" in err["message"]


def test_envelope_on_unknown_job(bounded_api):
    base, _engine = bounded_api
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{base}/v1/jobs/job-999999")
    assert excinfo.value.code == 404
    err = error_of(excinfo)
    assert err["code"] == "unknown_job"
    assert err["retryable"] is False


def test_envelope_on_unknown_endpoint(bounded_api):
    base, _engine = bounded_api
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{base}/v1/nope")
    assert excinfo.value.code == 404
    assert error_of(excinfo)["code"] == "not_found"


def test_envelope_on_bad_wait_param(bounded_api):
    # The historical 500: float("soon") raised inside the handler.
    base, _engine = bounded_api
    _, submitted, _ = post(f"{base}/v1/jobs",
                           {"dataset": "Uniform100M2:200"})
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{base}/v1/jobs/{submitted['job_id']}?wait_s=soon")
    assert excinfo.value.code == 400
    err = error_of(excinfo)
    assert err["code"] == "bad_request"
    assert "wait_s must be a number" in err["message"]


def test_envelope_on_bad_metrics_format(bounded_api):
    base, _engine = bounded_api
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{base}/v1/metrics?format=xml")
    assert excinfo.value.code == 400
    err = error_of(excinfo)
    assert err["code"] == "bad_request"
    assert "unknown metrics format" in err["message"]


def test_router_relays_envelope(routed_api):
    router_url, _node_url = routed_api
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(f"{router_url}/v1/jobs", {"dataset": "Uniform100M2:50",
                                       "algorithm": "kmeans"})
    assert excinfo.value.code == 400
    err = error_of(excinfo)
    assert err["code"] == "bad_request"
    assert err["retryable"] is False
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{router_url}/v1/jobs/job-999999")
    assert excinfo.value.code == 404
    assert error_of(excinfo)["code"] == "unknown_job"


def test_parse_error_envelope_tolerates_legacy_shape():
    assert parse_error_envelope({"error": "boom"}) == (None, "boom", None)
    code, message, retryable = parse_error_envelope(
        {"error": {"code": "overloaded", "message": "full",
                   "retryable": True}})
    assert (code, message, retryable) == ("overloaded", "full", True)
    assert parse_error_envelope("eh")[1] == "eh"


# --------------------------------------------------------- admission control

def _slow_spec(n, seed):
    return {"dataset": f"Uniform100M2:{n}:{seed}", "algorithm": "mrd_emst",
            "k_pts": 4}


def test_admission_queue_sheds_with_429(bounded_api):
    base, engine = bounded_api
    # Two slow jobs fill the bound (1 running + 1 queued on 1 worker)...
    accepted = [post(f"{base}/v1/jobs", _slow_spec(20000, seed))[1]
                for seed in (1, 2)]
    assert engine.queue_depth() >= 2
    # ... so the third submission sheds with the retryable envelope.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(f"{base}/v1/jobs", _slow_spec(20000, 3))
    assert excinfo.value.code == 429
    assert excinfo.value.headers.get("Retry-After") == "1"
    err = error_of(excinfo)
    assert err["code"] == "overloaded"
    assert err["retryable"] is True
    # Depth gauge and shed counter are live on the scrape surface, which
    # stays reachable under overload (shed-exempt endpoint).
    assert metric_value(base, "repro_admission_queue_depth") >= 2
    assert metric_value(base, "repro_http_shed_total") >= 1
    # Accepted jobs complete byte-identically to in-process execution.
    for body, submitted in zip((_slow_spec(20000, 1), _slow_spec(20000, 2)),
                               accepted):
        _, result, _ = get(f"{base}/v1/jobs/{submitted['job_id']}?wait_s=60")
        assert result["status"] == "done"
        reference = canonical_payload_bytes(execute_spec(make_exec_spec(
            JobSpec.from_dict(body)))["payload"])
        assert canonical_payload_bytes(result["payload"]) == reference
    # The backlog drained; the shed submission is welcome now.
    status, resubmitted, _ = post(f"{base}/v1/jobs", _slow_spec(20000, 3))
    assert status == 202
    _, result, _ = get(f"{base}/v1/jobs/{resubmitted['job_id']}?wait_s=60")
    assert result["status"] == "done"


def test_healthz_and_metrics_exempt_from_shedding(bounded_api):
    base, _engine = bounded_api
    for seed in (10, 11):
        post(f"{base}/v1/jobs", _slow_spec(20000, seed))
    status, health, _ = get(f"{base}/v1/healthz")
    assert (status, health["status"]) == (200, "ok")
    status, _doc, _ = get(f"{base}/v1/metrics?format=json")
    assert status == 200


# ------------------------------------------------------ long-poll concurrency

def test_long_polls_beyond_worker_pool(bounded_api):
    """More concurrent ``wait_s=`` waiters than worker threads.

    The old thread-per-connection server queued (or deadlocked) here;
    the asyncio host parks each waiter as a task on the engine future.
    """
    base, _engine = bounded_api
    _, submitted, _ = post(f"{base}/v1/jobs", _slow_spec(25000, 42))
    job_id = submitted["job_id"]
    n_waiters = 24  # vs. 1 engine worker
    observed_inflight = []

    async def drive():
        waiters = [asyncio.ensure_future(aioclient.request_json(
            base, f"/v1/jobs/{job_id}?wait_s=30")) for _ in range(n_waiters)]
        await asyncio.sleep(0.3)  # everyone is parked on the future now
        observed_inflight.append(metric_value(
            base, "repro_http_inflight_requests"))
        return await asyncio.gather(*waiters)

    results = asyncio.run(drive())
    assert len(results) == n_waiters
    for status, _headers, body in results:
        assert status == 200
        assert body["status"] == "done"
    # The gauge proves the waiters were simultaneous, not serialized.
    assert observed_inflight[0] >= n_waiters


# ------------------------------------------------------------- typed clients

def test_node_client_typed_errors(bounded_api):
    base, _engine = bounded_api
    client = NodeClient(Node(base))
    with pytest.raises(NodeHTTPError) as excinfo:
        client.job("job-999999")
    assert excinfo.value.code == 404
    assert excinfo.value.error_code == "unknown_job"
    assert excinfo.value.retryable is False
    with pytest.raises(NodeHTTPError) as excinfo:
        client.submit({"dataset": "Uniform100M2:50", "algorithm": "kmeans"})
    assert excinfo.value.code == 400
    assert excinfo.value.error_code == "bad_request"


def test_node_client_overload_is_typed_and_retry_hinted(bounded_api):
    base, _engine = bounded_api
    client = NodeClient(Node(base))
    for seed in (20, 21):
        client.submit(_slow_spec(20000, seed))
    with pytest.raises(NodeOverloadedError) as excinfo:
        client.submit(_slow_spec(20000, 22))
    assert excinfo.value.retry_after == 1.0
    assert isinstance(excinfo.value, NodeOverloadedError)


def test_router_relays_shed_and_keeps_node_healthy(shedding_fleet):
    router_url, _node_url, router = shedding_fleet
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(f"{router_url}/v1/jobs", {"dataset": "Uniform100M2:200"})
    assert excinfo.value.code == 429
    assert excinfo.value.headers.get("Retry-After") is not None
    err = error_of(excinfo)
    assert err["code"] == "overloaded"
    assert err["retryable"] is True
    # Shedding is proof of life: the router must NOT have marked the node
    # down (a 429 is not a failover-recovery trigger).
    health = router.healthz()
    assert health["nodes"][0]["reachable"] is True
    assert router.ring.nodes[0].healthy


# ----------------------------------------------------------------- client sdk

def test_client_sdk_round_trip(bounded_api):
    base, _engine = bounded_api
    client = Client(base)
    assert client.healthz()["status"] == "ok"
    result = client.submit_and_wait({"dataset": "Uniform100M2:400"},
                                    timeout=60)
    assert result["status"] == "done"
    assert result["payload"]["n_points"] == 400
    assert client.result(result["job_id"])["status"] == "done"
    assert client.trace(result["job_id"]) is not None
    assert client.stats()["jobs"]["done"] >= 1
    assert "repro_jobs_completed_total" in client.metrics_text()
    assert client.flush()["status"] == "ok"
    assert client.compact()["status"] == "ok"


def test_client_sdk_wait_timeout(bounded_api):
    base, _engine = bounded_api
    client = Client(base)
    job_id = client.submit(_slow_spec(25000, 77))["job_id"]
    with pytest.raises(TimeoutError):
        client.wait(job_id, timeout=0.05)


def test_client_sdk_against_router(routed_api):
    router_url, _node_url = routed_api
    client = Client(router_url)
    result = client.submit_and_wait({"dataset": "Uniform100M2:300"},
                                    timeout=60)
    assert result["status"] == "done"
    assert result["node"] == "n0"


# ------------------------------------------------------------- wire fidelity

def test_legacy_error_shape_still_parses():
    """A legacy server answering ``{"error": "<str>"}`` maps sensibly."""

    import http.server

    class LegacyHandler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):
            body = json.dumps({"error": "old-style detail"}).encode()
            self.send_response(418 if "teapot" in self.path else 400)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = http.server.HTTPServer(("127.0.0.1", 0), LegacyHandler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = "http://{}:{}".format(*server.server_address[:2])
    try:
        client = NodeClient(Node(base), retries=0)
        with pytest.raises(NodeHTTPError) as excinfo:
            client.healthz()
        assert excinfo.value.code == 400
        assert excinfo.value.error_code is None  # no envelope to read
        assert "old-style detail" in str(excinfo.value)
    finally:
        server.shutdown()
        server.server_close()


def test_two_xx_bodies_carry_no_envelope(bounded_api):
    """The envelope is additive: success bodies are exactly as before."""
    base, _engine = bounded_api
    _, submitted, headers = post(f"{base}/v1/jobs",
                                 {"dataset": "Uniform100M2:200"})
    assert set(submitted) == {"job_id", "status"}
    assert headers.get("X-Repro-Node")
    _, result, _ = get(f"{base}/v1/jobs/{submitted['job_id']}?wait_s=60")
    assert result["status"] == "done"
    assert "error" not in result or result["error"] is None
