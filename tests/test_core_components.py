"""Tests for the Borůvka building blocks (repro.core.{labels,bounds,merge,outgoing})."""

import numpy as np
import pytest

from repro.bvh import build_bvh
from repro.bvh.traversal import INVALID_LABEL
from repro.core.bounds import compute_upper_bounds
from repro.core.labels import reduce_labels
from repro.core.merge import merge_components
from repro.core.outgoing import OutgoingEdges, find_components_outgoing_edges
from repro.errors import ConvergenceError
from repro.geometry.distance import points_sq
from repro.kokkos.counters import CostCounters


@pytest.fixture
def bvh(rng):
    return build_bvh(rng.random((128, 3)))


class TestReduceLabels:
    def test_uniform_tree(self, bvh):
        labels = np.zeros(bvh.n, dtype=np.int64)
        node_labels = reduce_labels(bvh, labels)
        assert np.all(node_labels == 0)

    def test_all_distinct(self, bvh):
        labels = np.arange(bvh.n, dtype=np.int64)
        node_labels = reduce_labels(bvh, labels)
        assert np.all(node_labels[: bvh.leaf_base] == INVALID_LABEL)
        assert np.array_equal(node_labels[bvh.leaf_base:], labels)

    def test_matches_exhaustive_subtree_check(self, rng):
        bvh = build_bvh(rng.random((64, 2)))
        labels = rng.integers(0, 3, size=64).astype(np.int64)
        node_labels = reduce_labels(bvh, labels)

        def leaves_under(node):
            if node >= bvh.leaf_base:
                return [node - bvh.leaf_base]
            return (leaves_under(int(bvh.left[node]))
                    + leaves_under(int(bvh.right[node])))

        for node in range(bvh.n - 1):
            subtree = labels[leaves_under(node)]
            expected = subtree[0] if np.all(subtree == subtree[0]) \
                else INVALID_LABEL
            assert node_labels[node] == expected, node

    def test_disabled_marks_internal_invalid(self, bvh):
        labels = np.zeros(bvh.n, dtype=np.int64)
        node_labels = reduce_labels(bvh, labels, enabled=False)
        assert np.all(node_labels[: bvh.leaf_base] == INVALID_LABEL)
        assert np.all(node_labels[bvh.leaf_base:] == 0)

    def test_out_buffer_reused(self, bvh):
        labels = np.zeros(bvh.n, dtype=np.int64)
        buf = np.empty(bvh.n_nodes, dtype=np.int64)
        out = reduce_labels(bvh, labels, out=buf)
        assert out is buf

    def test_single_point(self):
        bvh1 = build_bvh(np.array([[0.0, 0.0]]))
        node_labels = reduce_labels(bvh1, np.array([7]))
        assert node_labels.tolist() == [7]

    def test_wrong_shape_rejected(self, bvh):
        with pytest.raises(ValueError):
            reduce_labels(bvh, np.zeros(3, dtype=np.int64))


class TestUpperBounds:
    def test_every_component_bounded(self, bvh, rng):
        labels = rng.integers(0, 10, size=bvh.n).astype(np.int64)
        bounds = compute_upper_bounds(bvh, labels)
        for comp in np.unique(labels):
            assert np.isfinite(bounds[comp]), comp

    def test_bound_is_valid_upper_bound(self, bvh, rng):
        labels = rng.integers(0, 5, size=bvh.n).astype(np.int64)
        bounds = compute_upper_bounds(bvh, labels)
        # Exhaustive check: the true shortest outgoing edge per component
        # must not exceed the bound.
        d2 = np.sum((bvh.points[:, None] - bvh.points[None]) ** 2, axis=2)
        d2[labels[:, None] == labels[None, :]] = np.inf
        for comp in np.unique(labels):
            truth = d2[labels == comp].min()
            assert truth <= bounds[comp] + 1e-12

    def test_adjacent_pair_realizes_bound(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        bvh = build_bvh(pts)
        labels_sorted = (np.arange(4) // 2).astype(np.int64)
        bounds = compute_upper_bounds(bvh, labels_sorted)
        gap = points_sq(bvh.points[1], bvh.points[2])
        assert bounds[0] == gap
        assert bounds[1] == gap

    def test_single_component_infinite(self, bvh):
        labels = np.zeros(bvh.n, dtype=np.int64)
        bounds = compute_upper_bounds(bvh, labels)
        assert np.all(np.isinf(bounds))

    def test_disabled_all_inf(self, bvh, rng):
        labels = rng.integers(0, 4, size=bvh.n).astype(np.int64)
        bounds = compute_upper_bounds(bvh, labels, enabled=False)
        assert np.all(np.isinf(bounds))

    def test_mrd_bound_includes_cores(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        bvh = build_bvh(pts)
        labels = np.array([0, 1], dtype=np.int64)
        core_sq = np.array([9.0, 0.0])
        bounds = compute_upper_bounds(bvh, labels, core_sq=core_sq)
        assert bounds[0] == 9.0  # max(d^2=1, core0=9, core1=0)


def _setup_outgoing(rng, n=100, n_comp=6):
    bvh = build_bvh(rng.random((n, 2)))
    labels = rng.integers(0, n_comp, size=n).astype(np.int64)
    # Canonical labels: use min position per group (merge convention).
    for value in np.unique(labels):
        members = np.nonzero(labels == value)[0]
        labels[members] = members.min()
    node_labels = reduce_labels(bvh, labels)
    bounds = compute_upper_bounds(bvh, labels)
    return bvh, labels, node_labels, bounds


class TestOutgoingEdges:
    def test_matches_brute_force(self, rng):
        bvh, labels, node_labels, bounds = _setup_outgoing(rng)
        edges = find_components_outgoing_edges(bvh, labels, node_labels,
                                               bounds)
        d2 = np.sum((bvh.points[:, None] - bvh.points[None]) ** 2, axis=2)
        d2[labels[:, None] == labels[None, :]] = np.inf
        for comp, w in zip(edges.component, edges.weight_sq):
            truth = d2[labels == comp].min()
            assert w == pytest.approx(truth)

    def test_every_component_present(self, rng):
        bvh, labels, node_labels, bounds = _setup_outgoing(rng)
        edges = find_components_outgoing_edges(bvh, labels, node_labels,
                                               bounds)
        assert set(edges.component) == set(np.unique(labels))

    def test_edges_cross_components(self, rng):
        bvh, labels, node_labels, bounds = _setup_outgoing(rng)
        edges = find_components_outgoing_edges(bvh, labels, node_labels,
                                               bounds)
        assert np.all(labels[edges.source] == edges.component)
        assert np.all(labels[edges.target] != edges.component)
        assert np.all(edges.target_component == labels[edges.target])

    def test_single_component_raises(self, rng):
        bvh = build_bvh(rng.random((20, 2)))
        labels = np.zeros(20, dtype=np.int64)
        node_labels = reduce_labels(bvh, labels)
        bounds = compute_upper_bounds(bvh, labels)
        with pytest.raises(ConvergenceError):
            find_components_outgoing_edges(bvh, labels, node_labels, bounds)

    def test_works_without_optimizations(self, rng):
        bvh, labels, node_labels, bounds = _setup_outgoing(rng)
        plain_nodes = reduce_labels(bvh, labels, enabled=False)
        plain_bounds = compute_upper_bounds(bvh, labels, enabled=False)
        opt = find_components_outgoing_edges(bvh, labels, node_labels,
                                             bounds)
        plain = find_components_outgoing_edges(bvh, labels, plain_nodes,
                                               plain_bounds)
        # The optimizations change work, never results.
        assert np.array_equal(opt.component, plain.component)
        assert np.allclose(opt.weight_sq, plain.weight_sq)
        assert np.array_equal(opt.source, plain.source)
        assert np.array_equal(opt.target, plain.target)


class TestMerge:
    def _edges(self, comp, target_comp, source=None, target=None):
        comp = np.asarray(comp, dtype=np.int64)
        target_comp = np.asarray(target_comp, dtype=np.int64)
        return OutgoingEdges(
            component=comp,
            source=comp if source is None else np.asarray(source),
            target=target_comp if target is None else np.asarray(target),
            weight_sq=np.ones(comp.size),
            target_component=target_comp,
        )

    def test_mutual_pair(self):
        labels = np.array([0, 0, 3, 3], dtype=np.int64)
        edges = self._edges([0, 3], [3, 0])
        new, count = merge_components(labels, 4, edges)
        assert count == 1
        assert np.all(new == 0)

    def test_chain_collapses_to_terminal_min(self):
        # 0 -> 2 -> 5 <-> 7: all merge to label 5.
        labels = np.array([0, 2, 5, 7], dtype=np.int64)
        edges = self._edges([0, 2, 5, 7], [2, 5, 7, 5])
        new, count = merge_components(labels, 8, edges)
        assert count == 1
        assert np.all(new == 5)

    def test_two_separate_merges(self):
        labels = np.array([0, 1, 2, 3], dtype=np.int64)
        edges = self._edges([0, 1, 2, 3], [1, 0, 3, 2])
        new, count = merge_components(labels, 4, edges)
        assert count == 2
        assert new[0] == new[1] == 0
        assert new[2] == new[3] == 2

    def test_long_chain_pointer_jumping(self):
        n = 64
        labels = np.arange(n, dtype=np.int64)
        comps = np.arange(n)
        targets = np.concatenate([np.arange(1, n), [n - 2]])
        edges = self._edges(comps, targets)
        new, count = merge_components(labels, n, edges)
        assert count == 1
        assert np.all(new == n - 2)

    def test_counters(self):
        labels = np.array([0, 1], dtype=np.int64)
        counters = CostCounters()
        edges = self._edges([0, 1], [1, 0])
        merge_components(labels, 2, edges, counters=counters)
        assert counters.scalar_ops > 0
