"""Tests for the persistent artifact store (repro.store) and its wiring."""

import json
import os
import threading
import urllib.request

import numpy as np
import pytest

from repro import emst, hdbscan
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import build_tree, mutual_reachability_emst
from repro.errors import InvalidInputError, ServiceError
from repro.service import (
    BACKENDS,
    Engine,
    JobSpec,
    canonical_payload_bytes,
)
from repro.service.executor import execute_spec, make_exec_spec
from repro.service.scheduler import BatchScheduler
from repro.store import (
    DiskStore,
    TieredCache,
    bvh_from_state,
    bvh_to_state,
    combine_fingerprint,
    fingerprint,
    fingerprint_array,
    read_blob,
    write_blob,
)
from repro.store.blob import (
    BLOB_FORMAT,
    decode_core,
    decode_tree,
    encode_core,
    encode_tree,
)


class TestFingerprint:
    """The keying scheme is part of the on-disk format: these digests are
    pinned so a refactor that silently changes key bytes (stranding every
    persisted store) fails here instead of in production."""

    PINNED_ARRAY = ("5a15c734dcae3a0841149a7c9520f42a"
                    "642f386daea009a18e7b55bf5bddf5aa")
    PINNED_COMBINED = ("3906588d31ab179715d9f83889882e80"
                       "1d2206c6631079b970591d1f84fd609e")
    PINNED_FP = ("f36e6c9075227c5018497f21bdcad480"
                 "2b7aea09800022b7f30e1f5d9b14340f")

    def test_pinned_key_bytes(self):
        a = np.arange(6, dtype=np.float64).reshape(3, 2)
        assert fingerprint_array(a) == self.PINNED_ARRAY
        assert combine_fingerprint(fingerprint_array(a),
                                   "algorithm=emst") == self.PINNED_COMBINED
        assert fingerprint(np.zeros((2, 2)), "core;k_pts=2") == self.PINNED_FP

    def test_service_cache_reexports_the_same_scheme(self):
        # The former copy in repro.service.cache must BE the store's
        # functions, not a lookalike — one scheme, one key space.
        from repro.service import cache as service_cache
        assert service_cache.fingerprint_array is fingerprint_array
        assert service_cache.combine_fingerprint is combine_fingerprint
        assert service_cache.fingerprint is fingerprint

    def test_shape_and_dtype_feed_the_digest(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint_array(a) != fingerprint_array(a.reshape(3, 2))
        assert fingerprint_array(a) != \
            fingerprint_array(a.astype(np.float32))


class TestBlob:
    def test_tree_codec_round_trip(self, uniform_3d):
        tree = build_tree(uniform_3d)
        value = {"bvh": tree, "counters": {"scalar_ops": 123}}
        meta, arrays = encode_tree(value)
        back = decode_tree(meta, arrays)
        assert back["counters"] == {"scalar_ops": 123}
        assert np.array_equal(back["bvh"].points, tree.points)
        assert len(back["bvh"].schedule) == len(tree.schedule)
        # A decoded tree drives the solver to the same answer.
        assert np.array_equal(emst(uniform_3d, bvh=back["bvh"]).edges,
                              emst(uniform_3d).edges)

    def test_core_codec_round_trip(self):
        core = np.linspace(0.0, 1.0, 17)
        meta, arrays = encode_core({"core_sq": core, "counters": None})
        back = decode_core(meta, arrays)
        assert np.array_equal(back["core_sq"], core)
        assert back["counters"] is None

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "x.npz"
        with open(path, "wb") as fh:
            write_blob(fh, {"payload": {"k": [1, 2]}},
                       {"a": np.arange(3, dtype=np.int64)})
        meta, arrays = read_blob(str(path))
        assert meta["payload"] == {"k": [1, 2]}
        assert np.array_equal(arrays["a"], np.arange(3))

    def test_read_blob_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip file at all")
        with pytest.raises(InvalidInputError):
            read_blob(str(path))


class TestDiskStore:
    def _core_blob(self, n=8):
        return encode_core({"core_sq": np.ones(n, dtype=np.float64),
                            "counters": None})

    def test_round_trip_and_persistence(self, tmp_path, uniform_2d):
        root = str(tmp_path / "store")
        store = DiskStore(root)
        meta, arrays = encode_tree({"bvh": build_tree(uniform_2d),
                                    "counters": {"ops": 7}})
        assert store.put("tree", "a" * 64, meta, arrays)
        assert ("tree", "a" * 64) in store

        reopened = DiskStore(root)  # "restart"
        blob = reopened.get("tree", "a" * 64)
        assert blob is not None
        back = decode_tree(*blob)
        assert back["counters"] == {"ops": 7}
        assert np.array_equal(
            emst(uniform_2d, bvh=back["bvh"]).edges,
            emst(uniform_2d).edges)
        assert reopened.get("tree", "b" * 64) is None
        assert reopened.stats()["hits"] == 1
        assert reopened.stats()["misses"] == 1

    def test_lru_eviction_under_byte_budget(self, tmp_path):
        store = DiskStore(str(tmp_path), max_bytes=8 << 10)
        keys = [f"{i:02x}" * 32 for i in range(8)]
        for key in keys:
            meta, arrays = self._core_blob(128)  # ~1 KiB payload each
            store.put("core", key, meta, arrays)
        assert store.current_bytes <= 8 << 10
        assert store.evictions > 0
        # The newest keys survive; the oldest were evicted (files too).
        assert ("core", keys[-1]) in store
        assert ("core", keys[0]) not in store
        stored = store.keys("core")
        for tier, key in stored:
            assert os.path.exists(store._path(tier, key))

    def test_touch_recency_survives_restart(self, tmp_path):
        root = str(tmp_path)
        store = DiskStore(root, max_bytes=1 << 20)
        for name in ("aa", "bb", "cc"):
            store.put("core", name * 32, *self._core_blob())
        assert store.get("core", "aa" * 32) is not None  # refresh aa
        reopened = DiskStore(root, max_bytes=1 << 20)
        order = [key for _tier, key in reopened.keys("core")]
        assert order == ["bb" * 32, "cc" * 32, "aa" * 32]

    def test_oversized_blob_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path), max_bytes=2 << 10)
        meta, arrays = self._core_blob(4096)  # 32 KiB array
        assert not store.put("core", "ff" * 32, meta, arrays)
        assert store.stats()["oversized"] == 1
        assert len(store) == 0

    def test_clear_removes_files(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("core", "aa" * 32, *self._core_blob())
        path = store._path("core", "aa" * 32)
        assert os.path.exists(path)
        assert store.clear() == 1
        assert not os.path.exists(path)
        assert DiskStore(str(tmp_path)).get("core", "aa" * 32) is None

    def test_clear_tier_leaves_other_tiers(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("core", "aa" * 32, *self._core_blob())
        store.put("result", "bb" * 32, *self._core_blob())
        entries, reclaimed = store.clear_tier("core")
        assert entries == 1 and reclaimed > 0
        assert ("core", "aa" * 32) not in store
        assert ("result", "bb" * 32) in store
        assert store.current_bytes > 0
        # The eviction is durable: a reopen must not resurrect the tier.
        reopened = DiskStore(str(tmp_path))
        assert reopened.get("core", "aa" * 32) is None
        assert reopened.get("result", "bb" * 32) is not None

    def test_clear_empty_tier_is_noop(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("core", "aa" * 32, *self._core_blob())
        assert store.clear_tier("tree") == (0, 0)
        assert len(store) == 1

    def test_compact_on_demand(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("core", "aa" * 32, *self._core_blob())
        for _ in range(5):
            store.get("core", "aa" * 32)  # touch lines accumulate
        report = store.compact()
        assert report["journal_lines_before"] == 6
        assert report["journal_lines_after"] == 1
        assert report["entries"] == 1
        assert report["journal_bytes_reclaimed"] > 0
        with open(os.path.join(str(tmp_path), "index.jsonl")) as fh:
            assert len(fh.readlines()) == 1


class TestCrashSafety:
    """A killed writer must never poison the store: opening self-heals."""

    def _store_with_entry(self, tmp_path):
        root = str(tmp_path)
        store = DiskStore(root)
        meta, arrays = encode_core({"core_sq": np.arange(64, dtype=float),
                                    "counters": None})
        store.put("core", "ab" * 32, meta, arrays)
        return root, store._path("core", "ab" * 32)

    def test_truncated_blob_quarantined_on_open(self, tmp_path):
        root, path = self._store_with_entry(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:  # kill -9 mid-overwrite analogue
            fh.truncate(size // 2)
        healed = DiskStore(root)
        assert healed.get("core", "ab" * 32) is None
        assert healed.healed["size_mismatches"] == 1
        assert not os.path.exists(path)  # moved out of the object tree
        quarantined = os.listdir(os.path.join(root, "quarantine"))
        assert any(name.startswith("ab" * 32) for name in quarantined)

    def test_orphan_tmp_files_removed_on_open(self, tmp_path):
        root, path = self._store_with_entry(tmp_path)
        orphan = os.path.join(os.path.dirname(path), "deadbeef.tmp")
        with open(orphan, "wb") as fh:
            fh.write(b"partial write, writer was killed")
        healed = DiskStore(root)
        assert not os.path.exists(orphan)
        assert healed.healed["orphan_tmp"] == 1
        assert healed.get("core", "ab" * 32) is not None  # entry intact

    def test_unindexed_blob_removed_on_open(self, tmp_path):
        root, path = self._store_with_entry(tmp_path)
        stray = os.path.join(os.path.dirname(path), "cd" * 32 + ".npz")
        with open(stray, "wb") as fh:
            fh.write(b"renamed into place but the journal append was lost")
        healed = DiskStore(root)
        assert not os.path.exists(stray)
        assert healed.healed["unindexed"] == 1

    def test_torn_journal_line_skipped(self, tmp_path):
        root, _path = self._store_with_entry(tmp_path)
        with open(os.path.join(root, "index.jsonl"), "a") as fh:
            fh.write('{"op": "put", "tier": "core", "ke')  # torn mid-append
        healed = DiskStore(root)
        assert healed.healed["bad_journal_lines"] == 1
        assert healed.get("core", "ab" * 32) is not None

    def test_missing_blob_dropped_on_open(self, tmp_path):
        root, path = self._store_with_entry(tmp_path)
        os.unlink(path)
        healed = DiskStore(root)
        assert healed.healed["missing_blobs"] == 1
        assert healed.get("core", "ab" * 32) is None

    def test_compaction_tmp_swept_on_open(self, tmp_path):
        root, _path = self._store_with_entry(tmp_path)
        stray = os.path.join(root, "index.jsonl.abc123")
        with open(stray, "w") as fh:  # crash mid-_compact analogue
            fh.write('{"op": "put"...')
        healed = DiskStore(root)
        assert not os.path.exists(stray)
        assert healed.healed["orphan_tmp"] == 1
        assert healed.get("core", "ab" * 32) is not None

    def test_unwritable_journal_degrades_get_to_success(self, tmp_path,
                                                        monkeypatch):
        # A volume that stops accepting writes (ENOSPC, remounted
        # read-only) must cost recency updates, not requests: get() on a
        # disk entry still returns the blob.  (chmod can't simulate this
        # under root, so the append itself is made to fail.)
        root, _path = self._store_with_entry(tmp_path)
        store = DiskStore(root)

        def refuse(record):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(store, "_append", refuse)
        assert store.get("core", "ab" * 32) is not None
        assert store.journal_errors == 1

    def test_corrupt_blob_quarantined_at_read(self, tmp_path):
        root, path = self._store_with_entry(tmp_path)
        size = os.path.getsize(path)
        with open(path, "wb") as fh:  # same size, garbage content
            fh.write(b"\x00" * size)
        store = DiskStore(root)  # size matches: survives the open check
        assert store.get("core", "ab" * 32) is None
        assert store.corrupt == 1
        assert not os.path.exists(path)
        # The journal recorded the eviction: a reopen stays clean.
        assert DiskStore(root).healed["missing_blobs"] == 0


class TestTieredCache:
    def _value(self):
        return {"core_sq": np.arange(32, dtype=float), "counters": None}

    def test_memory_then_disk_then_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        cache = TieredCache("core", 1 << 20, store)
        key = "aa" * 32
        assert cache.get_with_source(key) == (None, None)
        cache.put(key, self._value())
        assert cache.get_with_source(key)[1] == "memory"
        # A fresh facade over the same store simulates a restart: the
        # memory tier is empty, the disk tier answers, the value promotes.
        warm = TieredCache("core", 1 << 20, store)
        value, source = warm.get_with_source(key)
        assert source == "disk"
        assert np.array_equal(value["core_sq"], self._value()["core_sq"])
        assert warm.get_with_source(key)[1] == "memory"  # promoted
        assert warm.disk_hits == 1

    def test_no_store_degenerates_to_memory_only(self):
        cache = TieredCache("core", 1 << 20, None)
        cache.put("aa" * 32, self._value())
        assert cache.get_with_source("aa" * 32)[1] == "memory"
        assert cache.get_with_source("bb" * 32) == (None, None)
        assert cache.stats()["disk"]["enabled"] is False

    def test_memory_eviction_leaves_disk_copy(self, tmp_path):
        store = DiskStore(str(tmp_path))
        cache = TieredCache("core", 600, store)  # fits ~2 x 256-byte values
        for name in ("aa", "bb", "cc", "dd"):
            cache.put(name * 32, self._value())
        assert cache.memory.evictions > 0
        value, source = cache.get_with_source("aa" * 32)
        assert source == "disk"  # spilled on insert, survived eviction
        assert np.array_equal(value["core_sq"], self._value()["core_sq"])

    def test_stats_shape(self, tmp_path):
        cache = TieredCache("tree", 1 << 20, DiskStore(str(tmp_path)))
        stats = cache.stats()
        assert stats["name"] == "tree"
        assert set(stats["disk"]) == {"enabled", "hits", "misses",
                                      "hit_rate", "spill_errors",
                                      "decode_errors", "read_errors"}

    def test_promotion_reuses_insert_time_size(self, tmp_path):
        # The engine inserts result payloads with a cheap O(1) size
        # estimate; a disk-hit promotion must reuse it, not re-walk the
        # payload (and must charge the memory budget identically).
        store = DiskStore(str(tmp_path))
        cache = TieredCache("result", 1 << 20, store)
        cache.put("aa" * 32, {"edges": [[0, 1]]}, nbytes=4096)
        assert cache.memory.size_of("aa" * 32) == 4096
        warm = TieredCache("result", 1 << 20, store)
        assert warm.get_with_source("aa" * 32)[1] == "disk"
        assert warm.memory.size_of("aa" * 32) == 4096


class TestCoreDistanceInjection:
    """Library-level core_sq injection (the tier's compute contract)."""

    def test_injected_core_matches_direct(self, uniform_2d):
        direct = mutual_reachability_emst(uniform_2d, 4)
        assert direct.core_sq is not None
        injected = mutual_reachability_emst(uniform_2d, 4,
                                            core_sq=direct.core_sq)
        assert np.array_equal(injected.edges, direct.edges)
        assert np.array_equal(injected.weights, direct.weights)
        assert injected.phases["core"] == 0.0
        assert injected.counters["core"].scalar_ops == 0

    def test_injected_core_is_tree_layout_independent(self, uniform_2d):
        # Core distances computed under one tree configuration must drive
        # a run under another to the identical answer (caller-order
        # storage is what makes the (points, k_pts) cache key sound).
        core = mutual_reachability_emst(uniform_2d, 4).core_sq
        other = SingleTreeConfig(high_resolution=True)
        direct = mutual_reachability_emst(uniform_2d, 4, config=other)
        injected = mutual_reachability_emst(uniform_2d, 4, config=other,
                                            core_sq=core)
        assert np.array_equal(injected.edges, direct.edges)
        assert np.allclose(injected.weights, direct.weights)

    def test_hdbscan_with_injected_core(self, clustered_3d):
        mrd = mutual_reachability_emst(clustered_3d, 5)
        direct = hdbscan(clustered_3d)
        warm = hdbscan(clustered_3d, core_sq=mrd.core_sq)
        assert np.array_equal(warm.labels, direct.labels)
        assert warm.phases["core"] == 0.0

    def test_bad_core_sq_rejected(self, uniform_2d):
        with pytest.raises(InvalidInputError, match="shape"):
            mutual_reachability_emst(uniform_2d, 4, core_sq=np.ones(3))
        bad = np.full(len(uniform_2d), np.nan)
        with pytest.raises(InvalidInputError, match="finite"):
            mutual_reachability_emst(uniform_2d, 4, core_sq=bad)

    def test_euclidean_result_has_no_core(self, uniform_2d):
        assert emst(uniform_2d).core_sq is None


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture(params=BACKENDS)
def engine(request):
    """A memory-only engine per execution backend (core-tier guarantees
    must hold under both, like every other engine-level behavior)."""
    with Engine(max_workers=2, batch_window=0.001,
                backend=request.param) as eng:
        yield eng


class TestEngineWarmRestart:
    """The acceptance path: serve → kill → serve with the same store."""

    def test_exact_repeat_served_from_disk(self, tmp_path, backend):
        spec = dict(dataset="Uniform100M2:400", algorithm="mrd_emst",
                    k_pts=4)
        root = str(tmp_path / "store")
        with Engine(max_workers=1, batch_window=0.0, backend=backend,
                    store_dir=root) as eng:
            cold = eng.result(eng.submit(JobSpec(**spec)), timeout=120)
            assert cold.status.value == "done", cold.error
            cold_bytes = canonical_payload_bytes(cold.payload)
        with Engine(max_workers=1, batch_window=0.0, backend=backend,
                    store_dir=root) as eng:
            warm = eng.result(eng.submit(JobSpec(**spec)), timeout=120)
            assert warm.cache["result_hit"]
            assert warm.cache["result_disk_hit"]
            # No recompute: the scheduler saw no computed features.
            assert eng.stats()["scheduler"]["features_done"] == 0
            assert canonical_payload_bytes(warm.payload) == cold_bytes

    def test_tree_and_core_warm_from_disk_byte_identical(self, tmp_path,
                                                         backend):
        """A *different* job over known points skips T_tree and T_core via
        the disk tiers and still matches cold execution byte-for-byte."""
        root = str(tmp_path / "store")
        warm_spec = JobSpec(dataset="Uniform100M2:400", algorithm="hdbscan",
                            k_pts=4, min_cluster_size=6)
        with Engine(max_workers=1, batch_window=0.0, backend=backend,
                    store_dir=root) as eng:
            first = eng.result(
                eng.submit(JobSpec(dataset="Uniform100M2:400",
                                   algorithm="mrd_emst", k_pts=4)),
                timeout=120)
            assert first.status.value == "done", first.error
        with Engine(max_workers=1, batch_window=0.0, backend=backend,
                    store_dir=root) as eng:
            warm = eng.result(eng.submit(warm_spec), timeout=120)
            assert warm.status.value == "done", warm.error
            assert not warm.cache["result_hit"]
            assert warm.cache["tree_hit"] and warm.cache["tree_disk_hit"]
            assert warm.cache["core_hit"] and warm.cache["core_disk_hit"]
            # Phase timings report both artifacts as skipped.
            assert "tree_build" not in warm.timings
            assert warm.timings["algo_tree"] == 0.0
            assert warm.timings["algo_core"] == 0.0
        reference = JobSpec(dataset="Uniform100M2:400", algorithm="hdbscan",
                            k_pts=4, min_cluster_size=6)
        reference.validate()
        cold_payload = execute_spec(make_exec_spec(reference))["payload"]
        # Replayed counters make the warm payload byte-identical to cold
        # execution — skipped phases report their original work numbers.
        assert canonical_payload_bytes(warm.payload) == \
            canonical_payload_bytes(cold_payload)

    def test_flush_forgets_everything(self, tmp_path):
        root = str(tmp_path / "store")
        with Engine(max_workers=1, batch_window=0.0,
                    store_dir=root) as eng:
            eng.result(eng.submit(JobSpec(dataset="Uniform100M2:300")),
                       timeout=60)
            flushed = eng.flush()
            assert flushed["result"] == 1 and flushed["tree"] == 1
            assert flushed["store"] >= 2
            again = eng.result(eng.submit(JobSpec(dataset="Uniform100M2:300")),
                               timeout=60)
            assert not again.cache["result_hit"]
            assert not again.cache["result_disk_hit"]

    def test_flush_single_tier_keeps_the_rest(self, tmp_path):
        with Engine(max_workers=1, batch_window=0.0,
                    store_dir=str(tmp_path / "store")) as eng:
            eng.result(eng.submit(JobSpec(dataset="Uniform100M2:300",
                                          algorithm="mrd_emst", k_pts=4)),
                       timeout=60)
            flushed = eng.flush(tier="core")
            assert flushed["core"] == 1
            assert flushed["store"] == 1
            assert flushed["store_bytes"] > 0
            assert "tree" not in flushed
            again = eng.result(
                eng.submit(JobSpec(dataset="Uniform100M2:300",
                                   algorithm="hdbscan", k_pts=4)),
                timeout=60)
            assert again.cache["tree_hit"]  # tree tier survived
            assert not again.cache["core_hit"]  # core tier flushed

    def test_flush_unknown_tier_raises(self):
        with Engine(max_workers=1) as eng:
            with pytest.raises(InvalidInputError, match="tier"):
                eng.flush(tier="bvh")  # wire alias is the server's job

    def test_compact_memory_only_returns_none(self):
        with Engine(max_workers=1) as eng:
            assert eng.compact() is None

    def test_memory_only_engine_unchanged(self, uniform_2d):
        with Engine(max_workers=1, batch_window=0.0) as eng:
            assert eng.store is None
            result = eng.result(eng.submit(JobSpec(points=uniform_2d)),
                                timeout=60)
            assert result.status.value == "done"
            assert eng.stats()["store"] is None


class TestCoreTier:
    def test_mrd_then_hdbscan_skips_core(self, engine, uniform_2d):
        mrd = engine.result(
            engine.submit(JobSpec(points=uniform_2d, algorithm="mrd_emst",
                                  k_pts=4)), timeout=120)
        assert not mrd.cache["core_hit"]
        hdb = engine.result(
            engine.submit(JobSpec(points=uniform_2d, algorithm="hdbscan",
                                  k_pts=4)), timeout=120)
        assert hdb.status.value == "done", hdb.error
        assert hdb.cache["tree_hit"] and hdb.cache["core_hit"]
        assert hdb.timings["algo_core"] == 0.0
        direct = hdbscan(uniform_2d, k_pts=4)
        assert np.array_equal(hdb.hdbscan().labels, direct.labels)

    def test_different_k_pts_misses_core(self, engine, uniform_2d):
        engine.result(engine.submit(
            JobSpec(points=uniform_2d, algorithm="mrd_emst", k_pts=4)),
            timeout=120)
        other = engine.result(engine.submit(
            JobSpec(points=uniform_2d, algorithm="mrd_emst", k_pts=7)),
            timeout=120)
        assert other.cache["tree_hit"]
        assert not other.cache["core_hit"]
        assert other.timings["algo_core"] > 0.0

    def test_emst_never_touches_core_tier(self, engine, uniform_2d):
        result = engine.result(engine.submit(JobSpec(points=uniform_2d)),
                               timeout=120)
        assert not result.cache["core_hit"]
        stats = engine.stats()["core_cache"]
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestLifecycleErrors:
    def test_submit_after_close_raises_service_error(self, uniform_2d):
        eng = Engine(max_workers=1)
        eng.close()
        with pytest.raises(ServiceError, match="closed"):
            eng.submit(JobSpec(points=uniform_2d))

    def test_scheduler_submit_after_shutdown(self):
        sched = BatchScheduler(lambda t: None, max_workers=1)
        sched.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            sched.submit("late", None)

    def test_service_error_is_clean_and_catchable(self, uniform_2d):
        from repro.errors import ReproError
        eng = Engine(max_workers=1)
        eng.close()
        with pytest.raises(ReproError):
            eng.submit(JobSpec(points=uniform_2d))


class TestServerWithStore:
    @pytest.fixture
    def persistent_api(self, tmp_path):
        from repro.service.server import create_server

        engine = Engine(max_workers=1, batch_window=0.001,
                        store_dir=str(tmp_path / "store"))
        server = create_server(engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=120) as resp:
            return resp.status, json.loads(resp.read())

    def _post(self, url, obj=None):
        data = json.dumps(obj).encode() if obj is not None else b""
        req = urllib.request.Request(url, data=data, method="POST")
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())

    def test_healthz_reports_persistence(self, persistent_api):
        _status, body = self._get(f"{persistent_api}/v1/healthz")
        assert body["persistent"] is True

    def test_stats_expose_disk_tiers_and_store(self, persistent_api):
        _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                  {"dataset": "Uniform100M2:200"})
        _, result = self._get(
            f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["status"] == "done"
        _, stats = self._get(f"{persistent_api}/v1/stats")
        for tier in ("tree_cache", "result_cache", "core_cache"):
            assert stats[tier]["disk"]["enabled"] is True
        assert stats["store"]["entries"] >= 2
        assert stats["store"]["entries_by_tier"].get("tree") == 1

    def test_admin_flush_endpoint(self, persistent_api):
        _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                  {"dataset": "Uniform100M2:200"})
        _, result = self._get(
            f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["status"] == "done"
        status, body = self._post(f"{persistent_api}/v1/admin/flush")
        assert status == 200
        assert body["flushed"]["store"] >= 2
        assert body["flushed"]["store_bytes"] > 0
        _, stats = self._get(f"{persistent_api}/v1/stats")
        assert stats["store"]["entries"] == 0
        assert stats["result_cache"]["entries"] == 0

    def test_admin_flush_single_tier(self, persistent_api):
        _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                  {"dataset": "Uniform100M2:200"})
        _, result = self._get(
            f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["status"] == "done"
        # "bvh" is the wire name of the internal tree tier.
        status, body = self._post(f"{persistent_api}/v1/admin/flush",
                                  {"tier": "bvh"})
        assert status == 200
        assert body["tier"] == "tree"
        assert body["flushed"]["tree"] == 1
        assert body["flushed"]["store"] == 1
        assert body["flushed"]["store_bytes"] > 0
        assert "result" not in body["flushed"]
        _, stats = self._get(f"{persistent_api}/v1/stats")
        # The result tier survives a tree-only flush, on disk too.
        assert stats["result_cache"]["entries"] == 1
        assert stats["store"]["entries_by_tier"].get("tree") is None
        assert stats["store"]["entries_by_tier"]["result"] == 1
        # The repeat is still an exact-repeat result hit...
        _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                  {"dataset": "Uniform100M2:200"})
        _, result = self._get(
            f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["cache"]["result_hit"]
        # ...but a *different* job over the same points rebuilds the tree.
        _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                  {"dataset": "Uniform100M2:200",
                                   "algorithm": "mrd_emst", "k_pts": 4})
        _, result = self._get(
            f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
        assert result["status"] == "done"
        assert not result["cache"]["tree_hit"]

    def test_admin_flush_unknown_tier_is_400(self, persistent_api):
        import urllib.error
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{persistent_api}/v1/admin/flush",
                       {"tier": "everything"})
        assert excinfo.value.code == 400

    def test_admin_compact_endpoint(self, persistent_api):
        for n in (200, 250, 300):
            _, submitted = self._post(f"{persistent_api}/v1/jobs",
                                      {"dataset": f"Uniform100M2:{n}"})
            _, result = self._get(
                f"{persistent_api}/v1/jobs/{submitted['job_id']}?wait=60")
            assert result["status"] == "done"
        status, body = self._post(f"{persistent_api}/v1/admin/compact")
        assert status == 200
        compacted = body["compacted"]
        # After compaction the journal holds exactly one line per entry.
        assert compacted["journal_lines_after"] == compacted["entries"]
        assert compacted["journal_lines_before"] >= \
            compacted["journal_lines_after"]

    def test_admin_compact_memory_only_node(self, api):
        import urllib.request
        req = urllib.request.Request(f"{api}/v1/admin/compact", data=b"",
                                     method="POST")
        with urllib.request.urlopen(req, timeout=30) as resp:
            body = json.loads(resp.read())
        assert resp.status == 200
        assert body["compacted"] is None


class TestBvhStateCompat:
    def test_executor_reexports_store_serialization(self):
        # The process-backend wire format and the on-disk format must stay
        # the same functions forever (cross-process == cross-restart).
        from repro.service import executor
        from repro.store import blob
        assert executor.bvh_to_state is blob.bvh_to_state
        assert executor.bvh_from_state is blob.bvh_from_state

    def test_state_written_by_one_layout_loads_in_another(self, uniform_3d):
        state = bvh_to_state(build_tree(
            uniform_3d, config=SingleTreeConfig(high_resolution=True)))
        meta, arrays = encode_tree({"bvh": bvh_from_state(state),
                                    "counters": None})
        back = decode_tree(meta, arrays)
        assert back["bvh"].codes_lo is not None
        assert np.array_equal(back["bvh"].codes_lo, state["codes_lo"])


class TestBlobFormatCompatibility:
    """Format-1 blobs (pre-blocking wire format) must still load."""

    def _write_format1_tree(self, path, tree):
        # Reconstruct the historical layout by hand: no leaf arrays, no
        # leaf_size metadata, format tag 1.
        import json as _json
        meta = {"tier": "tree", "n_schedule": len(tree.schedule),
                "counters": None, "format": 1}
        arrays = {"points": tree.points, "order": tree.order,
                  "codes": tree.codes, "left": tree.left,
                  "right": tree.right, "parent": tree.parent,
                  "lo": tree.lo, "hi": tree.hi}
        for level, step in enumerate(tree.schedule):
            arrays[f"schedule_{level:03d}"] = step
        meta_bytes = np.frombuffer(
            _json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, **{"__meta__": meta_bytes}, **arrays)

    def test_format1_tree_blob_decodes(self, tmp_path, uniform_2d):
        from repro.store.blob import decode_tree
        tree = build_tree(uniform_2d,
                          config=SingleTreeConfig(leaf_size=1))
        path = str(tmp_path / "old.npz")
        self._write_format1_tree(path, tree)
        meta, arrays = read_blob(path)
        assert meta["format"] == 1
        back = decode_tree(meta, arrays)["bvh"]
        # The synthesized blocking is the implied one-point-per-leaf.
        assert back.leaf_size == 1
        assert np.array_equal(back.leaf_start, np.arange(back.n))
        assert np.array_equal(back.leaf_count, np.ones(back.n))
        # And it drives the solver to the same answer.
        assert np.array_equal(emst(uniform_2d, bvh=back).edges,
                              emst(uniform_2d).edges)

    def test_format2_round_trip_carries_blocking(self, uniform_2d,
                                                 tmp_path):
        tree = build_tree(uniform_2d,
                          config=SingleTreeConfig(leaf_size=4))
        meta, arrays = encode_tree({"bvh": tree, "counters": None})
        path = tmp_path / "new.npz"
        with open(path, "wb") as fh:
            write_blob(fh, meta, arrays)
        got_meta, got_arrays = read_blob(str(path))
        assert got_meta["format"] == BLOB_FORMAT
        assert got_meta["leaf_size"] == 4
        back = decode_tree(got_meta, got_arrays)["bvh"]
        assert back.leaf_size == 4
        assert np.array_equal(back.leaf_start, tree.leaf_start)
        assert np.array_equal(back.leaf_count, tree.leaf_count)

    def test_unknown_future_format_rejected(self, tmp_path):
        import json as _json
        meta_bytes = np.frombuffer(
            _json.dumps({"format": 99}).encode(), dtype=np.uint8)
        path = tmp_path / "future.npz"
        with open(path, "wb") as fh:
            np.savez(fh, **{"__meta__": meta_bytes})
        with pytest.raises(InvalidInputError, match="format"):
            read_blob(str(path))
