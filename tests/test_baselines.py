"""Tests for the EMST baselines (repro.baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import (
    bentley_friedman_emst,
    brute_force_emst,
    brute_force_mrd_emst,
    delaunay_emst_2d,
    dual_tree_emst,
    memogfk_emst,
)
from repro.core.emst import emst
from repro.errors import DimensionError, InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.mst.validate import edges_canonical, is_spanning_tree
from tests.conftest import finite_points

TREE_BASELINES = [
    ("bentley-friedman", lambda p: bentley_friedman_emst(p)[:3]),
    ("dual-tree", lambda p: dual_tree_emst(p)[:3]),
    ("memogfk", lambda p: (lambda r: (r.u, r.v, r.w))(memogfk_emst(p))),
    ("memogfk-eager",
     lambda p: (lambda r: (r.u, r.v, r.w))(memogfk_emst(p, lazy=False))),
]


class TestBruteForce:
    def test_known_chain(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        u, v, w = brute_force_emst(pts)
        assert list(zip(u, v)) == [(0, 1), (1, 2)]
        assert w.tolist() == [1.0, 2.0]

    def test_single_point(self):
        u, v, w = brute_force_emst(np.array([[0.0, 0.0]]))
        assert u.size == 0

    def test_matches_single_tree(self, rng):
        pts = rng.random((120, 3))
        u, v, w = brute_force_emst(pts)
        result = emst(pts)
        assert edges_canonical(u, v) == \
            edges_canonical(result.edges[:, 0], result.edges[:, 1])

    def test_mrd_k1_equals_euclidean(self, rng):
        pts = rng.random((50, 2))
        _, _, w_e = brute_force_emst(pts)
        _, _, w_m = brute_force_mrd_emst(pts, 1)
        assert w_m.sum() == pytest.approx(w_e.sum())

    def test_mrd_rejects_bad_k(self, rng):
        with pytest.raises(InvalidInputError):
            brute_force_mrd_emst(rng.random((5, 2)), 6)


class TestTreeBaselines:
    @pytest.mark.parametrize("name,fn", TREE_BASELINES,
                             ids=[t[0] for t in TREE_BASELINES])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_edge_sets(self, name, fn, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        pts = rng.random((n, int(rng.choice([2, 3]))))
        u0, v0, _ = brute_force_emst(pts)
        u, v, w = fn(pts)
        assert is_spanning_tree(n, u, v), name
        assert edges_canonical(u, v) == edges_canonical(u0, v0), name

    @pytest.mark.parametrize("name,fn", TREE_BASELINES,
                             ids=[t[0] for t in TREE_BASELINES])
    def test_grid_ties(self, name, fn):
        import itertools
        pts = np.array(list(itertools.product(range(5), range(5))),
                       dtype=float)
        u0, v0, w0 = brute_force_emst(pts)
        u, v, w = fn(pts)
        assert w.sum() == pytest.approx(w0.sum()), name

    @pytest.mark.parametrize("name,fn", TREE_BASELINES,
                             ids=[t[0] for t in TREE_BASELINES])
    def test_duplicates(self, name, fn):
        rng = np.random.default_rng(9)
        pts = np.repeat(rng.random((6, 2)), 8, axis=0)
        u, v, w = fn(pts)
        assert is_spanning_tree(len(pts), u, v), name
        u0, v0, w0 = brute_force_emst(pts)
        assert w.sum() == pytest.approx(w0.sum()), name

    @pytest.mark.parametrize("name,fn", TREE_BASELINES,
                             ids=[t[0] for t in TREE_BASELINES])
    def test_two_points(self, name, fn):
        u, v, w = fn(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert w.tolist() == [5.0]

    def test_dual_tree_counters(self, rng):
        counters = CostCounters()
        dual_tree_emst(rng.random((100, 2)), counters=counters)
        assert counters.distance_evals > 0
        assert counters.nodes_visited > 0

    def test_bentley_friedman_counters(self, rng):
        counters = CostCounters()
        bentley_friedman_emst(rng.random((100, 2)), counters=counters)
        assert counters.distance_evals > 0

    def test_dual_tree_clustered(self, clustered_3d):
        u, v, w = dual_tree_emst(clustered_3d)
        u0, v0, w0 = brute_force_emst(clustered_3d)
        assert w.sum() == pytest.approx(w0.sum())


class TestMemoGFK:
    def test_phases_recorded(self, rng):
        result = memogfk_emst(rng.random((80, 2)))
        assert set(result.phases) >= {"tree", "wspd", "mst"}
        assert result.n_pairs > 0

    def test_lazy_computes_fewer_bcps(self, rng):
        pts = rng.random((200, 2))
        lazy = memogfk_emst(pts, lazy=True)
        eager = memogfk_emst(pts, lazy=False)
        assert lazy.n_bcp_computed < eager.n_bcp_computed
        assert lazy.total_weight == pytest.approx(eager.total_weight)
        assert lazy.n_pairs == eager.n_pairs == eager.n_bcp_computed

    def test_mrd_matches_oracle(self, rng):
        for k in (2, 4):
            pts = rng.random((60, 2))
            r = memogfk_emst(pts, k_pts=k)
            _, _, w = brute_force_mrd_emst(pts, k)
            assert r.total_weight == pytest.approx(float(w.sum()))

    def test_mrd_has_core_phase(self, rng):
        r = memogfk_emst(rng.random((40, 2)), k_pts=3)
        assert r.phases.get("core", 0.0) > 0.0

    def test_rejects_small_separation(self, rng):
        with pytest.raises(InvalidInputError):
            memogfk_emst(rng.random((10, 2)), separation=1.5)

    def test_single_point(self):
        r = memogfk_emst(np.array([[0.0, 0.0]]))
        assert r.u.size == 0

    @given(finite_points(min_n=2, max_n=50))
    @settings(max_examples=15)
    def test_property_matches_oracle_weight(self, pts):
        r = memogfk_emst(pts)
        _, _, w = brute_force_emst(pts)
        assert r.total_weight == pytest.approx(float(w.sum()))


class TestDelaunay:
    def test_matches_oracle(self, rng):
        pts = rng.random((150, 2))
        u, v, w = delaunay_emst_2d(pts)
        _, _, w0 = brute_force_emst(pts)
        assert w.sum() == pytest.approx(w0.sum())
        assert is_spanning_tree(150, u, v)

    def test_rejects_3d(self, rng):
        with pytest.raises(DimensionError):
            delaunay_emst_2d(rng.random((10, 3)))

    def test_collinear_fallback(self):
        pts = np.stack([np.linspace(0, 1, 20), np.zeros(20)], axis=1)
        u, v, w = delaunay_emst_2d(pts)
        assert w.sum() == pytest.approx(1.0)

    def test_two_points(self):
        u, v, w = delaunay_emst_2d(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert w.tolist() == [1.0]

    @given(finite_points(min_n=3, max_n=60, dims=(2,)))
    @settings(max_examples=15)
    def test_property_matches_oracle(self, pts):
        u, v, w = delaunay_emst_2d(pts)
        _, _, w0 = brute_force_emst(pts)
        assert w.sum() == pytest.approx(float(w0.sum()))


@given(finite_points(min_n=2, max_n=45))
@settings(max_examples=10)
def test_property_all_implementations_agree(pts):
    """The capstone property: five independent implementations, one MST."""
    weights = []
    u0, v0, w0 = brute_force_emst(pts)
    weights.append(float(w0.sum()))
    weights.append(emst(pts).total_weight)
    weights.append(float(dual_tree_emst(pts)[2].sum()))
    weights.append(float(bentley_friedman_emst(pts)[2].sum()))
    weights.append(memogfk_emst(pts).total_weight)
    assert all(w == pytest.approx(weights[0]) for w in weights[1:])
