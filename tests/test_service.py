"""Tests for the batch-serving subsystem (repro.service)."""

import pickle
import threading
import time

import numpy as np
import pytest

from repro import emst, hdbscan
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import build_tree, mutual_reachability_emst
from repro.errors import InvalidInputError
from repro.service import (
    BACKENDS,
    ContentCache,
    Engine,
    JobResult,
    JobSpec,
    JobStatus,
    canonical_payload_bytes,
    emst_result_from_dict,
    emst_result_to_dict,
    execute_spec,
    fingerprint,
    hdbscan_result_from_dict,
    hdbscan_result_to_dict,
)
from repro.service.cache import estimate_nbytes, fingerprint_array
from repro.service.executor import bvh_from_state, bvh_to_state, make_exec_spec
from repro.service.scheduler import BatchScheduler


@pytest.fixture(params=BACKENDS)
def engine(request):
    """An engine per execution backend: every engine-level guarantee —
    caching, retention, failure absorption, stats — must hold under both."""
    with Engine(max_workers=2, batch_window=0.001,
                backend=request.param) as eng:
        yield eng


class TestTreeInjection:
    def test_emst_with_prebuilt_tree_is_identical(self, uniform_3d):
        direct = emst(uniform_3d)
        bvh = build_tree(uniform_3d)
        injected = emst(uniform_3d, bvh=bvh)
        assert np.array_equal(direct.edges, injected.edges)
        assert np.array_equal(direct.weights, injected.weights)
        assert injected.phases["tree"] == 0.0
        assert injected.counters["tree"].scalar_ops == 0

    def test_mrd_with_prebuilt_tree(self, uniform_2d):
        bvh = build_tree(uniform_2d)
        direct = mutual_reachability_emst(uniform_2d, 4)
        injected = mutual_reachability_emst(uniform_2d, 4, bvh=bvh)
        assert np.array_equal(direct.edges, injected.edges)
        assert np.allclose(direct.weights, injected.weights)

    def test_hdbscan_with_prebuilt_tree(self, clustered_3d):
        bvh = build_tree(clustered_3d)
        direct = hdbscan(clustered_3d)
        injected = hdbscan(clustered_3d, bvh=bvh)
        assert np.array_equal(direct.labels, injected.labels)

    def test_mismatched_tree_rejected(self, uniform_2d, uniform_3d, rng):
        bvh = build_tree(uniform_2d)
        with pytest.raises(InvalidInputError):
            emst(uniform_3d, bvh=bvh)
        with pytest.raises(InvalidInputError):
            emst(rng.random(uniform_2d.shape), bvh=bvh)

    def test_check_tree_false_skips_coordinate_pass(self, uniform_2d, rng):
        bvh = build_tree(uniform_2d)
        # An O(1) shape mismatch is always rejected...
        with pytest.raises(InvalidInputError):
            emst(rng.random((50, 2)), bvh=bvh, check_tree=False)
        # ...but the O(n*d) coordinate pass is the caller's guarantee.
        same_shape = rng.random(uniform_2d.shape)
        emst(same_shape, bvh=bvh, check_tree=False)  # no raise


class TestJobSpec:
    def test_requires_exactly_one_source(self, uniform_2d):
        with pytest.raises(InvalidInputError):
            JobSpec().validate()
        with pytest.raises(InvalidInputError):
            JobSpec(points=uniform_2d, dataset="Uniform100M2:10").validate()

    def test_rejects_unknown_algorithm(self, uniform_2d):
        with pytest.raises(InvalidInputError):
            JobSpec(points=uniform_2d, algorithm="dbscan").validate()

    def test_rejects_non_matrix_inline_points(self):
        with pytest.raises(InvalidInputError, match=r"\(n, d\)"):
            JobSpec(points=np.array([1.0, 2.0, 3.0])).validate()
        with pytest.raises(InvalidInputError, match=r"\(n, d\)"):
            JobSpec.from_dict({"points": [1.0, 2.0, 3.0]})

    def test_rejects_core_invalid_inline_points(self, rng):
        with pytest.raises(InvalidInputError, match="d in"):
            JobSpec(points=rng.random((10, 5))).validate()  # 5D
        nan_pts = rng.random((10, 2))
        nan_pts[0, 0] = np.nan
        with pytest.raises(InvalidInputError, match="finite"):
            JobSpec(points=nan_pts).validate()
        with pytest.raises(InvalidInputError):
            JobSpec(points=np.array([["a", "b"]])).validate()

    def test_rejects_non_integer_numeric_fields(self, uniform_2d):
        with pytest.raises(InvalidInputError, match="integer"):
            JobSpec(points=uniform_2d, k_pts="5").validate()
        with pytest.raises(InvalidInputError, match="integer"):
            JobSpec(points=uniform_2d, priority="high").validate()

    def test_rejects_wrong_typed_config_fields(self, uniform_2d):
        with pytest.raises(InvalidInputError, match="config.bits"):
            JobSpec.from_dict({"points": uniform_2d.tolist(),
                               "config": {"bits": "8"}})
        with pytest.raises(InvalidInputError, match="boolean"):
            JobSpec.from_dict({"points": uniform_2d.tolist(),
                               "config": {"high_resolution": "yes"}})

    def test_rejects_bad_config_values(self, uniform_2d):
        with pytest.raises(InvalidInputError, match="tree_type"):
            JobSpec.from_dict({"points": uniform_2d.tolist(),
                               "config": {"tree_type": "octree"}})
        with pytest.raises(InvalidInputError, match="BVH backend only"):
            JobSpec.from_dict({"points": uniform_2d.tolist(),
                               "config": {"tree_type": "kdtree", "bits": 32}})

    def test_spec_mutated_after_validation_fails_loudly(self, engine,
                                                        uniform_2d):
        spec = JobSpec(points=uniform_2d)
        engine.result(engine.submit(spec), timeout=60)
        spec.algorithm = "dbscan"  # bypasses the memoized validate()
        result = engine.result(engine.submit(spec), timeout=60)
        assert result.status is JobStatus.FAILED
        assert "unknown algorithm" in result.error

    def test_dict_round_trip(self, uniform_2d):
        spec = JobSpec(points=uniform_2d, algorithm="hdbscan", k_pts=7,
                       min_cluster_size=9, priority=3,
                       config=SingleTreeConfig(high_resolution=True))
        back = JobSpec.from_dict(spec.to_dict())
        assert np.array_equal(back.points, uniform_2d)
        assert back.algorithm == "hdbscan"
        assert back.k_pts == 7 and back.min_cluster_size == 9
        assert back.priority == 3
        assert back.config == spec.config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidInputError):
            JobSpec.from_dict({"dataset": "Uniform100M2:10", "metric": "l1"})
        with pytest.raises(InvalidInputError):
            JobSpec.from_dict({"dataset": "Uniform100M2:10",
                               "config": {"warp": 64}})

    def test_dataset_resolution(self):
        spec = JobSpec(dataset="Uniform100M2:64:3")
        prefixed = JobSpec(dataset="dataset:Uniform100M2:64:3")
        assert np.array_equal(spec.resolve_points(),
                              prefixed.resolve_points())

    def test_tree_key_independent_of_algorithm(self, uniform_2d):
        a = JobSpec(points=uniform_2d, algorithm="emst")
        b = JobSpec(points=uniform_2d, algorithm="hdbscan", k_pts=9)
        assert a.tree_key() == b.tree_key()
        assert a.params_key() != b.params_key()


class TestResultSerialization:
    def test_emst_round_trip(self, uniform_3d):
        direct = emst(uniform_3d)
        back = emst_result_from_dict(emst_result_to_dict(direct))
        assert np.array_equal(back.edges, direct.edges)
        assert back.edges.dtype == direct.edges.dtype
        assert np.array_equal(back.weights, direct.weights)
        assert back.n_iterations == direct.n_iterations
        assert back.phases == direct.phases
        assert back.total_counters.as_dict() == \
            direct.total_counters.as_dict()
        assert len(back.rounds) == len(direct.rounds)
        assert back.rounds[0] == direct.rounds[0]

    def test_hdbscan_round_trip(self, clustered_3d):
        direct = hdbscan(clustered_3d)
        back = hdbscan_result_from_dict(hdbscan_result_to_dict(direct))
        assert np.array_equal(back.labels, direct.labels)
        assert np.allclose(back.probabilities, direct.probabilities)
        assert back.n_clusters == direct.n_clusters
        assert np.allclose(back.linkage, direct.linkage)
        assert np.array_equal(back.condensed.parent, direct.condensed.parent)

    def test_job_result_round_trip(self):
        result = JobResult(job_id="job-7", status=JobStatus.DONE,
                           algorithm="emst", payload={"n_points": 3},
                           timings={"queue": 0.5}, cache={"result_hit": True},
                           mfeatures_per_sec=2.5)
        back = JobResult.from_dict(result.to_dict())
        assert back == result


class TestContentCache:
    def test_fingerprint_content_addressing(self, rng):
        a = rng.random((50, 2))
        assert fingerprint_array(a) == fingerprint_array(a.copy())
        assert fingerprint_array(a) != fingerprint_array(a.reshape(100, 1))
        b = a.copy()
        b[0, 0] += 1e-12
        assert fingerprint_array(a) != fingerprint_array(b)
        assert fingerprint(a, "emst") != fingerprint(a, "hdbscan")

    def test_byte_budget_respected(self):
        kb = np.zeros(128, dtype=np.float64)  # 1 KiB each
        cache = ContentCache(4096)
        for i in range(10):
            assert cache.put(f"k{i}", kb)
            assert cache.current_bytes <= 4096
        assert len(cache) == 4
        assert cache.evictions == 6

    def test_lru_eviction_order(self):
        kb = np.zeros(128, dtype=np.float64)
        cache = ContentCache(4096)
        for i in range(4):
            cache.put(f"k{i}", kb)
        assert cache.get("k0") is not None  # refresh k0: k1 is now LRU
        cache.put("k4", kb)
        assert cache.keys() == ["k2", "k3", "k0", "k4"]
        assert cache.get("k1") is None

    def test_oversized_value_rejected(self):
        cache = ContentCache(100)
        assert not cache.put("big", np.zeros(1000))
        assert len(cache) == 0
        assert cache.oversized == 1

    def test_hit_miss_counters(self):
        cache = ContentCache(1 << 20)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_estimate_nbytes_counts_buffers(self, uniform_2d):
        bvh = build_tree(uniform_2d)
        size = estimate_nbytes(bvh)
        assert size >= bvh.points.nbytes + bvh.lo.nbytes + bvh.hi.nbytes
        assert estimate_nbytes({"edges": [[0, 1]], "w": 1.0}) > 0


class TestEngine:
    def test_determinism_vs_direct_call(self, engine, uniform_3d):
        direct = emst(uniform_3d)
        job_id = engine.submit(JobSpec(points=uniform_3d))
        result = engine.result(job_id, timeout=60)
        assert result.status is JobStatus.DONE
        served = result.emst()
        assert np.array_equal(served.edges, direct.edges)
        assert np.array_equal(served.weights, direct.weights)
        assert served.edges.tobytes() == direct.edges.tobytes()
        assert served.weights.tobytes() == direct.weights.tobytes()

    def test_dataset_repeat_skips_resolution(self, engine):
        first = engine.result(
            engine.submit(JobSpec(dataset="Uniform100M2:400")), timeout=60)
        second = engine.result(
            engine.submit(JobSpec(dataset="Uniform100M2:400")), timeout=60)
        assert "resolve" in first.timings
        assert second.cache["result_hit"]
        # The memoized fingerprint answers the repeat without regenerating
        # or rehashing the dataset.
        assert "resolve" not in second.timings
        assert second.payload == first.payload

    def test_result_cache_hit_on_repeat(self, engine, uniform_2d):
        first = engine.result(engine.submit(JobSpec(points=uniform_2d)),
                              timeout=60)
        second = engine.result(engine.submit(JobSpec(points=uniform_2d)),
                               timeout=60)
        assert first.cache == {
            "result_hit": False, "tree_hit": False, "core_hit": False,
            "coalesced": False,
            "result_disk_hit": False, "tree_disk_hit": False,
            "core_disk_hit": False}
        assert second.cache["result_hit"]
        assert np.array_equal(second.emst().edges, first.emst().edges)

    def test_tree_reused_across_algorithms(self, engine, uniform_2d):
        engine.result(engine.submit(JobSpec(points=uniform_2d)), timeout=60)
        mrd = engine.result(
            engine.submit(JobSpec(points=uniform_2d, algorithm="mrd_emst",
                                  k_pts=4)), timeout=60)
        assert not mrd.cache["result_hit"]
        assert mrd.cache["tree_hit"]
        assert "tree_build" not in mrd.timings
        direct = mutual_reachability_emst(uniform_2d, 4)
        assert np.array_equal(mrd.emst().edges, direct.edges)

    def test_failed_job_reports_error(self, engine):
        # Passes submit-time validation but fails inside the worker
        # (clustering needs at least 2 points).
        job_id = engine.submit(JobSpec(points=np.zeros((1, 2)),
                                       algorithm="hdbscan"))
        result = engine.result(job_id, timeout=60)
        assert result.status is JobStatus.FAILED
        assert result.error
        assert engine.status(job_id) is JobStatus.FAILED
        # Absorbed failures still reach the scheduler's failure counter.
        assert engine.stats()["scheduler"]["jobs_failed"] == 1

    def test_bad_dataset_spec_rejected_at_submit(self, engine):
        for spec in ("NoSuchDataset:100", "Uniform100M2:many",
                     "Uniform100M2:0"):
            with pytest.raises(InvalidInputError):
                engine.submit(JobSpec(dataset=spec))

    def test_unknown_job_id(self, engine):
        with pytest.raises(InvalidInputError):
            engine.result("job-999999")

    def test_invalid_spec_raises_at_submit(self, engine):
        with pytest.raises(InvalidInputError):
            engine.submit(JobSpec())

    def test_stats_shape(self, engine, uniform_2d):
        engine.result(engine.submit(JobSpec(points=uniform_2d)), timeout=60)
        stats = engine.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["scheduler"]["jobs_completed"] == 1
        assert stats["tree_cache"]["entries"] == 1
        assert stats["result_cache"]["entries"] == 1
        assert 0.0 <= stats["tree_cache"]["hit_rate"] <= 1.0

    def test_retention_byte_bounded(self, rng):
        with Engine(max_workers=1, max_retained_bytes=1) as eng:
            ids = []
            for _ in range(3):  # one at a time: the newest is never evicted
                job_id = eng.submit(JobSpec(points=rng.random((50, 2))))
                assert eng.result(job_id, timeout=60).status is JobStatus.DONE
                ids.append(job_id)
            # Over the byte budget everything but the newest is evicted.
            with pytest.raises(InvalidInputError):
                eng.status(ids[0])
            assert eng.status(ids[-1]) is JobStatus.DONE

    def test_finished_job_retention_bounded(self, rng):
        with Engine(max_workers=1, max_retained_jobs=3) as eng:
            ids = [eng.submit(JobSpec(points=rng.random((40 + i, 2))))
                   for i in range(6)]
            for job_id in ids:
                eng.result(job_id, timeout=60)
            # The oldest finished jobs are forgotten; the newest remain.
            with pytest.raises(InvalidInputError):
                eng.status(ids[0])
            assert eng.status(ids[-1]) is JobStatus.DONE
            assert eng.result(ids[-1]).status is JobStatus.DONE

    def test_concurrent_submissions(self, rng):
        """Stress: many threads race submissions through one engine."""
        point_sets = [rng.random((120 + 10 * i, 2)) for i in range(8)]
        expected = [emst(p).edges for p in point_sets]
        with Engine(max_workers=4, max_batch=4, batch_window=0.001) as eng:
            ids = [None] * 24
            errors = []

            def submitter(slot):
                try:
                    ids[slot] = eng.submit(
                        JobSpec(points=point_sets[slot % 8],
                                priority=slot % 3))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=submitter, args=(i,))
                       for i in range(24)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for slot, job_id in enumerate(ids):
                result = eng.result(job_id, timeout=120)
                assert result.status is JobStatus.DONE, result.error
                assert np.array_equal(result.emst().edges,
                                      expected[slot % 8])
            stats = eng.stats()
            assert stats["jobs"]["done"] == 24
            # 8 unique inputs for 24 jobs: repeats hit the result cache
            # except when concurrent duplicates race past each other.
            assert stats["result_cache"]["hits"] >= 1
            assert stats["scheduler"]["jobs_failed"] == 0


class TestExecutionBackends:
    """The process backend must be indistinguishable from the thread one
    (modulo wall-clock), and its moving parts — the pure executor, the
    tree-state round trip — must hold on their own."""

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Engine(backend="greenlet")
        with pytest.raises(ValueError, match="backend"):
            BatchScheduler(lambda t: None, backend="fiber")

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("emst", {}),
        ("mrd_emst", {"k_pts": 4}),
        ("hdbscan", {"min_cluster_size": 6, "k_pts": 4}),
    ])
    def test_backends_payloads_byte_identical(self, uniform_3d,
                                              algorithm, kwargs):
        produced = {}
        for backend in BACKENDS:
            with Engine(max_workers=2, batch_window=0.001,
                        backend=backend) as eng:
                result = eng.result(
                    eng.submit(JobSpec(points=uniform_3d,
                                       algorithm=algorithm, **kwargs)),
                    timeout=120)
                assert result.status is JobStatus.DONE, result.error
                produced[backend] = canonical_payload_bytes(result.payload)
        assert produced["thread"] == produced["process"]

    def test_process_backend_matches_direct_call(self, uniform_2d):
        direct = emst(uniform_2d)
        with Engine(max_workers=2, backend="process",
                    batch_window=0.001) as eng:
            result = eng.result(eng.submit(JobSpec(points=uniform_2d)),
                                timeout=120)
        served = result.emst()
        assert served.edges.tobytes() == direct.edges.tobytes()
        assert served.weights.tobytes() == direct.weights.tobytes()

    def test_process_backend_ships_cached_tree_to_workers(self, uniform_2d):
        """A tree built in one worker process must be reusable by the
        next job, which may land in a different process."""
        with Engine(max_workers=2, backend="process",
                    batch_window=0.001) as eng:
            first = eng.result(eng.submit(JobSpec(points=uniform_2d)),
                               timeout=120)
            mrd = eng.result(
                eng.submit(JobSpec(points=uniform_2d, algorithm="mrd_emst",
                                   k_pts=4)), timeout=120)
            assert not first.cache["tree_hit"]
            assert mrd.cache["tree_hit"]
            assert "tree_build" not in mrd.timings
            direct = mutual_reachability_emst(uniform_2d, 4)
            assert np.array_equal(mrd.emst().edges, direct.edges)

    def test_engine_survives_a_crashed_worker_process(self, uniform_2d):
        """A dead pool worker (OOM kill, segfault) must not poison the
        engine: the broken pool is replaced and later jobs compute."""
        import os

        with Engine(max_workers=1, backend="process",
                    batch_window=0.001) as eng:
            pool = eng.scheduler.compute_pool
            # Hard-kill the worker mid-task: the pool is now broken.
            with pytest.raises(Exception):
                pool.submit(os._exit, 1).result(timeout=60)
            result = eng.result(eng.submit(JobSpec(points=uniform_2d)),
                                timeout=120)
            assert result.status is JobStatus.DONE, result.error
            assert eng.scheduler.compute_pool is not pool
            served = result.emst()
            assert np.array_equal(served.edges, emst(uniform_2d).edges)

    def test_execute_spec_is_pure_and_picklable(self, uniform_3d):
        """The extracted worker function computes the same answer as the
        library and survives pickling (the process-pool contract)."""
        assert pickle.loads(pickle.dumps(execute_spec)) is execute_spec
        spec = JobSpec(points=uniform_3d)
        spec.validate()
        outcome = execute_spec(make_exec_spec(spec, points=uniform_3d))
        direct = emst(uniform_3d)
        assert outcome["payload"]["edges"] == direct.edges.tolist()
        assert outcome["n_points"] == 200 and outcome["dimension"] == 3
        assert outcome["features"] == 600
        assert outcome["tree_state"] is not None
        assert "tree_build" in outcome["phases"]
        assert outcome["payload_nbytes"] > 0

    def test_execute_spec_reuses_injected_tree_state(self, uniform_2d):
        spec = JobSpec(points=uniform_2d)
        spec.validate()
        state = bvh_to_state(build_tree(uniform_2d))
        outcome = execute_spec(
            make_exec_spec(spec, points=uniform_2d, tree_state=state))
        assert outcome["tree_state"] is None  # nothing new to cache
        assert "tree_build" not in outcome["phases"]
        assert outcome["payload"]["edges"] == emst(uniform_2d).edges.tolist()

    def test_bvh_state_round_trip(self, uniform_3d):
        tree = build_tree(uniform_3d)
        back = bvh_from_state(bvh_to_state(tree))
        assert np.array_equal(back.points, tree.points)
        assert np.array_equal(back.left, tree.left)
        assert np.array_equal(back.lo, tree.lo)
        assert len(back.schedule) == len(tree.schedule)
        # The rebuilt tree drives the solver to the same answer.
        assert np.array_equal(
            emst(uniform_3d, bvh=back).edges, emst(uniform_3d).edges)

    def test_canonical_payload_bytes_ignores_timings_only(self):
        a = {"edges": [[0, 1]], "phases": {"mst": 0.5},
             "emst": {"n_points": 2, "phases": {"tree": 0.1}}}
        b = {"edges": [[0, 1]], "phases": {"mst": 0.9},
             "emst": {"n_points": 2, "phases": {"tree": 0.7}}}
        c = {"edges": [[0, 2]], "phases": {"mst": 0.5},
             "emst": {"n_points": 2, "phases": {"tree": 0.1}}}
        assert canonical_payload_bytes(a) == canonical_payload_bytes(b)
        assert canonical_payload_bytes(a) != canonical_payload_bytes(c)


class TestBatchScheduler:
    def test_batches_and_throughput_accounting(self):
        release = threading.Event()

        def runner(ticket):
            release.wait(timeout=10)
            ticket.features = 100
            return ticket.job_id

        sched = BatchScheduler(runner, max_workers=1, max_batch=4,
                               batch_window=0.05)
        try:
            tickets = [sched.submit(f"j{i}", None) for i in range(8)]
            release.set()
            results = [t.future.result(timeout=30) for t in tickets]
            assert results == [f"j{i}" for i in range(8)]
            stats = sched.stats()
            assert stats["jobs_completed"] == 8
            assert stats["features_done"] == 800
            assert stats["batches_dispatched"] <= 8
            assert stats["largest_batch"] >= 1
            assert stats["mfeatures_per_sec"] >= 0.0
            assert stats["jobs_per_sec"] > 0.0
        finally:
            sched.shutdown()

    def test_priority_order_within_batch(self):
        """Jobs queued in the same window dispatch higher-priority first."""
        order = []
        started = threading.Event()
        gate = threading.Event()

        def runner(ticket):
            if ticket.job_id == "blocker":
                started.set()
                gate.wait(timeout=10)
            else:
                order.append(ticket.job_id)

        sched = BatchScheduler(runner, max_workers=1, max_batch=2,
                               batch_window=0.5)
        try:
            blocker = sched.submit("blocker", None)
            assert started.wait(timeout=10)
            # The worker is busy: these two land in one collection window
            # and must leave it in priority order despite FIFO submission.
            low = sched.submit("low", None, priority=0)
            high = sched.submit("high", None, priority=5)
            gate.set()
            for t in (blocker, low, high):
                t.future.result(timeout=30)
            assert order == ["high", "low"]
            assert low.batch_size == 2
        finally:
            sched.shutdown()

    def test_fifo_within_equal_priority(self):
        """Equal-priority jobs leave the queue in submission order."""
        order = []
        started = threading.Event()
        gate = threading.Event()

        def runner(ticket):
            if ticket.job_id == "blocker":
                started.set()
                gate.wait(timeout=10)
            else:
                order.append(ticket.job_id)

        sched = BatchScheduler(runner, max_workers=1, max_batch=8,
                               batch_window=0.5)
        try:
            blocker = sched.submit("blocker", None)
            assert started.wait(timeout=10)
            # All queued behind the busy worker with the same priority:
            # dispatch must preserve submission order exactly.
            tickets = [sched.submit(f"j{i}", None, priority=1)
                       for i in range(5)]
            gate.set()
            for t in [blocker] + tickets:
                t.future.result(timeout=30)
            assert order == [f"j{i}" for i in range(5)]
        finally:
            sched.shutdown()

    def test_priority_beats_fifo_across_batch(self):
        """Mixed priorities: higher first, FIFO only as the tiebreak."""
        order = []
        started = threading.Event()
        gate = threading.Event()

        def runner(ticket):
            if ticket.job_id == "blocker":
                started.set()
                gate.wait(timeout=10)
            else:
                order.append(ticket.job_id)

        sched = BatchScheduler(runner, max_workers=1, max_batch=8,
                               batch_window=0.5)
        try:
            blocker = sched.submit("blocker", None)
            assert started.wait(timeout=10)
            submitted = [("a0", 0), ("b2", 2), ("c1", 1), ("d2", 2),
                         ("e0", 0)]
            tickets = [sched.submit(job_id, None, priority=p)
                       for job_id, p in submitted]
            gate.set()
            for t in [blocker] + tickets:
                t.future.result(timeout=30)
            assert order == ["b2", "d2", "c1", "a0", "e0"]
        finally:
            sched.shutdown()

    def test_batch_window_deadline_flushes_partial_batch(self):
        """A lone job must not wait for ``max_batch`` peers: the window
        deadline closes the batch and releases it."""
        window = 0.25
        sched = BatchScheduler(lambda ticket: ticket.job_id,
                               max_workers=1, max_batch=64,
                               batch_window=window)
        try:
            submitted_at = time.perf_counter()
            ticket = sched.submit("lone", None)
            assert ticket.future.result(timeout=30) == "lone"
            elapsed = time.perf_counter() - submitted_at
            # The batch was held open for (roughly) the full window waiting
            # for more jobs, then flushed with just the one.
            assert elapsed >= 0.8 * window
            assert ticket.batch_size == 1
            stats = sched.stats()
            assert stats["batches_dispatched"] == 1
            assert stats["largest_batch"] == 1
        finally:
            sched.shutdown()

    def test_zero_window_dispatches_immediately(self):
        sched = BatchScheduler(lambda ticket: ticket.job_id,
                               max_workers=1, max_batch=64,
                               batch_window=0.0)
        try:
            submitted_at = time.perf_counter()
            ticket = sched.submit("eager", None)
            assert ticket.future.result(timeout=30) == "eager"
            assert time.perf_counter() - submitted_at < 5.0
            assert ticket.batch_size == 1
        finally:
            sched.shutdown()

    def test_shutdown_without_wait_fails_queued_futures(self):
        gate = threading.Event()

        def runner(ticket):
            gate.wait(timeout=10)
            return "ok"

        sched = BatchScheduler(runner, max_workers=1, max_batch=1,
                               batch_window=0.5)
        try:
            tickets = [sched.submit(f"j{i}", None) for i in range(4)]
            sched.shutdown(wait=False)
            gate.set()
            # Every future resolves: ran jobs return, stranded jobs raise.
            outcomes = []
            for t in tickets:
                try:
                    outcomes.append(t.future.result(timeout=30))
                except RuntimeError as exc:
                    outcomes.append(str(exc))
            assert len(outcomes) == 4
        finally:
            sched.shutdown()

    def test_runner_exception_fails_only_that_job(self):
        def runner(ticket):
            if ticket.job_id == "bad":
                raise RuntimeError("boom")
            return "ok"

        sched = BatchScheduler(runner, max_workers=1, max_batch=2,
                               batch_window=0.0)
        try:
            bad = sched.submit("bad", None)
            good = sched.submit("good", None)
            with pytest.raises(RuntimeError):
                bad.future.result(timeout=30)
            assert good.future.result(timeout=30) == "ok"
            assert sched.stats()["jobs_failed"] == 1
        finally:
            sched.shutdown()


class TestRequestCoalescing:
    """Identical in-flight fingerprints share one upstream computation."""

    def _gated_engine(self):
        engine = Engine(max_workers=2, batch_window=0.0)
        gate = threading.Event()
        dispatches = []
        original = engine._dispatch

        def slow_dispatch(exec_spec):
            dispatches.append(1)
            assert gate.wait(timeout=30)
            return original(exec_spec)

        engine._dispatch = slow_dispatch
        return engine, gate, dispatches

    def test_concurrent_identical_jobs_compute_once(self, uniform_2d):
        engine, gate, dispatches = self._gated_engine()
        with engine:
            leader = engine.submit(JobSpec(points=uniform_2d))
            follower = engine.submit(JobSpec(points=uniform_2d))
            time.sleep(0.2)  # let the follower reach the rendezvous
            gate.set()
            first = engine.result(leader, timeout=60)
            second = engine.result(follower, timeout=60)
            assert first.status is JobStatus.DONE, first.error
            assert second.status is JobStatus.DONE, second.error
            # One upstream execution; exactly one of the two led it and
            # the other rode it (which worker wins the in-flight
            # rendezvous is a scheduling race, not part of the contract).
            assert len(dispatches) == 1
            flags = sorted([first.cache["coalesced"],
                            second.cache["coalesced"]])
            assert flags == [False, True]
            rider = first if first.cache["coalesced"] else second
            assert not rider.cache["result_hit"]
            assert canonical_payload_bytes(second.payload) == \
                canonical_payload_bytes(first.payload)
            assert engine.stats()["coalesced_hits"] == 1

    def test_follower_of_failed_leader_computes_itself(self, uniform_2d):
        engine = Engine(max_workers=2, batch_window=0.0)
        gate = threading.Event()
        original = engine._dispatch
        state = {"calls": 0}

        def failing_first(exec_spec):
            state["calls"] += 1
            first_call = state["calls"] == 1
            assert gate.wait(timeout=30)
            if first_call:
                raise RuntimeError("leader died")
            return original(exec_spec)

        engine._dispatch = failing_first
        with engine:
            leader = engine.submit(JobSpec(points=uniform_2d))
            follower = engine.submit(JobSpec(points=uniform_2d))
            time.sleep(0.2)
            gate.set()
            first = engine.result(leader, timeout=60)
            second = engine.result(follower, timeout=60)
            # Whichever job led the rendezvous died with the first
            # dispatch; the other must not ride the failed leader — it
            # falls through, computes itself and succeeds.
            statuses = sorted(r.status.value for r in (first, second))
            assert statuses == ["done", "failed"], \
                [(r.status.value, r.error) for r in (first, second)]
            survivor = first if first.status is JobStatus.DONE else second
            assert not survivor.cache["coalesced"]
            assert state["calls"] == 2
            assert engine.stats()["coalesced_hits"] == 0

    def test_sequential_repeats_do_not_coalesce(self, uniform_2d):
        with Engine(max_workers=1, batch_window=0.0) as engine:
            first = engine.result(engine.submit(JobSpec(points=uniform_2d)),
                                  timeout=60)
            second = engine.result(engine.submit(JobSpec(points=uniform_2d)),
                                   timeout=60)
            assert first.status is JobStatus.DONE
            # The repeat is a result-cache hit, not a coalesced wait.
            assert second.cache["result_hit"]
            assert not second.cache["coalesced"]
            assert engine.stats()["coalesced_hits"] == 0
