#!/usr/bin/env python
"""Embed the batch-serving engine: submit jobs, reuse caches, read stats.

Run:  python examples/service_quickstart.py [n_points]

The same engine that backs ``python -m repro serve`` is directly
importable.  This script submits an EMST job, an exact repeat (answered by
the result cache), and an HDBSCAN* job over the same points (which reuses
the cached BVH and skips tree construction), then prints the service
statistics a ``GET /v1/stats`` would return.
"""

import sys

from repro.data import generate
from repro.service import Engine, JobSpec

n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
points = generate("VisualVar10M2D", n, seed=7)

with Engine(max_workers=2) as engine:
    cold_id = engine.submit(JobSpec(points=points, algorithm="emst"))
    cold = engine.result(cold_id)
    tree = cold.emst()
    print(f"{cold_id}: EMST of {tree.n_points} points, "
          f"weight {tree.total_weight:.4f}, "
          f"run {cold.timings['run'] * 1e3:.1f}ms "
          f"(cache: {cold.cache})")

    repeat = engine.result(engine.submit(JobSpec(points=points)))
    print(f"{repeat.job_id}: exact repeat, "
          f"run {repeat.timings['run'] * 1e3:.1f}ms "
          f"(cache: {repeat.cache})")

    cluster_job = engine.submit(
        JobSpec(points=points, algorithm="hdbscan", min_cluster_size=20))
    clustered = engine.result(cluster_job)
    payload = clustered.hdbscan()
    print(f"{cluster_job}: HDBSCAN* found {payload.n_clusters} clusters "
          f"({payload.noise_fraction:.1%} noise) "
          f"(cache: {clustered.cache})")

    stats = engine.stats()
    print(f"\nservice stats after {stats['jobs']['total']} jobs:")
    for tier in ("tree_cache", "result_cache"):
        c = stats[tier]
        print(f"  {c['name']:6s} cache: {c['entries']} entries, "
              f"{c['current_bytes'] / 1e6:.2f} MB, "
              f"hit rate {c['hit_rate']:.0%}")
    sched = stats["scheduler"]
    print(f"  scheduler   : {sched['jobs_completed']} jobs in "
          f"{sched['batches_dispatched']} batches, "
          f"{sched['mfeatures_per_sec']:.2f} MFeatures/s busy throughput")
