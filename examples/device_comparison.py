#!/usr/bin/env python
"""Performance portability: one run, priced on every simulated device.

The instrumented kernels record device-independent work counters
(distance evaluations, BVH node visits, warp-divergence traces, bytes
moved).  A single physical execution can therefore be *repriced* on each
simulated device — the Kokkos promise of the paper, reproduced as a cost
model.  This regenerates a miniature of Figure 1 for any dataset.

Run:  python examples/device_comparison.py [dataset] [n_points]
"""

import sys

from repro.bench.harness import run_arborx, simulated_rate, simulated_seconds
from repro.data import DATASETS, generate
from repro.kokkos.costmodel import weighted_ops
from repro.kokkos.devices import device_registry

dataset = sys.argv[1] if len(sys.argv) > 1 else "Hacc37M"
n = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
if dataset not in DATASETS:
    raise SystemExit(f"unknown dataset {dataset!r}; choose from "
                     f"{sorted(DATASETS)}")

print(f"running single-tree EMST on {dataset} (n={n})...")
record = run_arborx(generate(dataset, n, seed=0), dataset)

counters = record.total_counters
print(f"\nmeasured work: {weighted_ops(counters):.3g} weighted ops, "
      f"{counters.distance_evals} distance evals, "
      f"divergence factor {counters.divergence_factor:.2f}")
print(f"wall clock (NumPy substrate): {record.wall_seconds:.2f}s\n")

print(f"{'device':30s} {'simulated':>12s} {'MFeatures/s':>12s}")
for key, device in device_registry().items():
    seconds = simulated_seconds(record, device)
    rate = simulated_rate(record, device)
    print(f"{device.name:30s} {seconds:11.4f}s {rate:12.1f}")

print("\nper-phase on the A100:")
a100 = device_registry()["a100"]
for phase in record.phase_counters:
    seconds = simulated_seconds(record, a100, phases=[phase])
    print(f"  T_{phase:6s} {seconds * 1e3:8.3f} ms")
