#!/usr/bin/env python
"""HDBSCAN* clustering of taxi-trajectory GPS points (Section 4.5 use case).

The paper demonstrates that its single-tree EMST supports the
mutual-reachability distance of HDBSCAN*.  This example runs the full
clustering pipeline — core distances, m.r.d. EMST, single-linkage
dendrogram, condensed tree, stability extraction — on PortoTaxi-like
trajectory data, and shows the effect of the k_pts parameter the paper
sweeps in Figure 9.

Run:  python examples/hdbscan_taxi.py [n_points]
"""

import sys

import numpy as np

from repro import hdbscan
from repro.data import portotaxi

n = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
points = portotaxi(n, seed=3)
print(f"clustering {n} taxi GPS points...")

for k_pts in (2, 5, 10):
    result = hdbscan(points, min_cluster_size=25, k_pts=k_pts)
    sizes = np.bincount(result.labels[result.labels >= 0]) \
        if result.n_clusters else np.array([], dtype=int)
    top = ", ".join(str(s) for s in np.sort(sizes)[::-1][:5])
    print(f"\nk_pts={k_pts:2d}: {result.n_clusters} clusters, "
          f"{result.noise_fraction:.1%} noise")
    print(f"  largest clusters: {top}")
    print("  phases: " + ", ".join(
        f"{name}={seconds * 1e3:.1f}ms"
        for name, seconds in result.phases.items()))

# Larger k_pts smooths density estimates: typically fewer, larger
# clusters and more points absorbed or rejected as noise.  The m.r.d.
# MST itself is reusable for any min_cluster_size — only the condensed
# tree depends on it.
result = hdbscan(points, min_cluster_size=25, k_pts=5)
probs = result.probabilities[result.labels >= 0]
if probs.size:
    print(f"\nmembership probabilities (clustered points): "
          f"median {np.median(probs):.2f}, min {probs.min():.2f}")
