#!/usr/bin/env python
"""Quickstart: compute a Euclidean minimum spanning tree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import emst

# A small 2D point set with visible structure: two clusters and a bridge.
rng = np.random.default_rng(42)
cluster_a = rng.normal((0.0, 0.0), 0.1, size=(50, 2))
cluster_b = rng.normal((5.0, 0.0), 0.1, size=(50, 2))
bridge = np.array([[2.5, 0.0]])
points = np.concatenate([cluster_a, cluster_b, bridge])

result = emst(points)

print(f"points          : {result.n_points} ({result.dimension}D)")
print(f"edges           : {len(result.edges)}")
print(f"total weight    : {result.total_weight:.4f}")
print(f"Boruvka rounds  : {result.n_iterations}")
print("phase times     : " + ", ".join(
    f"{name}={seconds * 1e3:.2f}ms" for name, seconds in result.phases.items()))

# The longest MST edges are the cluster bridges — the basis of
# MST-based clustering (cut the k-1 longest edges to get k clusters).
longest = np.argsort(result.weights)[-2:]
print("\ntwo longest edges (the inter-cluster bridges):")
for e in longest[::-1]:
    u, v = result.edges[e]
    print(f"  ({u:3d}, {v:3d})  length {result.weights[e]:.3f}")

# Work counters collected by the instrumented kernels:
counters = result.total_counters
print(f"\ndistance evaluations: {counters.distance_evals} "
      f"({counters.distance_evals / result.n_points:.1f} per point — "
      "compare with n^2/2 = " f"{result.n_points**2 // 2} for brute force)")
