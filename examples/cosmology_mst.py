#!/usr/bin/env python
"""Cosmology: MST statistics of a simulated HACC-like particle snapshot.

The paper's motivating application (Section 1) is analysing cosmological
simulation data; the MST is an established cosmological statistic beyond
two-point functions [Naidoo et al. 2020].  This example computes the EMST
of a halo+filament particle distribution and contrasts its edge-length
statistics with an unclustered (uniform) distribution of equal size —
the clustering signal the MST exposes.

Run:  python examples/cosmology_mst.py [n_points]
"""

import sys

import numpy as np

from repro import emst
from repro.data import hacc, uniform

n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

print(f"generating {n} cosmology-like and {n} uniform 3D points...")
cosmo_points = hacc(n, seed=7)
uniform_points = uniform(n, dim=3, seed=7) + 0.5  # same unit cube

results = {}
for name, pts in (("cosmology", cosmo_points), ("uniform", uniform_points)):
    result = emst(pts)
    results[name] = result
    w = result.weights
    print(f"\n{name}: total weight {result.total_weight:.2f}, "
          f"{result.n_iterations} Boruvka rounds, "
          f"{result.wall_seconds:.2f}s wall")
    qs = np.percentile(w, [5, 25, 50, 75, 95, 99.9])
    print("  edge length percentiles (5/25/50/75/95/99.9):")
    print("   " + "  ".join(f"{q:.2e}" for q in qs))

# The clustering signal: in a clustered universe the MST has many very
# short edges (inside halos) and a heavy tail of long filament/void
# edges; the uniform field's edge lengths concentrate near the mean
# inter-particle spacing.
cosmo_w = results["cosmology"].weights
unif_w = results["uniform"].weights
ratio_spread = (np.percentile(cosmo_w, 99) / np.percentile(cosmo_w, 1)) / \
               (np.percentile(unif_w, 99) / np.percentile(unif_w, 1))
print(f"\nedge-length dynamic range, cosmology vs uniform: "
      f"{ratio_spread:.1f}x wider")
assert ratio_spread > 3.0, "clustered data should have far wider MST edges"

# Halo finding by MST edge cutting (friends-of-friends equivalent):
# cutting all edges longer than a linking length leaves halo fragments.
linking_length = np.percentile(cosmo_w, 90)
kept = cosmo_w <= linking_length
print(f"cutting edges > {linking_length:.2e} (90th pct) leaves "
      f"{np.count_nonzero(~kept) + 1} connected fragments "
      "(halo candidates + field points)")
