"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` path; keeping
this file (and omitting ``[build-system]`` from ``pyproject.toml``) enables
that. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
