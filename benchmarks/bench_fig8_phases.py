"""Figure 8 — phase breakdowns and per-phase speed-ups (Section 4.4).

Shape assertions:
(a) MemoGFK: the WSPD phase dominates the sequential runtime on large
    datasets, and every phase speeds up under the multithreaded model;
(b) ArborX: both phases (tree construction, Borůvka MST) achieve
    triple-digit GPU speed-ups on saturating datasets (paper: up to
    ~360x/~420x), but not on RoadNetwork3D (too small).
"""

from repro.bench.figures import fig8


def bench_fig8_phases(run_once):
    rows, table = run_once(lambda: fig8.run())
    print("\n" + table)

    memogfk = [r for r in rows if r["panel"] == "a:MemoGFK"]
    arborx = [r for r in rows if r["panel"] == "b:ArborX"]

    for r in memogfk:
        assert r["speedup"] is None or r["speedup"] > 1.0, r

    for name in {r["dataset"] for r in arborx}:
        phases = {r["phase"]: r for r in arborx if r["dataset"] == name}
        mst = phases["T_mst"]
        tree = phases["T_tree"]
        if name == "RoadNetwork3D":
            assert mst["speedup"] < 100, mst
        else:
            assert mst["speedup"] > 100, (name, mst["speedup"])
            assert tree["speedup"] > 50, (name, tree["speedup"])
        # The Borůvka phase dominates tree construction sequentially.
        assert mst["seq_seconds"] > tree["seq_seconds"], name
