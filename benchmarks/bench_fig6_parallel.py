"""Figure 6 — parallel comparison across the twelve datasets.

Shape assertions from the paper's Section 4.2:
* ArborX on the A100 beats multithreaded MemoGFK by 4-24x on every
  dataset large enough to saturate the GPU;
* the MI250X GCD is qualitatively similar to the A100 at a fraction of
  its rate (paper: best/worst datasets coincide);
* best dataset is Hacc37M, worst are GeoLife24M3D / RoadNetwork3D (the
  latter because the dataset is too small to saturate a GPU);
* ArborX multithreaded lands within 0.5-2x of MemoGFK multithreaded on
  most datasets.
"""

from repro.bench.figures import fig6

SMALL = {"RoadNetwork3D", "NgsimLocation3"}  # too small to saturate


def bench_fig6_parallel(run_once):
    rows, table = run_once(lambda: fig6.run())
    print("\n" + table)

    for r in rows:
        name = r["dataset"]
        if name in SMALL or name == "GeoLife24M3D":
            continue
        speedup = r["ArborX_A100"] / r["MemoGFK_MT"]
        assert 2.0 < speedup < 40.0, (name, speedup)
        assert r["ArborX_MI250X"] < r["ArborX_A100"], name
        assert r["ArborX_MI250X"] > 0.4 * r["ArborX_A100"], name

    a100 = {r["dataset"]: r["ArborX_A100"] for r in rows}
    assert max(a100, key=a100.get) == "Hacc37M"
    worst = min(a100, key=a100.get)
    assert worst in ("GeoLife24M3D", "RoadNetwork3D"), worst
