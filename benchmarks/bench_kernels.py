"""Traversal-kernel benchmark — wavefront engine vs the reference path.

Measures end-to-end EMST wall-clock (tree build + Borůvka solve) under:

* **old** — the pre-wavefront configuration: single-pop ``reference``
  traversal engine, adjacent-pairs bound scan, no warm frontier,
  one-point leaves;
* **new** — the production defaults: ``wavefront`` engine (plan-seeded,
  multi-pop, distance-carrying stacks), wide bound window, warm frontier;
* a **multi-pop width sweep** and a **leaf-size sweep** around the
  defaults, quantifying each knob's contribution.

Every measured configuration is asserted *byte-identical* in canonical
payload form (:func:`repro.service.jobs.canonical_payload_bytes`) to the
old path — the engines must agree on every edge, weight and tie-break.

Everything is written to ``reports/BENCH_kernels.json`` (plus a rendered
table) so CI can archive the perf trajectory.  Runs standalone
(``python benchmarks/bench_kernels.py``, ``--smoke`` for CI sizes); with
enough cores the full run enforces the kernel-perf gate: the new defaults
must beat the reference path by >= 1.5x on the fixed N=20k uniform-2D
case.
"""

import argparse
import json
import os
import time

from repro.bench.tables import REPORTS_DIR, render_table, save_report
from repro.bvh import traversal_engine
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst
from repro.data import generate
from repro.metrics import speedup
from repro.service.jobs import canonical_payload_bytes, emst_result_to_dict

#: Multi-pop drain-width caps swept around the default.
WIDTH_SWEEP = (1, 4, 16, 64)
#: Leaf blocking factors swept around the default.
LEAF_SWEEP = (1, 2, 4, 8)
#: The pre-wavefront configuration (the "old" path).
OLD_CONFIG = SingleTreeConfig(leaf_size=1, warm_frontier=False,
                              bound_window=1)

#: Kernel-perf gate: minimum speedup of the new defaults over the old
#: path on the fixed N=20k uniform-2D case (full runs on >= 2 cores).
GATE_SPEEDUP = 1.5
GATE_N = 20_000


def _canonical(result) -> bytes:
    return canonical_payload_bytes(emst_result_to_dict(result))


def _time_emst(points, config, engine, *, width=None, reps=2):
    """Best-of-``reps`` wall seconds; returns (seconds, canonical bytes)."""
    import repro.bvh.wavefront as wavefront
    saved_width = wavefront.DEFAULT_WIDTH
    if width is not None:
        wavefront.DEFAULT_WIDTH = width
    try:
        best = float("inf")
        result = None
        with traversal_engine(engine):
            for _ in range(reps):
                started = time.perf_counter()
                result = emst(points, config=config)
                best = min(best, time.perf_counter() - started)
        return best, _canonical(result)
    finally:
        wavefront.DEFAULT_WIDTH = saved_width


def run_ablation(n_points: int, reps: int = 2):
    """Old-vs-new plus width and leaf-size sweeps over 2D and 3D."""
    measurements = {"n_points": n_points, "dimensions": {}}
    rows = []
    for dim, dataset in ((2, "Uniform100M2"), (3, "Uniform100M3")):
        points = generate(dataset, n_points, seed=0)
        old_s, old_bytes = _time_emst(points, OLD_CONFIG, "reference",
                                      reps=reps)
        new_s, new_bytes = _time_emst(points, SingleTreeConfig(),
                                      "wavefront", reps=reps)
        assert new_bytes == old_bytes, \
            f"wavefront result diverged from reference ({dim}D)"
        widths = {}
        for width in WIDTH_SWEEP:
            seconds, got = _time_emst(points, SingleTreeConfig(),
                                      "wavefront", width=width, reps=reps)
            assert got == old_bytes, f"width={width} diverged ({dim}D)"
            widths[str(width)] = seconds
        leaves = {}
        for leaf_size in LEAF_SWEEP:
            seconds, got = _time_emst(
                points, SingleTreeConfig(leaf_size=leaf_size),
                "wavefront", reps=reps)
            assert got == old_bytes, f"leaf_size={leaf_size} diverged ({dim}D)"
            leaves[str(leaf_size)] = seconds
        measurements["dimensions"][str(dim)] = {
            "old_seconds": old_s,
            "new_seconds": new_s,
            "speedup": speedup(old_s, new_s),
            "width_sweep_seconds": widths,
            "leaf_sweep_seconds": leaves,
        }
        rows.append([f"{dim}D old (reference)", old_s * 1e3, 1.0])
        rows.append([f"{dim}D new (wavefront)", new_s * 1e3,
                     speedup(old_s, new_s)])
        for width, seconds in widths.items():
            rows.append([f"{dim}D wavefront width<={width}", seconds * 1e3,
                         speedup(old_s, seconds)])
        for leaf_size, seconds in leaves.items():
            rows.append([f"{dim}D wavefront leaf_size={leaf_size}",
                         seconds * 1e3, speedup(old_s, seconds)])
    table = render_table(
        ["configuration", "emst ms", "speedup vs old"], rows,
        title=f"Traversal kernels — end-to-end EMST, uniform n={n_points}")
    save_report("bench_kernels.txt", table)
    return measurements, table


def run_headline(n_points: int = 50_000):
    """Old-vs-new at the acceptance size (single repetition per cell)."""
    out = {"n_points": n_points, "dimensions": {}}
    for dim, dataset in ((2, "Uniform100M2"), (3, "Uniform100M3")):
        points = generate(dataset, n_points, seed=0)
        old_s, old_bytes = _time_emst(points, OLD_CONFIG, "reference",
                                      reps=1)
        new_s, new_bytes = _time_emst(points, SingleTreeConfig(),
                                      "wavefront", reps=1)
        assert new_bytes == old_bytes, f"headline diverged ({dim}D)"
        out["dimensions"][str(dim)] = {
            "old_seconds": old_s, "new_seconds": new_s,
            "speedup": speedup(old_s, new_s),
        }
    return out


def save_json(ablation, headline):
    payload = {
        "benchmark": "bench_kernels",
        "cpu_count": os.cpu_count(),
        "ablation": ablation,
        "headline": headline,
    }
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_kernels.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check_gate(ablation):
    # The gate mirrors bench_service's guard: perf bars only bind when
    # the host has real cores to measure on.
    cores = os.cpu_count() or 1
    if cores < 2:
        return
    got = ablation["dimensions"]["2"]["speedup"]
    assert got >= GATE_SPEEDUP, (
        f"kernel-perf gate: wavefront defaults {got:.2f}x vs reference "
        f"on n={ablation['n_points']} uniform 2D, need >= {GATE_SPEEDUP}x")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n-points", type=int, default=GATE_N,
                        help="points per EMST in the ablation sweep")
    parser.add_argument("--headline-points", type=int, default=50_000,
                        help="points for the old-vs-new headline run")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and no perf assertions (CI smoke: "
                             "exercises every path incl. the byte-identity "
                             "checks, records the JSON)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_points, args.headline_points = 4000, 8000

    ablation, table = run_ablation(args.n_points,
                                   reps=1 if args.smoke else 2)
    print(table)
    headline = run_headline(args.headline_points)
    path = save_json(ablation, headline)
    print(f"\nmeasurements written to {path}")
    for dim, cell in headline["dimensions"].items():
        print(f"headline {dim}D n={headline['n_points']}: "
              f"{cell['old_seconds']:.2f}s -> {cell['new_seconds']:.2f}s "
              f"({cell['speedup']:.2f}x)")
    if not args.smoke:
        _check_gate(ablation)
        print(f"ok: kernel-perf gate passed "
              f"(>= {GATE_SPEEDUP}x on n={args.n_points} uniform 2D)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
