"""Micro-benchmarks of the core kernels (real wall-clock, pytest-benchmark).

Unlike the figure benches (which report simulated device times), these
measure the NumPy substrate itself: BVH construction, the batched NN
traversal, the k-NN kernel, label reduction, and a full Borůvka round.
Useful for tracking regressions in the vectorized kernels.
"""

import numpy as np
import pytest

from repro.bvh import batched_knn, batched_nearest, build_bvh
from repro.core.bounds import compute_upper_bounds
from repro.core.emst import emst
from repro.core.labels import reduce_labels
from repro.data import generate

N = 20_000


@pytest.fixture(scope="module")
def points():
    return generate("Hacc37M", N, seed=0)


@pytest.fixture(scope="module")
def bvh(points):
    return build_bvh(points)


def bench_bvh_construction(benchmark, points):
    benchmark(lambda: build_bvh(points))


def bench_nearest_neighbors(benchmark, bvh):
    queries = bvh.points
    excl = np.arange(bvh.n)
    benchmark.pedantic(
        lambda: batched_nearest(bvh, queries, exclude_position=excl),
        rounds=3, iterations=1)


def bench_knn_k8(benchmark, bvh):
    benchmark.pedantic(lambda: batched_knn(bvh, bvh.points, 8),
                       rounds=3, iterations=1)


def bench_label_reduction(benchmark, bvh):
    labels = np.arange(bvh.n, dtype=np.int64) % 64
    benchmark(lambda: reduce_labels(bvh, labels))


def bench_upper_bounds(benchmark, bvh):
    labels = np.arange(bvh.n, dtype=np.int64) % 64
    benchmark(lambda: compute_upper_bounds(bvh, labels))


def bench_full_emst(benchmark, points):
    benchmark.pedantic(lambda: emst(points), rounds=2, iterations=1)
