"""Figure 7 — throughput vs number of samples (Section 4.3).

Shape assertions: rates *rise* with n for both implementations (the
paper's empirical evidence of asymptotically linear cost) and the ArborX
curve saturates — the last doubling of n gains much less than the first.
"""

from repro.bench.figures import fig7


def bench_fig7_scaling(run_once):
    rows, table = run_once(lambda: fig7.run())
    print("\n" + table)

    for name in fig7.DATASETS:
        series = [(r["n"], r["ArborX_A100"]) for r in rows
                  if r["dataset"] == name]
        series.sort()
        rates = [rate for _, rate in series]
        # Rising: the largest size must beat the smallest clearly.
        assert rates[-1] > 2.0 * rates[0], (name, rates)
        # Saturating: relative gain of the last step < gain of the first.
        first_gain = rates[1] / rates[0]
        last_gain = rates[-1] / rates[-2]
        assert last_gain < first_gain, (name, rates)
