"""Observability overhead benchmark — instrumented vs ``REPRO_OBS=off``.

Drives the same mixed serving workload (emst / mrd_emst / hdbscan over
the fixed N=20k uniform-2D set, plus exact repeats so the cache tiers
and trace replay paths fire) through two engines that differ only in
observability: one with the metrics registry, histograms and per-job
span building enabled, one with the whole layer disabled.  Modes
alternate within each repetition so thermal/cache drift cancels, and
the best-of-``reps`` walls are compared.

Asserted invariants:

* payloads are **byte-identical** across modes (tracing must never touch
  the canonical result) and the instrumented run actually produced
  traces while the disabled run produced none;
* the instrumented engine offered every job to the tail-sampling trace
  archive (both modes run over a store dir, so blob I/O is symmetric
  and the archive's disk writes are priced into the gate);
* the instrumented engine's always-on sampling profiler (default rate)
  actually collected samples while the disabled engine collected none —
  so the continuous-profiling cost is priced into the same gate, and
  the measured profiler share of wall time lands in the JSON report;
* with >= 2 cores and a full (non ``--smoke``) run, instrumentation
  costs **< 3%** end-to-end wall — the observability acceptance gate.

Everything lands in ``reports/BENCH_obs.json`` for CI to archive, plus
a collapsed-stack profile of the final instrumented run in
``reports/PROFILE_obs.collapsed`` (flamegraph.pl / speedscope input).
Runs standalone (``python benchmarks/bench_obs.py``, ``--smoke`` for CI
sizes without the perf assertion).
"""

import argparse
import json
import os
import tempfile
import time

from repro.bench.tables import REPORTS_DIR, render_table, save_report
from repro.obs import render_collapsed
from repro.service import Engine, JobSpec, canonical_payload_bytes

#: Observability gate: maximum wall-clock overhead of the instrumented
#: engine over the disabled one on the fixed N=20k workload.
GATE_OVERHEAD_PCT = 3.0
GATE_N = 20_000


def _workload(n_points):
    """Mixed specs incl. exact repeats (cache hits + replayed phases)."""
    base = [
        {"dataset": f"Uniform100M2:{n_points}", "algorithm": "emst"},
        {"dataset": f"Uniform100M2:{n_points}", "algorithm": "mrd_emst",
         "k_pts": 4},
        {"dataset": f"Uniform100M2:{n_points}", "algorithm": "hdbscan",
         "k_pts": 4},
    ]
    return base + base  # the second pass rides the warm tiers


def _run_workload(obs, n_points):
    """One cold engine driven through the workload; returns its report.

    Both modes get a fresh store dir so blob I/O is symmetric — the only
    obs-mode extra on disk is the trace archive itself, which is exactly
    the write path the overhead gate must price in.
    """
    bodies = _workload(n_points)
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as store_dir, \
            Engine(max_workers=1, batch_window=0.001, obs=obs,
                   store_dir=store_dir) as engine:
        started = time.perf_counter()
        job_ids = [engine.submit(JobSpec.from_dict(body))
                   for body in bodies]
        results = [engine.result(job_id, timeout=600.0)
                   for job_id in job_ids]
        wall = time.perf_counter() - started
        archive = engine.trace_archive.stats() if engine.trace_archive \
            else None
        prof = engine.profiler.stats() if engine.profiler else None
        collapsed = render_collapsed(engine.profile()) \
            if engine.profiler else None
    for result in results:
        assert result.status.value == "done", result.error
    return {
        "wall_seconds": wall,
        "bytes": [canonical_payload_bytes(r.payload) for r in results],
        "traced": sum(r.trace is not None for r in results),
        "archive_offered": archive["offered"] if archive else 0,
        "profiler_samples": prof["samples_total"] if prof else 0,
        "profiler_sampling_seconds":
            prof["sampling_seconds"] if prof else 0.0,
        "profiler_hz": prof["hz"] if prof else 0.0,
        "collapsed": collapsed,
    }


def run_comparison(n_points, reps):
    """Alternating off/on repetitions; best-of walls and overhead pct.

    Returns ``(comparison, collapsed)``: the measurement dict plus the
    collapsed-stack profile of the last instrumented repetition.
    """
    off_walls, on_walls, profiler_shares = [], [], []
    profiler_samples = 0
    profiler_hz = 0.0
    collapsed = None
    reference = None
    for _ in range(reps):
        off = _run_workload(False, n_points)
        on = _run_workload(True, n_points)
        assert off["traced"] == 0, "REPRO_OBS=off engine produced traces"
        assert on["traced"] == len(_workload(n_points)), \
            "instrumented engine dropped traces"
        assert on["archive_offered"] == len(_workload(n_points)), \
            "instrumented engine skipped the trace-archive offer path"
        assert off["archive_offered"] == 0, \
            "REPRO_OBS=off engine ran the trace archive"
        assert on["profiler_samples"] > 0, \
            "instrumented engine's sampling profiler never fired"
        assert off["profiler_samples"] == 0, \
            "REPRO_OBS=off engine ran the sampling profiler"
        assert on["bytes"] == off["bytes"], \
            "instrumentation changed canonical payload bytes"
        reference = reference or off["bytes"]
        assert off["bytes"] == reference, "run-to-run bytes diverged"
        off_walls.append(off["wall_seconds"])
        on_walls.append(on["wall_seconds"])
        profiler_shares.append(on["profiler_sampling_seconds"]
                               / on["wall_seconds"] * 100.0)
        profiler_samples += on["profiler_samples"]
        profiler_hz = on["profiler_hz"]
        collapsed = on["collapsed"]
    best_off, best_on = min(off_walls), min(on_walls)
    overhead_pct = (best_on - best_off) / best_off * 100.0
    return {
        "n_points": n_points,
        "jobs_per_rep": len(_workload(n_points)),
        "reps": reps,
        "off_wall_seconds": off_walls,
        "on_wall_seconds": on_walls,
        "best_off_seconds": best_off,
        "best_on_seconds": best_on,
        "overhead_pct": overhead_pct,
        "profiler_hz": profiler_hz,
        "profiler_samples": profiler_samples,
        # Worst repetition: the profiler's own stack-walk time as a share
        # of end-to-end wall.  Informational — its cost is already inside
        # overhead_pct, which is what the gate binds on.
        "profiler_share_pct": max(profiler_shares),
        "profiler_shares_pct": profiler_shares,
    }, collapsed


def save_json(comparison):
    payload = {
        "benchmark": "bench_obs",
        "cpu_count": os.cpu_count(),
        "gate_overhead_pct": GATE_OVERHEAD_PCT,
        "comparison": comparison,
    }
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_obs.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check_gate(comparison):
    # Perf bars only bind on hosts with real cores, like the other gates.
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"note: observability gate skipped on a {cores}-core host "
              f"(measured {comparison['overhead_pct']:+.2f}%, "
              f"budget < {GATE_OVERHEAD_PCT}%)")
        return False
    got = comparison["overhead_pct"]
    assert got < GATE_OVERHEAD_PCT, (
        f"observability gate: instrumentation costs {got:.2f}% on the "
        f"n={comparison['n_points']} workload, budget is "
        f"< {GATE_OVERHEAD_PCT}%")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n-points", type=int, default=GATE_N,
                        help="points per job in the serving workload")
    parser.add_argument("--reps", type=int, default=5,
                        help="alternating off/on repetitions (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and no perf assertion (CI smoke: "
                             "still checks byte identity and trace "
                             "presence, records the JSON)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_points, args.reps = 4000, 1

    comparison, collapsed = run_comparison(args.n_points, args.reps)
    table = render_table(
        ["mode", "best wall s", "overhead %"],
        [["REPRO_OBS=off", comparison["best_off_seconds"], 0.0],
         ["instrumented", comparison["best_on_seconds"],
          comparison["overhead_pct"]]],
        title=f"Observability overhead — {comparison['jobs_per_rep']} jobs, "
              f"n={comparison['n_points']}")
    print(table)
    save_report("bench_obs.txt", table)
    path = save_json(comparison)
    if collapsed:
        profile_path = os.path.join(os.path.abspath(REPORTS_DIR),
                                    "PROFILE_obs.collapsed")
        with open(profile_path, "w", encoding="utf-8") as fh:
            fh.write(collapsed)
        print(f"collapsed profile written to {profile_path} "
              f"({len(collapsed.splitlines())} stacks)")
    print(f"\nmeasurements written to {path}")
    print(f"overhead: {comparison['overhead_pct']:+.2f}% "
          f"({comparison['best_off_seconds']:.3f}s -> "
          f"{comparison['best_on_seconds']:.3f}s)")
    print(f"profiler: {comparison['profiler_samples']} samples at "
          f"{comparison['profiler_hz']:g} Hz, worst-rep stack-walk share "
          f"{comparison['profiler_share_pct']:.3f}% of wall")
    if not args.smoke and _check_gate(comparison):
        print(f"ok: observability gate passed "
              f"(< {GATE_OVERHEAD_PCT}% on n={args.n_points})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
