"""Service benchmark — cache speedups and execution-backend scaling.

Two experiments:

**Cache speedup** submits the same dataset workload through the engine
three ways:

* **cold** — empty caches: the job pays tree construction and the full
  Borůvka run;
* **tree-warm** — a different algorithm over the same points: the result
  cache misses but the content-addressed tree cache skips ``T_tree``;
* **result-warm** — an exact repeat: answered from the result cache.

**Backend scaling** runs a CPU-bound batch of *independent* jobs (distinct
dataset seeds, so no cache crosstalk) through a fresh engine per (backend,
worker-count) cell and records the batch wall-clock.  The thread backend
serializes the numpy compute phase on the GIL, so it barely scales with
workers; the process backend runs jobs on real cores.  The headline number
is the 4-worker thread/process wall-clock ratio — the engine's claim to
GIL-free execution.

Everything is written to ``reports/BENCH_service.json`` (plus the usual
rendered table) so CI can archive the perf trajectory.  Runs standalone
(``python benchmarks/bench_service.py``, see ``--help`` for smoke-sized
runs) or under the pytest-benchmark harness like the figure benchmarks.
"""

import argparse
import json
import os
import statistics
import time

from repro.bench.tables import REPORTS_DIR, render_table, save_report
from repro.data import generate
from repro.metrics import speedup
from repro.service import Engine, JobSpec

REPEATS = 5
#: Worker counts swept for the backend scaling curve; the sweep's largest
#: count is the headline thread-vs-process comparison.
WORKER_SWEEP = (1, 2, 4)


def _submit_and_time(engine, spec):
    job_id = engine.submit(spec)
    result = engine.result(job_id, timeout=600)
    assert result.status.value == "done", result.error
    return result, result.timings["run"]


def run(n_points: int = 20000):
    """Execute the cache workload; returns (measurements dict, table)."""
    points = generate("Normal100M3", n_points, seed=0)
    with Engine(max_workers=2, batch_window=0.001) as engine:
        cold_result, cold = _submit_and_time(
            engine, JobSpec(points=points, algorithm="emst"))
        treewarm_result, tree_warm = _submit_and_time(
            engine, JobSpec(points=points, algorithm="mrd_emst", k_pts=4))
        warm_times = []
        for _ in range(REPEATS):
            warm_result, seconds = _submit_and_time(
                engine, JobSpec(points=points, algorithm="emst"))
            assert warm_result.cache["result_hit"]
            warm_times.append(seconds)
        warm = statistics.median(warm_times)

        # Throughput on a stream of small jobs (batching + caching active).
        small_specs = [JobSpec(dataset=f"Uniform100M2:500:{seed % 4}")
                       for seed in range(20)]
        ids = [engine.submit(spec) for spec in small_specs]
        for job_id in ids:
            engine.result(job_id, timeout=600)
        sched = engine.stats()["scheduler"]

    assert not cold_result.cache["tree_hit"]
    assert treewarm_result.cache["tree_hit"]
    measurements = {
        "cold_seconds": cold,
        "tree_warm_seconds": tree_warm,
        "result_warm_seconds": warm,
        "tree_warm_speedup": speedup(cold, tree_warm),
        "result_warm_speedup": speedup(cold, warm),
        "jobs_per_sec": sched["jobs_per_sec"],
        "mean_batch_size": sched["mean_batch_size"],
    }
    rows = [
        ["cold (build + solve)", cold * 1e3, 1.0],
        ["tree cache hit (mrd_emst)", tree_warm * 1e3,
         measurements["tree_warm_speedup"]],
        ["result cache hit (median)", warm * 1e3,
         measurements["result_warm_speedup"]],
    ]
    table = render_table(
        ["workload", "run ms", "speedup vs cold"], rows,
        title=f"Service cache speedup — Normal100M3 n={n_points} "
              f"(stream: {sched['jobs_completed']} jobs, "
              f"{sched['jobs_per_sec']:.1f} jobs/s, "
              f"mean batch {sched['mean_batch_size']:.1f})")
    save_report("bench_service.txt", table)
    return measurements, table


def _batch_wall_seconds(backend, workers, n_points, n_jobs):
    """Wall-clock to drain ``n_jobs`` independent CPU-bound jobs."""
    specs = [JobSpec(dataset=f"Normal100M3:{n_points}:{seed}",
                     algorithm="mrd_emst", k_pts=4)
             for seed in range(n_jobs)]
    with Engine(max_workers=workers, backend=backend, max_batch=n_jobs,
                batch_window=0.001) as engine:
        if backend == "process":
            # Charge process startup (interpreter + numpy import per
            # worker) to warmup jobs, not to the measured batch: a serving
            # engine pays it once per lifetime, not once per batch.  One
            # distinct tiny job per worker (distinct seeds — an exact
            # repeat would be answered by the result cache without ever
            # touching the pool) spins the whole pool up.
            warmups = [engine.submit(
                JobSpec(dataset=f"Uniform100M2:64:{9900 + i}"))
                for i in range(workers)]
            for job_id in warmups:
                engine.result(job_id, timeout=600)
        started = time.perf_counter()
        ids = [engine.submit(spec) for spec in specs]
        for job_id in ids:
            result = engine.result(job_id, timeout=600)
            assert result.status.value == "done", result.error
        return time.perf_counter() - started


def run_backend_scaling(n_points: int = 6000, n_jobs: int = 8,
                        worker_sweep=WORKER_SWEEP):
    """Thread-vs-process wall-clock over a sweep of worker counts."""
    curve = {backend: {} for backend in ("thread", "process")}
    for workers in worker_sweep:
        for backend in curve:
            curve[backend][workers] = _batch_wall_seconds(
                backend, workers, n_points, n_jobs)
    headline = max(worker_sweep)
    ratio = speedup(curve["thread"][headline], curve["process"][headline])
    measurements = {
        "n_points": n_points,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "worker_sweep": list(worker_sweep),
        "thread_wall_seconds": {str(w): curve["thread"][w]
                                for w in worker_sweep},
        "process_wall_seconds": {str(w): curve["process"][w]
                                 for w in worker_sweep},
        "headline_workers": headline,
        "process_vs_thread_speedup": ratio,
    }
    rows = [[w, curve["thread"][w], curve["process"][w],
             speedup(curve["thread"][w], curve["process"][w])]
            for w in worker_sweep]
    table = render_table(
        ["workers", "thread s", "process s", "process speedup"], rows,
        title=f"Backend scaling — {n_jobs} independent mrd_emst jobs, "
              f"n={n_points} (cpu_count={os.cpu_count()})")
    save_report("bench_service_backends.txt", table)
    return measurements, table


def save_json(cache_measurements, backend_measurements):
    """Write the combined measurements to ``reports/BENCH_service.json``."""
    payload = {
        "benchmark": "bench_service",
        "cpu_count": os.cpu_count(),
        "cache": cache_measurements,
        "backends": backend_measurements,
    }
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_service.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check(measurements):
    # Acceptance: a repeated (cache-hit) job is >= 5x faster than cold.
    assert measurements["result_warm_speedup"] >= 5.0, measurements
    # Tree reuse alone must already help (T_tree is a real fraction of cold).
    assert measurements["tree_warm_seconds"] > measurements[
        "result_warm_seconds"]
    assert measurements["jobs_per_sec"] > 0


def _check_backends(measurements):
    # Acceptance: with >= 4 real cores, the process backend beats the
    # thread backend by >= 1.5x on the 4-worker CPU-bound batch.  On
    # fewer cores process overhead can outweigh the limited parallelism,
    # so the ratio is only recorded, not asserted.
    cores = measurements["cpu_count"] or 1
    if cores >= 4:
        assert measurements["process_vs_thread_speedup"] >= 1.5, measurements


def bench_service(run_once):
    measurements, table = run_once(lambda: run())
    print("\n" + table)
    _check(measurements)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--n-points", type=int, default=20000,
                        help="points per job in the cache experiment")
    parser.add_argument("--batch-points", type=int, default=6000,
                        help="points per job in the backend batch")
    parser.add_argument("--batch-jobs", type=int, default=8,
                        help="independent jobs in the backend batch")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and no perf assertions (CI smoke: "
                             "exercises every path, records the JSON)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.n_points, args.batch_points, args.batch_jobs = 2000, 800, 4

    cache_m, cache_table = run(n_points=args.n_points)
    print(cache_table)
    backend_m, backend_table = run_backend_scaling(
        n_points=args.batch_points, n_jobs=args.batch_jobs)
    print("\n" + backend_table)
    path = save_json(cache_m, backend_m)
    print(f"\nmeasurements written to {path}")
    if not args.smoke:
        _check(cache_m)
        _check_backends(backend_m)
        print("ok: result-cache speedup "
              f"{cache_m['result_warm_speedup']:.0f}x (>= 5x required); "
              f"process backend {backend_m['process_vs_thread_speedup']:.2f}x "
              f"vs thread at {backend_m['headline_workers']} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
