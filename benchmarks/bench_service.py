"""Service benchmark — jobs/sec and cache-hit speedup on repeated workloads.

Submits the same dataset workload through the engine three ways:

* **cold** — empty caches: the job pays tree construction and the full
  Borůvka run;
* **tree-warm** — a different algorithm over the same points: the result
  cache misses but the content-addressed tree cache skips ``T_tree``;
* **result-warm** — an exact repeat: answered from the result cache.

Checks the service-layer claim of the PR: a repeated workload completes at
least 5x faster than its cold run, and batch throughput (jobs/sec) on a
many-small-jobs stream exceeds the one-at-a-time rate.

Runs standalone (``python benchmarks/bench_service.py``) or under the
pytest-benchmark harness like the figure benchmarks.
"""

import statistics

from repro.bench.tables import render_table, save_report
from repro.data import generate
from repro.metrics import speedup
from repro.service import Engine, JobSpec

REPEATS = 5


def _submit_and_time(engine, spec):
    job_id = engine.submit(spec)
    result = engine.result(job_id, timeout=600)
    assert result.status.value == "done", result.error
    return result, result.timings["run"]


def run(n_points: int = 20000):
    """Execute the workload; returns (measurements dict, rendered table)."""
    points = generate("Normal100M3", n_points, seed=0)
    with Engine(max_workers=2, batch_window=0.001) as engine:
        cold_result, cold = _submit_and_time(
            engine, JobSpec(points=points, algorithm="emst"))
        treewarm_result, tree_warm = _submit_and_time(
            engine, JobSpec(points=points, algorithm="mrd_emst", k_pts=4))
        warm_times = []
        for _ in range(REPEATS):
            warm_result, seconds = _submit_and_time(
                engine, JobSpec(points=points, algorithm="emst"))
            assert warm_result.cache["result_hit"]
            warm_times.append(seconds)
        warm = statistics.median(warm_times)

        # Throughput on a stream of small jobs (batching + caching active).
        small_specs = [JobSpec(dataset=f"Uniform100M2:500:{seed % 4}")
                       for seed in range(20)]
        ids = [engine.submit(spec) for spec in small_specs]
        for job_id in ids:
            engine.result(job_id, timeout=600)
        sched = engine.stats()["scheduler"]

    assert not cold_result.cache["tree_hit"]
    assert treewarm_result.cache["tree_hit"]
    measurements = {
        "cold_seconds": cold,
        "tree_warm_seconds": tree_warm,
        "result_warm_seconds": warm,
        "tree_warm_speedup": speedup(cold, tree_warm),
        "result_warm_speedup": speedup(cold, warm),
        "jobs_per_sec": sched["jobs_per_sec"],
        "mean_batch_size": sched["mean_batch_size"],
    }
    rows = [
        ["cold (build + solve)", cold * 1e3, 1.0],
        ["tree cache hit (mrd_emst)", tree_warm * 1e3,
         measurements["tree_warm_speedup"]],
        ["result cache hit (median)", warm * 1e3,
         measurements["result_warm_speedup"]],
    ]
    table = render_table(
        ["workload", "run ms", "speedup vs cold"], rows,
        title=f"Service cache speedup — Normal100M3 n={n_points} "
              f"(stream: {sched['jobs_completed']} jobs, "
              f"{sched['jobs_per_sec']:.1f} jobs/s, "
              f"mean batch {sched['mean_batch_size']:.1f})")
    save_report("bench_service.txt", table)
    return measurements, table


def _check(measurements):
    # Acceptance: a repeated (cache-hit) job is >= 5x faster than cold.
    assert measurements["result_warm_speedup"] >= 5.0, measurements
    # Tree reuse alone must already help (T_tree is a real fraction of cold).
    assert measurements["tree_warm_seconds"] > measurements[
        "result_warm_seconds"]
    assert measurements["jobs_per_sec"] > 0


def bench_service(run_once):
    measurements, table = run_once(lambda: run())
    print("\n" + table)
    _check(measurements)


if __name__ == "__main__":
    m, t = run()
    print(t)
    _check(m)
    print("\nok: result-cache speedup "
          f"{m['result_warm_speedup']:.0f}x (>= 5x required)")
