"""Figure 5 — sequential comparison across the twelve datasets.

Shape assertions from the paper's Section 4.1:
* MLPACK is the slowest implementation on every dataset;
* ArborX is competitive with MemoGFK (within ~3x either way) everywhere
  except GeoLife24M3D;
* GeoLife24M3D is ArborX's worst dataset (Z-curve under-resolution);
* rates are roughly dimension-agnostic (2D vs 3D within one order).
"""

from repro.bench.figures import fig5


def bench_fig5_sequential(run_once):
    rows, table = run_once(lambda: fig5.run())
    print("\n" + table)

    by_dataset = {r["dataset"]: r for r in rows}
    for name, row in by_dataset.items():
        assert row["MLPACK"] < row["MemoGFK"], name
        assert row["MLPACK"] < row["ArborX"] or name == "GeoLife24M3D", name

    # GeoLife is ArborX's worst dataset by a clear margin.
    geolife = by_dataset["GeoLife24M3D"]["ArborX"]
    others = [r["ArborX"] for r in rows if r["dataset"] != "GeoLife24M3D"]
    assert geolife < min(others), (geolife, min(others))

    # Dimension-agnostic: ArborX 2D and 3D rates within one order of
    # magnitude of each other (GeoLife excluded as the known pathology).
    normal = [r["ArborX"] for r in rows if r["dataset"] != "GeoLife24M3D"]
    assert max(normal) / min(normal) < 10.0
