"""Figure 9 — mutual-reachability distance, k_pts sweep (Section 4.5).

Shape assertions:
* T_core grows monotonically with k_pts for both implementations;
* the ArborX-over-MemoGFK *core* speed-up does not improve as k_pts grows
  (the paper observes it drops: GPU k-NN diverges with larger k);
* the Borůvka kernel cost (T_mst) stays within ~50% of its k=2 value
  (paper: within 30%).
"""

from repro.bench.figures import fig9


def bench_fig9_mrd(run_once):
    rows, table = run_once(lambda: fig9.run())
    print("\n" + table)

    for name in fig9.DATASETS:
        series = sorted((r for r in rows if r["dataset"] == name),
                        key=lambda r: r["k_pts"])
        cores_a = [r["Tcore_ArborX"] for r in series]
        cores_g = [r["Tcore_MemoGFK"] for r in series]
        assert all(b > a for a, b in zip(cores_a, cores_a[1:])), (name,
                                                                  cores_a)
        assert all(b > a for a, b in zip(cores_g, cores_g[1:])), (name,
                                                                  cores_g)
        speedups = [r["core_speedup"] for r in series]
        assert speedups[-1] <= speedups[0] * 1.15, (name, speedups)
        kernels = [r["Tmst_kernel_ArborX"] for r in series]
        assert max(kernels) <= 1.5 * kernels[0], (name, kernels)
