"""Benchmark-suite fixtures.

Each figure driver is executed exactly once per session
(``benchmark.pedantic(rounds=1)``) because a driver is itself a multi-run
experiment; pytest-benchmark records its wall time while the driver writes
its rendered table to ``reports/`` and to stdout.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""

    def runner(fn):
        holder = {}

        def target():
            holder["result"] = fn()

        benchmark.pedantic(target, rounds=1, iterations=1)
        return holder["result"]

    return runner
