"""Store benchmark — what a warm restart is worth.

Simulates the serve → kill → serve lifecycle over a sweep of problem
sizes.  For each size the same m.r.d. EMST job is timed three ways:

* **cold** — a fresh engine, empty store: pays ``T_tree`` + ``T_core`` +
  the Borůvka run;
* **restart, result-warm** — a *new* engine over the same ``--store-dir``
  repeating the exact job: answered from the disk result tier, no
  recompute;
* **restart, artifact-warm** — a new engine over the same store running a
  *different* job on the same points (``hdbscan`` instead of
  ``mrd_emst``): the result tier misses but the disk BVH and
  core-distance tiers skip ``T_tree`` and ``T_core``.

Each warm measurement uses a freshly constructed :class:`Engine` so the
memory tiers start empty — the disk store is the only thing carrying
state across "restarts", exactly as after a process kill.

Results go to ``reports/BENCH_store.json`` (plus the rendered table).
Runs standalone: ``python benchmarks/bench_store.py`` (``--smoke`` for CI
sizes).
"""

import argparse
import json
import os
import shutil
import tempfile
import time

from repro.bench.tables import REPORTS_DIR, render_table, save_report
from repro.metrics import speedup
from repro.service import Engine, JobSpec

SIZES = (5000, 20000)
K_PTS = 4


def _run_once(store_dir, spec):
    """One job on a freshly started engine over ``store_dir``."""
    with Engine(max_workers=1, batch_window=0.0,
                store_dir=store_dir) as engine:
        started = time.perf_counter()
        result = engine.result(engine.submit(spec), timeout=600)
        wall = time.perf_counter() - started
    assert result.status.value == "done", result.error
    return result, wall


def run(sizes=SIZES):
    """Execute the cold/warm sweep; returns (measurements dict, table)."""
    rows = []
    by_size = {}
    for n_points in sizes:
        store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            mrd = JobSpec(dataset=f"Normal100M3:{n_points}",
                          algorithm="mrd_emst", k_pts=K_PTS)
            cold_result, cold = _run_once(store_dir, mrd)
            assert not cold_result.cache["result_hit"]

            repeat_result, result_warm = _run_once(store_dir, mrd)
            assert repeat_result.cache["result_disk_hit"], \
                repeat_result.cache

            hdb = JobSpec(dataset=f"Normal100M3:{n_points}",
                          algorithm="hdbscan", k_pts=K_PTS)
            hdb_result, artifact_warm = _run_once(store_dir, hdb)
            assert hdb_result.cache["tree_disk_hit"], hdb_result.cache
            assert hdb_result.cache["core_disk_hit"], hdb_result.cache
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        by_size[str(n_points)] = {
            "cold_seconds": cold,
            "restart_result_warm_seconds": result_warm,
            "restart_artifact_warm_seconds": artifact_warm,
            "result_warm_speedup": speedup(cold, result_warm),
            "artifact_warm_speedup": speedup(cold, artifact_warm),
        }
        rows.append([n_points, cold * 1e3, result_warm * 1e3,
                     artifact_warm * 1e3,
                     by_size[str(n_points)]["result_warm_speedup"],
                     by_size[str(n_points)]["artifact_warm_speedup"]])
    measurements = {"k_pts": K_PTS, "sizes": list(sizes),
                    "by_size": by_size}
    table = render_table(
        ["n", "cold ms", "restart repeat ms", "restart new-job ms",
         "repeat speedup", "new-job speedup"], rows,
        title="Warm-restart value — mrd_emst cold vs restarted engine "
              "over the same --store-dir (fresh process, disk tiers only)")
    save_report("bench_store.txt", table)
    return measurements, table


def save_json(measurements):
    """Write the measurements to ``reports/BENCH_store.json``."""
    payload = {"benchmark": "bench_store", "cpu_count": os.cpu_count(),
               **measurements}
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_store.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check(measurements):
    for stats in measurements["by_size"].values():
        # A restarted exact repeat must beat recompute comfortably: it
        # reads one blob instead of building a tree and running Borůvka.
        assert stats["result_warm_speedup"] >= 5.0, stats
        # Artifact warmth must at least not hurt (it skips two phases but
        # still pays the MST run, so the bar is lower).
        assert stats["artifact_warm_speedup"] >= 1.0, stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(SIZES),
                        help="problem sizes (points per job) to sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny size and no perf assertions (CI smoke: "
                             "exercises the path, records the JSON)")
    args = parser.parse_args(argv)
    sizes = [1500] if args.smoke else args.sizes

    measurements, table = run(sizes=sizes)
    print(table)
    path = save_json(measurements)
    print(f"\nmeasurements written to {path}")
    if not args.smoke:
        _check(measurements)
        biggest = measurements["by_size"][str(max(map(int, sizes)))]
        print(f"ok: restarted repeat {biggest['result_warm_speedup']:.0f}x "
              f"faster than cold (>= 5x required); artifact-warm "
              f"{biggest['artifact_warm_speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
