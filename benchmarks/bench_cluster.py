"""Cluster benchmark — what a K-node fleet is worth.

Drives the same batch of *distinct* CPU-bound jobs (different dataset
seeds, so no tier can answer from cache) through a
:class:`~repro.cluster.router.ClusterRouter` fronting first 1 and then K
``repro.service`` nodes.  Nodes are real subprocesses (``python -m repro
serve``), so K nodes mean K processes on K cores — the single-process
thread backend would serialize the pure-Python Borůvka phases on the GIL
and fake the scaling.

Measured per fleet size: wall time for the whole batch (submit-all, then
await-all through the router), jobs/s, and the fleet's pooled
MFeatures/s.  The speedup of K nodes over 1 is the headline — dispatch is
pure routing, so it should track K for compute-bound batches.

Results go to ``reports/BENCH_cluster.json`` (plus the rendered table).
Runs standalone: ``python benchmarks/bench_cluster.py`` (``--smoke`` for
CI sizes).
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.bench.tables import REPORTS_DIR, render_table, save_report
from repro.cluster import ClusterRouter, Node
from repro.metrics import jobs_per_second, speedup

FLEET_SIZES = (1, 3)
N_JOBS = 9
N_POINTS = 20000
K_PTS = 4


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_node(name, port, store_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "1", "--name", name, "--store-dir", store_dir],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    url = f"http://127.0.0.1:{port}"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: node {name} exited early "
                             f"(code {proc.returncode})")
        try:
            with urllib.request.urlopen(f"{url}/v1/healthz", timeout=5):
                return proc, url
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    raise SystemExit(f"FAIL: node {name} never became healthy")


def _run_fleet(n_nodes, bodies, store_root):
    """One batch through a router over ``n_nodes`` subprocess nodes."""
    procs, nodes = [], []
    try:
        for i in range(n_nodes):
            name = f"bench-node-{i}"
            proc, url = _start_node(name, _free_port(),
                                    os.path.join(store_root, name))
            procs.append(proc)
            nodes.append(Node(url, name=name))
        router = ClusterRouter(nodes, timeout=120.0)
        started = time.perf_counter()
        accepted = [router.submit(dict(body)) for body in bodies]
        for item in accepted:
            result, _node = router.job(item["job_id"], wait_s=60.0)
            while result["status"] not in ("done", "failed"):
                result, _node = router.job(item["job_id"], wait_s=60.0)
            assert result["status"] == "done", result.get("error")
        wall = time.perf_counter() - started
        fleet = router.stats()["fleet"]
        return {
            "nodes": n_nodes,
            "wall_seconds": wall,
            "jobs_per_sec": jobs_per_second(len(bodies), wall),
            "mfeatures_per_sec": fleet["mfeatures_per_sec"],
            "routed_by_node": router.stats()["router"]["routed_by_node"],
        }
    finally:
        for proc in procs:
            proc.kill()
        for proc in procs:
            proc.wait(timeout=30)


def run(fleet_sizes=FLEET_SIZES, n_jobs=N_JOBS, n_points=N_POINTS):
    """Execute the 1-vs-K sweep; returns (measurements dict, table)."""
    bodies = [{"dataset": f"Normal100M3:{n_points}:{seed}",
               "algorithm": "mrd_emst", "k_pts": K_PTS}
              for seed in range(n_jobs)]
    by_fleet = {}
    rows = []
    store_root = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    try:
        for n_nodes in fleet_sizes:
            # Each fleet size gets fresh store shards: the 1-node pass
            # must not seed warm disk result hits for the K-node pass, or
            # the speedup would mix cache warmth into the parallelism
            # number.
            stats = _run_fleet(n_nodes, bodies,
                               os.path.join(store_root, f"fleet-{n_nodes}"))
            by_fleet[str(n_nodes)] = stats
            rows.append([n_nodes, stats["wall_seconds"],
                         stats["jobs_per_sec"],
                         stats["mfeatures_per_sec"]])
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    baseline = by_fleet[str(fleet_sizes[0])]["wall_seconds"]
    for key, stats in by_fleet.items():
        stats["speedup_vs_1"] = speedup(baseline, stats["wall_seconds"])
    measurements = {"n_jobs": n_jobs, "n_points": n_points, "k_pts": K_PTS,
                    "fleet_sizes": list(fleet_sizes), "by_fleet": by_fleet}
    table = render_table(
        ["nodes", "wall s", "jobs/s", "MFeat/s (pooled)"], rows,
        title=f"Fleet throughput — {n_jobs} distinct mrd_emst jobs of "
              f"{n_points} points routed over subprocess nodes")
    save_report("bench_cluster.txt", table)
    return measurements, table


def save_json(measurements):
    """Write the measurements to ``reports/BENCH_cluster.json``."""
    payload = {"benchmark": "bench_cluster", "cpu_count": os.cpu_count(),
               **measurements}
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_cluster.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check(measurements):
    sizes = measurements["fleet_sizes"]
    biggest = measurements["by_fleet"][str(max(sizes))]
    # The ring must have spread the batch over more than one node.
    used = [n for n, count in biggest["routed_by_node"].items() if count]
    assert len(used) >= 2, biggest["routed_by_node"]
    # The throughput claim needs real cores: K single-worker node
    # processes on fewer than K cores just take turns on the scheduler
    # (and pay dispatch overhead), so the ratio is only recorded there —
    # same gating as bench_service's process-vs-thread check.
    cores = os.cpu_count() or 1
    if cores >= max(sizes):
        # Conservative bar (perfect would be K) for slow CI boxes.
        assert biggest["speedup_vs_1"] >= 1.3, biggest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--fleet-sizes", type=int, nargs="+",
                        default=list(FLEET_SIZES),
                        help="node counts to sweep (first is the baseline)")
    parser.add_argument("--jobs", type=int, default=N_JOBS)
    parser.add_argument("--points", type=int, default=N_POINTS)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and no perf assertions (CI smoke: "
                             "exercises the path, records the JSON)")
    args = parser.parse_args(argv)
    n_jobs, n_points = (6, 3000) if args.smoke else (args.jobs, args.points)

    measurements, table = run(fleet_sizes=tuple(args.fleet_sizes),
                              n_jobs=n_jobs, n_points=n_points)
    print(table)
    path = save_json(measurements)
    print(f"\nmeasurements written to {path}")
    if not args.smoke:
        _check(measurements)
        biggest = measurements["by_fleet"][str(max(args.fleet_sizes))]
        cores = os.cpu_count() or 1
        bar = (">= 1.3x required" if cores >= max(args.fleet_sizes)
               else f"recorded only: {cores} core(s) < "
                    f"{max(args.fleet_sizes)} nodes")
        print(f"ok: {max(args.fleet_sizes)}-node fleet "
              f"{biggest['speedup_vs_1']:.2f}x over 1 node ({bar})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
