"""Ablation — Optimizations 1 & 2, lazy BCP, and the 1978 baseline.

Quantifies the design choices DESIGN.md calls out:
* component upper bounds (Optimization 2) cut distance evaluations;
* subtree skipping (Optimization 1) cuts node visits;
* together they dominate: the fully optimized variant does the least
  simulated work;
* MemoGFK's lazy (memoized) BCP computes far fewer distances than eager;
* Bentley–Friedman 1978 performs orders of magnitude more distance
  computations than the single-tree algorithm at equal n — the redundant
  re-query problem that motivated this entire line of work.
"""

from repro.bench.figures import ablation


def bench_ablation_optimizations(run_once):
    rows, table = run_once(lambda: ablation.run())
    print("\n" + table)

    for name in ablation.DATASETS:
        variants = {r["variant"]: r for r in rows if r["dataset"] == name
                    and r["variant"].startswith("skip")}
        if not variants:
            continue
        on = variants["skip=on,bounds=on"]
        no_bounds = variants["skip=on,bounds=off"]
        no_skip = variants["skip=off,bounds=on"]
        off = variants["skip=off,bounds=off"]
        assert on["distance_evals"] < no_bounds["distance_evals"], name
        assert on["nodes_visited"] < no_skip["nodes_visited"], name
        assert on["sim_a100_seconds"] < off["sim_a100_seconds"], name

    lazy = next(r for r in rows if r["variant"] == "memogfk-lazy")
    eager = next(r for r in rows if r["variant"] == "memogfk-eager")
    bf78 = next(r for r in rows if r["variant"] == "bentley-friedman-1978")
    assert lazy["distance_evals"] < 0.5 * eager["distance_evals"]
    assert bf78["distance_evals"] > 10 * lazy["distance_evals"]

    # The paper's Section-4.1 hypothesis: higher-resolution Morton codes
    # fix the GeoLife pathology.
    m64 = next(r for r in rows if r["variant"] == "geolife-morton-64bit")
    m128 = next(r for r in rows if r["variant"] == "geolife-morton-128bit")
    assert m128["nodes_visited"] < 0.7 * m64["nodes_visited"]
    assert m128["sim_a100_seconds"] < m64["sim_a100_seconds"]
