"""Open-loop load benchmark for the asyncio ``/v1`` front end.

Unlike ``bench_cluster.py`` (closed-loop: the next request waits for the
last response, so the generator slows down exactly when the server
does), this harness is **open-loop**: arrivals follow a seeded Poisson
schedule at a fixed offered rate whether or not earlier requests have
completed — the only honest way to measure latency under load, and the
harness the replication/compiled-engine work will be judged against.

Three stages, all against real ``python -m repro serve`` subprocesses:

1. **Long-poll concurrency** — park hundreds of concurrent ``wait_s=``
   waiters on one in-flight job over a 4-worker engine and read the
   server's ``repro_http_inflight_requests`` gauge mid-park.  The old
   thread-per-connection server capped this at its thread pool; the
   asyncio host must hold ≥ 200 (the PR's acceptance bar).
2. **Offered-load sweep** — for each arrival rate, submit distinct cold
   jobs on the Poisson schedule, await each to terminal, and record
   p50/p99 completion latency, throughput, and error/shed rates.  The
   top rate is chosen to exceed service capacity so the sweep records
   the overload→429 shed region.
3. **Deterministic overload** — a 1-worker node with ``--queue-depth 4``
   takes a 60-submission burst; the sheds must carry the retryable
   ``overloaded`` envelope and a ``Retry-After`` header.

Results go to ``reports/BENCH_load.json`` (plus the rendered table).
Runs standalone: ``python benchmarks/bench_load.py`` (``--smoke`` for CI
sizes — same long-poll bar, shorter sweep).
"""

import argparse
import asyncio
import json
import os
import random
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.api import aioclient
from repro.bench.tables import REPORTS_DIR, render_table, save_report

RATES = (3.0, 6.0, 12.0, 30.0, 80.0)
SWEEP_SECONDS = 8.0
SWEEP_POINTS = 3000
MAX_ARRIVALS_PER_RATE = 800
WAITERS = 250
WAITER_BAR = 200
BACKLOG_JOBS = 12
SEED = 20220822  # ICPP'22 — keeps every arrival schedule reproducible


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(extra_args, what):
    port = _free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         *extra_args],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    url = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: {what} exited early "
                             f"(code {proc.returncode})")
        try:
            with urllib.request.urlopen(f"{url}/v1/healthz", timeout=5):
                return proc, url
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    raise SystemExit(f"FAIL: {what} never became healthy")


def _metric(base, name):
    with urllib.request.urlopen(f"{base}/v1/metrics?format=json",
                                timeout=30) as resp:
        doc = json.loads(resp.read())
    for metric in doc["metrics"]:
        if metric["name"] == name:
            return sum(s["value"] for s in metric["samples"])
    return None


def _quantile(sorted_samples, q):
    if not sorted_samples:
        return None
    index = min(len(sorted_samples) - 1,
                max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[index]


# ------------------------------------------------- stage 1: long-poll park

async def _long_poll_stage(base, n_waiters):
    """Park ``n_waiters`` concurrent long-polls on one in-flight job."""
    # A backlog of distinct slow jobs keeps the 4 workers busy so the
    # *last* job stays in flight long enough for every waiter to park.
    backlog = []
    for i in range(BACKLOG_JOBS):
        _status, _headers, accepted = await aioclient.request_json(
            base, "/v1/jobs", method="POST",
            data={"dataset": f"Uniform100M2:20000:{SEED + i}",
                  "algorithm": "mrd_emst", "k_pts": 4})
        backlog.append(accepted["job_id"])
    target = backlog[-1]
    waiters = [asyncio.ensure_future(aioclient.request_json(
        base, f"/v1/jobs/{target}?wait_s=60", timeout=180))
        for _ in range(n_waiters)]
    await asyncio.sleep(1.0)  # let every waiter reach the parked state
    # /v1/metrics is shed-exempt, so the gauge is readable mid-park.
    inflight = await asyncio.to_thread(
        _metric, base, "repro_http_inflight_requests")
    results = await asyncio.gather(*waiters)
    statuses = {body.get("status") for status, _h, body in results
                if status == 200}
    return {
        "waiters": n_waiters,
        "inflight_gauge_mid_park": inflight,
        "waiters_answered": sum(1 for s, _h, _b in results if s == 200),
        "terminal_statuses": sorted(statuses),
    }


# ------------------------------------------------- stage 2: open-loop sweep

async def _await_terminal(base, job_id, arrival_t0, deadline_s=120.0):
    deadline = time.monotonic() + deadline_s
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        status, _headers, body = await aioclient.request_json(
            base, f"/v1/jobs/{job_id}?wait_s={chunk:.1f}",
            timeout=chunk + 60)
        if status != 200:
            return "error", None
        if body.get("status") in ("done", "failed"):
            outcome = "done" if body["status"] == "done" else "error"
            return outcome, time.monotonic() - arrival_t0
        if time.monotonic() >= deadline:
            return "error", None


async def _drive_one(base, body, results):
    t0 = time.monotonic()
    try:
        status, headers, decoded = await aioclient.request_json(
            base, "/v1/jobs", method="POST", data=body, timeout=90)
    except (OSError, asyncio.TimeoutError, json.JSONDecodeError) as exc:
        results["errors"].append(str(exc))
        return
    if status == 429:
        results["shed"].append({
            "envelope": decoded.get("error"),
            "retry_after": headers.get("retry-after"),
        })
        return
    if status != 202:
        results["errors"].append(f"unexpected submit status {status}")
        return
    outcome, latency = await _await_terminal(base, decoded["job_id"], t0)
    if outcome == "done":
        results["latencies"].append(latency)
    else:
        results["errors"].append(f"job {decoded['job_id']} did not finish")


async def _sweep_one_rate(base, rate, duration_s, n_points, rate_index):
    """One offered rate: Poisson arrivals that never wait for completions."""
    schedule = random.Random(SEED + rate_index)
    n_arrivals = min(int(rate * duration_s), MAX_ARRIVALS_PER_RATE)
    results = {"latencies": [], "shed": [], "errors": []}
    tasks = []
    started = time.monotonic()
    for i in range(n_arrivals):
        # Distinct seed per arrival: every job is a cold compute, so the
        # measured latency is service time, not cache luck.
        body = {"dataset": f"Uniform100M2:{n_points}:"
                           f"{SEED + 1000 * rate_index + i}",
                "algorithm": "emst"}
        tasks.append(asyncio.ensure_future(
            _drive_one(base, body, results)))
        await asyncio.sleep(schedule.expovariate(rate))
    await asyncio.gather(*tasks)
    wall = time.monotonic() - started
    latencies = sorted(results["latencies"])
    return {
        "offered_rate": rate,
        "arrivals": n_arrivals,
        "done": len(latencies),
        "shed": len(results["shed"]),
        "errors": len(results["errors"]),
        "shed_rate": len(results["shed"]) / n_arrivals if n_arrivals else 0,
        "p50_s": _quantile(latencies, 0.50),
        "p99_s": _quantile(latencies, 0.99),
        "throughput_jobs_per_sec": len(latencies) / wall if wall else 0,
        "shed_sample": results["shed"][0] if results["shed"] else None,
    }


# ------------------------------------------- stage 3: deterministic overload

async def _overload_stage(base, burst=60):
    """A burst far past a tiny admission bound; sheds must carry the
    envelope."""
    results = {"latencies": [], "shed": [], "errors": []}
    tasks = [asyncio.ensure_future(_drive_one(
        base, {"dataset": f"Uniform100M2:4000:{SEED + 9000 + i}",
               "algorithm": "emst"}, results))
        for i in range(burst)]
    await asyncio.gather(*tasks)
    return {
        "burst": burst,
        "done": len(results["latencies"]),
        "shed": len(results["shed"]),
        "errors": len(results["errors"]),
        "shed_sample": results["shed"][0] if results["shed"] else None,
    }


# ----------------------------------------------------------------- driver

def run(rates=RATES, duration_s=SWEEP_SECONDS, n_points=SWEEP_POINTS,
        waiters=WAITERS):
    measurements = {"rates": list(rates), "duration_s": duration_s,
                    "n_points": n_points, "seed": SEED}

    proc, base = _start_server(
        ["--workers", "4", "--batch-size", "1", "--queue-depth", "64"],
        "4-worker load server")
    try:
        measurements["long_poll"] = asyncio.run(
            _long_poll_stage(base, waiters))
        measurements["sweep"] = [
            asyncio.run(_sweep_one_rate(base, rate, duration_s, n_points, i))
            for i, rate in enumerate(rates)]
    finally:
        proc.kill()
        proc.wait(timeout=30)

    proc, base = _start_server(
        ["--workers", "1", "--queue-depth", "4"], "overload server")
    try:
        measurements["overload"] = asyncio.run(_overload_stage(base))
    finally:
        proc.kill()
        proc.wait(timeout=30)

    rows = [[entry["offered_rate"], entry["arrivals"], entry["done"],
             entry["shed"],
             "-" if entry["p50_s"] is None else f"{entry['p50_s'] * 1e3:.0f}",
             "-" if entry["p99_s"] is None else f"{entry['p99_s'] * 1e3:.0f}",
             f"{entry['throughput_jobs_per_sec']:.1f}"]
            for entry in measurements["sweep"]]
    table = render_table(
        ["offered/s", "arrivals", "done", "shed", "p50 ms", "p99 ms",
         "served/s"], rows,
        title=f"Open-loop offered-load sweep — {n_points}-point emst jobs "
              f"on a 4-worker node (queue-depth 64)")
    save_report("bench_load.txt", table)
    return measurements, table


def save_json(measurements):
    """Write the measurements to ``reports/BENCH_load.json``."""
    payload = {"benchmark": "bench_load", "cpu_count": os.cpu_count(),
               **measurements}
    path = os.path.join(os.path.abspath(REPORTS_DIR), "BENCH_load.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _check(measurements, smoke):
    long_poll = measurements["long_poll"]
    assert long_poll["waiters_answered"] == long_poll["waiters"], long_poll
    assert long_poll["inflight_gauge_mid_park"] >= WAITER_BAR, \
        (f"FAIL: only {long_poll['inflight_gauge_mid_park']} concurrent "
         f"long-polls observed; the acceptance bar is {WAITER_BAR}")
    # The lowest offered rate must be under capacity: a computable p99.
    lowest = measurements["sweep"][0]
    assert lowest["done"] > 0 and lowest["p99_s"] is not None, lowest
    # The deterministic overload burst must shed with the full envelope.
    overload = measurements["overload"]
    assert overload["shed"] >= 1, overload
    sample = overload["shed_sample"]
    assert sample["envelope"]["code"] == "overloaded", sample
    assert sample["envelope"]["retryable"] is True, sample
    assert sample["retry_after"] is not None, sample
    if not smoke:
        # The sweep's top rate must have entered the shed region.
        top = measurements["sweep"][-1]
        assert top["shed"] >= 1, \
            f"FAIL: no shed at {top['offered_rate']}/s — raise the top rate"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rates", type=float, nargs="+",
                        default=list(RATES),
                        help="offered arrival rates (jobs/s) to sweep")
    parser.add_argument("--duration", type=float, default=SWEEP_SECONDS,
                        help="seconds of arrivals per rate")
    parser.add_argument("--points", type=int, default=SWEEP_POINTS)
    parser.add_argument("--waiters", type=int, default=WAITERS,
                        help="concurrent wait_s= long-polls in stage 1")
    parser.add_argument("--smoke", action="store_true",
                        help="short sweep for CI; the long-poll bar and "
                             "shed-envelope assertions still apply")
    args = parser.parse_args(argv)
    rates = (20.0, 400.0) if args.smoke else tuple(args.rates)
    duration = 1.5 if args.smoke else args.duration

    measurements, table = run(rates=rates, duration_s=duration,
                              n_points=args.points, waiters=args.waiters)
    print(table)
    path = save_json(measurements)
    print(f"\nmeasurements written to {path}")
    _check(measurements, smoke=args.smoke)
    long_poll = measurements["long_poll"]
    print(f"ok: {long_poll['inflight_gauge_mid_park']:.0f} concurrent "
          f"long-polls held on a 4-worker engine "
          f"(bar {WAITER_BAR}); overload burst shed "
          f"{measurements['overload']['shed']}/"
          f"{measurements['overload']['burst']} with retryable "
          f"'overloaded' envelopes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
