"""Figure 1 — headline throughput on Hacc37M (paper page 1).

Regenerates the MLPACK / MemoGFK / ArborX comparison across sequential,
multithreaded and GPU platforms.  Checks the paper's ordering claims:
ArborX is the fastest sequential implementation on Hacc, the GPU rates
dwarf the multithreaded CPU ones, and the A100 outruns the MI250X GCD.
"""

from repro.bench.figures import fig1


def bench_fig1_headline(run_once):
    rows, table = run_once(lambda: fig1.run())
    print("\n" + table)

    rates = {(r["algorithm"], r["platform"]): r["mfeatures_per_sec"]
             for r in rows}
    # Sequential ordering: MLPACK < {MemoGFK, ArborX}; ArborX >= MemoGFK.
    assert rates[("MLPACK", "Sequential")] < rates[("MemoGFK", "Sequential")]
    assert rates[("MLPACK", "Sequential")] < rates[("ArborX", "Sequential")]
    assert rates[("ArborX", "Sequential")] >= 0.9 * rates[("MemoGFK",
                                                           "Sequential")]
    # GPUs dominate the CPUs; A100 > MI250X (paper: 270.7 vs 180.3).
    assert rates[("ArborX", "A100")] > 5 * rates[("ArborX", "Multithreaded")]
    assert rates[("ArborX", "A100")] > rates[("ArborX", "MI250X")]
    # Calibration anchor sanity: within 25% of the paper's numbers.
    for key, paper in {("ArborX", "Sequential"): 0.8,
                       ("ArborX", "A100"): 270.7,
                       ("ArborX", "MI250X"): 180.3}.items():
        assert abs(rates[key] - paper) / paper < 0.25, (key, rates[key])
