"""Ensure ``src/`` is importable even when the package is not installed.

This keeps ``pytest`` usable from a fresh checkout in offline environments
where ``pip install -e .`` may not be possible.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
