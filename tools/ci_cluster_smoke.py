#!/usr/bin/env python
"""CI smoke check for the cluster tier: route, kill a node, stay correct.

Boots a 3-node fleet (``python -m repro serve`` subprocesses, each with
its own persistent store shard) behind a ``python -m repro route``
subprocess, then:

1. submits half of a mixed batch (three point sets × three algorithms)
   through the router,
2. **SIGKILLs one node mid-stream** — specifically the node that served
   the first job, so the router provably loses live state,
3. submits the other half and awaits everything through the router.

Asserted invariants (the PR's acceptance criteria):

* **every job completes** — submissions that hit the dead node fail over
  (at most one retry), results lost with the dead node are transparently
  re-executed on a survivor at poll time;
* **routed results are byte-identical** to direct in-process execution
  (:func:`repro.service.jobs.canonical_payload_bytes`, wall-clock phases
  stripped) — dispatch must never change answers;
* **warm-tier pinning survives**: a re-submitted point set lands on the
  same (surviving) node the ring pinned it to — observed through the
  router's ``X-Repro-Node`` header — and is answered as a result-tier
  hit;
* **traces record the failure path**: every routed result carries a span
  tree whose first hop is a router ``route`` span, and at least one job
  touched by the kill shows the dead node in its history (a ``route``
  hop that ended ``unavailable``, or a ``lost`` marker before the
  recovery hop) — while the canonical payload bytes stay trace-free;
* the router's health document reports the degraded fleet (2/3 up).

Usage::

    python tools/ci_cluster_smoke.py --base-port 8450
"""

import argparse
import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.service import JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec

N_NODES = 3


def _request(url, data=None, timeout=90):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read()), resp.headers.get("X-Repro-Node", "")


def _submit(base, body):
    accepted, node = _request(f"{base}/v1/jobs",
                              json.dumps(body).encode())
    return accepted["job_id"], node


def _await(base, job_id, timeout):
    deadline = time.monotonic() + timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result, node = _request(f"{base}/v1/jobs/{job_id}?wait_s={chunk:.1f}",
                                timeout=chunk + 60)
        if result.get("status") in ("done", "failed"):
            return result, node
        if time.monotonic() >= deadline:
            raise SystemExit(f"FAIL: job {job_id} still "
                             f"{result.get('status')} after {timeout}s")


def _reference_bytes(body):
    spec = JobSpec.from_dict(body)
    return canonical_payload_bytes(
        execute_spec(make_exec_spec(spec))["payload"])


def _wait_healthy(proc, url, check, what):
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: {what} exited early "
                             f"(code {proc.returncode})")
        try:
            health, _ = _request(url, timeout=5)
            if check(health):
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.25)
    raise SystemExit(f"FAIL: {what} never became healthy")


def run_smoke(args):
    store_root = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    procs = {}
    router_proc = None
    try:
        node_args = []
        for i in range(N_NODES):
            name = f"node{i}"
            port = args.base_port + i
            procs[name] = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port), "--workers", "1", "--name", name,
                 "--store-dir", os.path.join(store_root, name)],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            node_args += ["--node", f"{name}=http://127.0.0.1:{port}"]
        for i, (name, proc) in enumerate(procs.items()):
            _wait_healthy(proc,
                          f"http://127.0.0.1:{args.base_port + i}/v1/healthz",
                          lambda h: h.get("status") == "ok", name)
        router_port = args.base_port + N_NODES
        router_proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "route",
             "--port", str(router_port), *node_args],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        base = f"http://127.0.0.1:{router_port}"
        _wait_healthy(router_proc, f"{base}/v1/healthz",
                      lambda h: h.get("nodes_up") == N_NODES, "router")
        print(f"ok: {N_NODES} nodes + router up at {base}")

        bodies = []
        for n_points in (700, 900, 1100):
            for algorithm in ("emst", "mrd_emst", "hdbscan"):
                bodies.append({"dataset": f"Uniform100M2:{n_points}",
                               "algorithm": algorithm, "k_pts": 4})
        half = len(bodies) // 2
        submitted = [(body, *_submit(base, body)) for body in bodies[:half]]

        # Kill the node that served the first job — mid-stream, with its
        # results (and any still-running jobs) lost with it.
        victim = submitted[0][2]
        os.kill(procs[victim].pid, signal.SIGKILL)
        procs[victim].wait(timeout=30)
        print(f"ok: killed {victim} mid-stream (SIGKILL)")

        submitted += [(body, *_submit(base, body)) for body in bodies[half:]]

        completions = []
        for body, job_id, _node in submitted:
            result, node = _await(base, job_id, args.timeout)
            if result["status"] != "done":
                raise SystemExit(f"FAIL: job {job_id} failed: "
                                 f"{result.get('error')}")
            served = canonical_payload_bytes(result["payload"])
            if served != _reference_bytes(body):
                raise SystemExit(
                    f"FAIL: routed payload diverges from in-process "
                    f"reference for {body} (served sha256="
                    f"{hashlib.sha256(served).hexdigest()})")
            completions.append((body, node, result))
        print(f"ok: all {len(completions)} jobs completed through the "
              f"router, byte-identical to in-process execution "
              f"(one node down)")

        # Every routed job carries a trace whose first span is the
        # router's hop; the byte-identity checks above already proved the
        # trace never leaks into the canonical payload.
        failure_hops = 0
        for body, node, result in completions:
            trace = result.get("trace")
            if not trace or not trace.get("spans"):
                raise SystemExit(f"FAIL: routed job for {body} carries "
                                 f"no trace")
            spans = trace["spans"]
            if spans[0]["name"] != "route":
                raise SystemExit(f"FAIL: first span should be the router "
                                 f"hop, got {spans[0]['name']!r}")
            history = [(span["name"], span["node"],
                        span.get("meta", {}).get("outcome"))
                       for span in spans if span["name"] in ("route", "lost")]
            touched_victim = any(
                node_name == victim and
                (name == "lost" or outcome == "unavailable")
                for name, node_name, outcome in history)
            if touched_victim:
                failure_hops += 1
                final_hop = [h for h in history if h[0] == "route"][-1]
                if final_hop[1] == victim or final_hop[2] != "accepted":
                    raise SystemExit(f"FAIL: trace history {history} does "
                                     f"not end on an accepted survivor hop")
        if not failure_hops:
            raise SystemExit(
                f"FAIL: no trace recorded the dead node {victim} — "
                f"failover/recovery left no span history")
        print(f"ok: traces intact — every result shows its router hop, "
              f"{failure_hops} trace(s) record {victim}'s failure and "
              f"the recovery hop to a survivor")

        # Warm pinning: re-submit a point set whose serving node survived;
        # the ring must send it back there and the result tier must answer.
        body, node, _result = next(
            (c for c in completions if c[1] != victim), None) or (
            None, None, None)
        if body is None:
            raise SystemExit("FAIL: no job served by a surviving node")
        job_id, resubmit_node = _submit(base, body)
        if resubmit_node != node:
            raise SystemExit(
                f"FAIL: re-submission routed to {resubmit_node}, "
                f"expected the warm node {node}")
        result, _ = _await(base, job_id, args.timeout)
        if not result["cache"].get("result_hit"):
            raise SystemExit(
                f"FAIL: re-submitted job was not a result-tier hit on "
                f"{node}: {result['cache']}")
        print(f"ok: re-submitted point set pinned back to {node} and "
              f"answered from its warm result tier")

        health, _ = _request(f"{base}/v1/healthz")
        if health["status"] != "degraded" or health["nodes_up"] != 2:
            raise SystemExit(f"FAIL: router health should report 2/3 up, "
                             f"got {health['status']} "
                             f"{health['nodes_up']}/{health['nodes_total']}")
        stats, _ = _request(f"{base}/v1/stats")
        print(f"ok: fleet degraded but serving "
              f"(failovers={stats['router']['failovers']}, "
              f"resubmits={stats['router']['resubmits']}, "
              f"jobs done={stats['fleet']['jobs'].get('done', 0)})")
        return 0
    finally:
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None and proc.poll() is None:
                proc.kill()
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None:
                proc.wait(timeout=30)
        shutil.rmtree(store_root, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--base-port", type=int, default=8450,
                        help="nodes bind base-port..+2, the router +3")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="seconds to wait for any single job")
    args = parser.parse_args(argv)

    # PYTHONPATH must reach the node and router subprocesses.
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                                    if existing else src)
    return run_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
