#!/usr/bin/env python
"""CI smoke check for the cluster tier: route, kill a node, stay correct.

Two phases, each a fresh 3-node fleet (``python -m repro serve``
subprocesses with their own persistent store shards) behind a
``python -m repro route`` subprocess.

**Phase 1 — failover (replicas=1, the PR 8 contract).**

1. submits half of a mixed batch (three point sets × three algorithms)
   through the router,
2. **SIGKILLs one node mid-stream** — specifically the node that served
   the first job, so the router provably loses live state,
3. submits the other half and awaits everything through the router.

Asserted invariants:

* **every job completes** — submissions that hit the dead node fail over
  (at most one retry), results lost with the dead node are transparently
  re-executed on a survivor at poll time;
* **routed results are byte-identical** to direct in-process execution
  (:func:`repro.service.jobs.canonical_payload_bytes`, wall-clock phases
  stripped) — dispatch must never change answers;
* **warm-tier pinning survives**: a re-submitted point set lands on the
  same (surviving) node the ring pinned it to — observed through the
  router's ``X-Repro-Node`` header — and is answered as a result-tier
  hit;
* **traces record the failure path**: every routed result carries a span
  tree whose first hop is a router ``route`` span, and at least one job
  touched by the kill shows the dead node in its history (a ``route``
  hop that ended ``unavailable``, or a ``lost`` marker before the
  recovery hop) — while the canonical payload bytes stay trace-free;
* the router's health document reports the degraded fleet (2/3 up).

**Phase 2 — replication (replicas=2, the PR 10 headline).**

Nodes are peer-wired (``--peer``), the router runs ``--replicas 2``.
The fleet is warmed with the full batch, the background replica queue is
drained, and then the node that served the first job is SIGKILLed.

* re-submitting **every** body completes byte-identical with **zero
  recomputation**: each job reports a result-tier cache hit, and the
  survivors' fleet-wide ``repro_cache_lookups_total`` result-hit count
  grows by at least the batch size while their completed-job count grows
  by exactly it (replays ride caches, not workers);
* ``repro rebalance`` onto a fresh, empty, **peer-less** replacement
  node exits 0, and a body whose result artifact homes on the
  replacement is then served by it **warm immediately** — a result-tier
  disk hit straight from the rebalanced shard, byte-identical again.

Usage::

    python tools/ci_cluster_smoke.py --base-port 8450
"""

import argparse
import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.cluster import HashRing, Node
from repro.service import JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec
from repro.store import combine_fingerprint, fingerprint_spec

N_NODES = 3


def _request(url, data=None, timeout=90):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read()), resp.headers.get("X-Repro-Node", "")


def _submit(base, body):
    accepted, node = _request(f"{base}/v1/jobs",
                              json.dumps(body).encode())
    return accepted["job_id"], node


def _await(base, job_id, timeout):
    deadline = time.monotonic() + timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result, node = _request(f"{base}/v1/jobs/{job_id}?wait_s={chunk:.1f}",
                                timeout=chunk + 60)
        if result.get("status") in ("done", "failed"):
            return result, node
        if time.monotonic() >= deadline:
            raise SystemExit(f"FAIL: job {job_id} still "
                             f"{result.get('status')} after {timeout}s")


_REFERENCES = {}


def _reference_bytes(body):
    # Memoized: phase 2 replays the same batch and the in-process
    # reference execution is the expensive part of the check.
    memo_key = json.dumps(body, sort_keys=True)
    if memo_key not in _REFERENCES:
        spec = JobSpec.from_dict(body)
        _REFERENCES[memo_key] = canonical_payload_bytes(
            execute_spec(make_exec_spec(spec))["payload"])
    return _REFERENCES[memo_key]


def _mixed_batch():
    bodies = []
    for n_points in (700, 900, 1100):
        for algorithm in ("emst", "mrd_emst", "hdbscan"):
            bodies.append({"dataset": f"Uniform100M2:{n_points}",
                           "algorithm": algorithm, "k_pts": 4})
    return bodies


def _wait_healthy(proc, url, check, what):
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: {what} exited early "
                             f"(code {proc.returncode})")
        try:
            health, _ = _request(url, timeout=5)
            if check(health):
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.25)
    raise SystemExit(f"FAIL: {what} never became healthy")


def run_smoke(args):
    store_root = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    procs = {}
    router_proc = None
    try:
        node_args = []
        for i in range(N_NODES):
            name = f"node{i}"
            port = args.base_port + i
            procs[name] = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port), "--workers", "1", "--name", name,
                 "--store-dir", os.path.join(store_root, name)],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            node_args += ["--node", f"{name}=http://127.0.0.1:{port}"]
        for i, (name, proc) in enumerate(procs.items()):
            _wait_healthy(proc,
                          f"http://127.0.0.1:{args.base_port + i}/v1/healthz",
                          lambda h: h.get("status") == "ok", name)
        router_port = args.base_port + N_NODES
        router_proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "route",
             "--port", str(router_port), *node_args],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        base = f"http://127.0.0.1:{router_port}"
        _wait_healthy(router_proc, f"{base}/v1/healthz",
                      lambda h: h.get("nodes_up") == N_NODES, "router")
        print(f"ok: {N_NODES} nodes + router up at {base}")

        bodies = _mixed_batch()
        half = len(bodies) // 2
        submitted = [(body, *_submit(base, body)) for body in bodies[:half]]

        # Kill the node that served the first job — mid-stream, with its
        # results (and any still-running jobs) lost with it.
        victim = submitted[0][2]
        os.kill(procs[victim].pid, signal.SIGKILL)
        procs[victim].wait(timeout=30)
        print(f"ok: killed {victim} mid-stream (SIGKILL)")

        submitted += [(body, *_submit(base, body)) for body in bodies[half:]]

        completions = []
        for body, job_id, _node in submitted:
            result, node = _await(base, job_id, args.timeout)
            if result["status"] != "done":
                raise SystemExit(f"FAIL: job {job_id} failed: "
                                 f"{result.get('error')}")
            served = canonical_payload_bytes(result["payload"])
            if served != _reference_bytes(body):
                raise SystemExit(
                    f"FAIL: routed payload diverges from in-process "
                    f"reference for {body} (served sha256="
                    f"{hashlib.sha256(served).hexdigest()})")
            completions.append((body, node, result))
        print(f"ok: all {len(completions)} jobs completed through the "
              f"router, byte-identical to in-process execution "
              f"(one node down)")

        # Every routed job carries a trace whose first span is the
        # router's hop; the byte-identity checks above already proved the
        # trace never leaks into the canonical payload.
        failure_hops = 0
        for body, node, result in completions:
            trace = result.get("trace")
            if not trace or not trace.get("spans"):
                raise SystemExit(f"FAIL: routed job for {body} carries "
                                 f"no trace")
            spans = trace["spans"]
            if spans[0]["name"] != "route":
                raise SystemExit(f"FAIL: first span should be the router "
                                 f"hop, got {spans[0]['name']!r}")
            history = [(span["name"], span["node"],
                        span.get("meta", {}).get("outcome"))
                       for span in spans if span["name"] in ("route", "lost")]
            touched_victim = any(
                node_name == victim and
                (name == "lost" or outcome == "unavailable")
                for name, node_name, outcome in history)
            if touched_victim:
                failure_hops += 1
                final_hop = [h for h in history if h[0] == "route"][-1]
                if final_hop[1] == victim or final_hop[2] != "accepted":
                    raise SystemExit(f"FAIL: trace history {history} does "
                                     f"not end on an accepted survivor hop")
        if not failure_hops:
            raise SystemExit(
                f"FAIL: no trace recorded the dead node {victim} — "
                f"failover/recovery left no span history")
        print(f"ok: traces intact — every result shows its router hop, "
              f"{failure_hops} trace(s) record {victim}'s failure and "
              f"the recovery hop to a survivor")

        # Warm pinning: re-submit a point set whose serving node survived;
        # the ring must send it back there and the result tier must answer.
        body, node, _result = next(
            (c for c in completions if c[1] != victim), None) or (
            None, None, None)
        if body is None:
            raise SystemExit("FAIL: no job served by a surviving node")
        job_id, resubmit_node = _submit(base, body)
        if resubmit_node != node:
            raise SystemExit(
                f"FAIL: re-submission routed to {resubmit_node}, "
                f"expected the warm node {node}")
        result, _ = _await(base, job_id, args.timeout)
        if not result["cache"].get("result_hit"):
            raise SystemExit(
                f"FAIL: re-submitted job was not a result-tier hit on "
                f"{node}: {result['cache']}")
        print(f"ok: re-submitted point set pinned back to {node} and "
              f"answered from its warm result tier")

        health, _ = _request(f"{base}/v1/healthz")
        if health["status"] != "degraded" or health["nodes_up"] != 2:
            raise SystemExit(f"FAIL: router health should report 2/3 up, "
                             f"got {health['status']} "
                             f"{health['nodes_up']}/{health['nodes_total']}")
        stats, _ = _request(f"{base}/v1/stats")
        print(f"ok: fleet degraded but serving "
              f"(failovers={stats['router']['failovers']}, "
              f"resubmits={stats['router']['resubmits']}, "
              f"jobs done={stats['fleet']['jobs'].get('done', 0)})")
        return 0
    finally:
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None and proc.poll() is None:
                proc.kill()
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None:
                proc.wait(timeout=30)
        shutil.rmtree(store_root, ignore_errors=True)


def _metric_total(doc, name, **match):
    """Sum a family's samples whose labels include ``match``."""
    total = 0.0
    for family in doc.get("metrics", []):
        if family.get("name") != name:
            continue
        for sample in family.get("samples", []):
            labels = sample.get("labels") or {}
            if all(labels.get(k) == v for k, v in match.items()):
                total += sample.get("value", 0.0)
    return total


def _drain_replication(base, timeout=60):
    deadline = time.monotonic() + timeout
    while True:
        stats, _ = _request(f"{base}/v1/stats")
        if stats["router"].get("replica_pending", 0) == 0:
            return
        if time.monotonic() >= deadline:
            raise SystemExit("FAIL: replica queue never drained "
                             f"({stats['router']['replica_pending']} "
                             f"still pending)")
        time.sleep(0.1)


def run_replicated_smoke(args):
    """Phase 2: replicas=2 — node death costs zero recomputation."""
    store_root = tempfile.mkdtemp(prefix="repro-cluster-smoke-rep-")
    procs = {}
    router_proc = None
    base_port = args.base_port + 10
    urls = {f"rep{i}": f"http://127.0.0.1:{base_port + i}"
            for i in range(N_NODES)}
    try:
        node_args = []
        for i in range(N_NODES):
            name = f"rep{i}"
            peer_args = []
            for peer, url in urls.items():
                if peer != name:
                    peer_args += ["--peer", url]
            procs[name] = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(base_port + i), "--workers", "1",
                 "--name", name,
                 "--store-dir", os.path.join(store_root, name),
                 *peer_args],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            node_args += ["--node", f"{name}={urls[name]}"]
        for name, proc in procs.items():
            _wait_healthy(proc, f"{urls[name]}/v1/healthz",
                          lambda h: h.get("status") == "ok", name)
        router_port = base_port + N_NODES
        router_proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "route",
             "--port", str(router_port), "--replicas", "2", *node_args],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        base = f"http://127.0.0.1:{router_port}"
        _wait_healthy(router_proc, f"{base}/v1/healthz",
                      lambda h: h.get("nodes_up") == N_NODES, "router")
        print(f"ok: replicated fleet ({N_NODES} peer-wired nodes, "
              f"replicas=2) + router up at {base}")

        # Warm: run the full batch through the router, then wait for the
        # background replica queue to finish copying every finished
        # job's artifacts to its second ring home.
        bodies = _mixed_batch()
        warmed = [(body, *_submit(base, body)) for body in bodies]
        victim = warmed[0][2]
        for body, job_id, _node in warmed:
            result, _ = _await(base, job_id, args.timeout)
            if result["status"] != "done":
                raise SystemExit(f"FAIL: warm job {job_id} failed: "
                                 f"{result.get('error')}")
        _drain_replication(base)
        print(f"ok: {len(bodies)} jobs warmed and replicated "
              f"(replica queue drained)")

        # Snapshot every node's cache/job counters, then kill the node
        # that served the first job.  The replay below must be answered
        # entirely from the survivors' replicated tiers.
        before = {}
        for name, url in urls.items():
            doc, _ = _request(f"{url}/v1/metrics?format=json")
            before[name] = doc
        os.kill(procs[victim].pid, signal.SIGKILL)
        procs[victim].wait(timeout=30)
        print(f"ok: killed {victim} (SIGKILL) after warm-up")

        for body in bodies:
            job_id, _node = _submit(base, body)
            result, node = _await(base, job_id, args.timeout)
            if result["status"] != "done":
                raise SystemExit(f"FAIL: replay after node death failed "
                                 f"for {body}: {result.get('error')}")
            if node == victim:
                raise SystemExit(f"FAIL: replay claims dead node {victim}")
            if not result["cache"].get("result_hit"):
                raise SystemExit(
                    f"FAIL: replay of {body} recomputed on {node} "
                    f"instead of hitting a replicated result tier: "
                    f"{result['cache']}")
            if canonical_payload_bytes(result["payload"]) != \
                    _reference_bytes(body):
                raise SystemExit(f"FAIL: replayed payload diverges for "
                                 f"{body}")
        hit_delta = done_delta = 0.0
        survivors = [name for name in urls if name != victim]
        for name in survivors:
            doc, _ = _request(f"{urls[name]}/v1/metrics?format=json")
            hit_delta += (
                _metric_total(doc, "repro_cache_lookups_total",
                              tier="result", outcome="hit") -
                _metric_total(before[name], "repro_cache_lookups_total",
                              tier="result", outcome="hit"))
            done_delta += (
                _metric_total(doc, "repro_jobs_completed_total") -
                _metric_total(before[name], "repro_jobs_completed_total"))
        if hit_delta < len(bodies):
            raise SystemExit(
                f"FAIL: survivors report only {hit_delta:.0f} result-tier "
                f"hits for {len(bodies)} replayed jobs — some recomputed")
        if done_delta != len(bodies):
            raise SystemExit(
                f"FAIL: survivors completed {done_delta:.0f} jobs for "
                f"{len(bodies)} replays — the death was not recompute-free")
        print(f"ok: all {len(bodies)} replays byte-identical with zero "
              f"recompute ({hit_delta:.0f} fleet-wide result-tier hits, "
              f"{done_delta:.0f} jobs completed)")

        # Rebalance onto a fresh, empty, peer-less replacement: warm
        # service must come from its own rebalanced shard, nothing else.
        replacement = "rep9"
        replacement_port = base_port + N_NODES + 1
        replacement_url = f"http://127.0.0.1:{replacement_port}"
        procs[replacement] = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(replacement_port), "--workers", "1",
             "--name", replacement,
             "--store-dir", os.path.join(store_root, replacement)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        _wait_healthy(procs[replacement], f"{replacement_url}/v1/healthz",
                      lambda h: h.get("status") == "ok", replacement)
        members = [f"{name}={urls[name]}" for name in survivors]
        members.append(f"{replacement}={replacement_url}")
        rebalance = subprocess.run(
            [sys.executable, "-m", "repro", "rebalance",
             *(arg for member in members for arg in ("--node", member)),
             "--replicas", "2",
             "--journal", os.path.join(store_root, "rebalance.jsonl")],
            capture_output=True, text=True, timeout=300)
        if rebalance.returncode != 0:
            raise SystemExit(f"FAIL: repro rebalance exited "
                             f"{rebalance.returncode}:\n{rebalance.stdout}"
                             f"{rebalance.stderr}")
        print(f"ok: {rebalance.stdout.strip()}")

        # A body whose result artifact homes on the replacement must be
        # served warm by it immediately — straight off the copied shard.
        ring = HashRing(
            [Node(urls[name], name=name) for name in survivors] +
            [Node(replacement_url, name=replacement)])
        target_body = None
        for body in bodies:
            spec = JobSpec.from_dict(body)
            result_key = combine_fingerprint(fingerprint_spec(spec),
                                             spec.params_key())
            homes = [n.name for n in ring.homes(result_key, 2,
                                                healthy_only=False)]
            if replacement in homes:
                target_body = body
                break
        if target_body is None:
            raise SystemExit("FAIL: no result artifact homes on the "
                             "replacement node (9 keys, 2 of 3 homes "
                             "each — placement is broken)")
        job_id, node = _submit(replacement_url, target_body)
        result, node = _await(replacement_url, job_id, args.timeout)
        if result["status"] != "done":
            raise SystemExit(f"FAIL: job on replacement failed: "
                             f"{result.get('error')}")
        if node != replacement:
            raise SystemExit(f"FAIL: expected {replacement} to answer, "
                             f"got {node}")
        if not result["cache"].get("result_hit") or \
                not result["cache"].get("result_disk_hit"):
            raise SystemExit(
                f"FAIL: replacement recomputed instead of serving its "
                f"rebalanced shard: {result['cache']}")
        if canonical_payload_bytes(result["payload"]) != \
                _reference_bytes(target_body):
            raise SystemExit("FAIL: rebalanced payload diverges from the "
                             "in-process reference")
        print(f"ok: rebalanced replacement {replacement} served "
              f"{target_body['dataset']}/{target_body['algorithm']} "
              f"warm immediately (result-tier disk hit)")
        return 0
    finally:
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None and proc.poll() is None:
                proc.kill()
        for proc in list(procs.values()) + [router_proc]:
            if proc is not None:
                proc.wait(timeout=30)
        shutil.rmtree(store_root, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--base-port", type=int, default=8450,
                        help="nodes bind base-port..+2, the router +3")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="seconds to wait for any single job")
    args = parser.parse_args(argv)

    # PYTHONPATH must reach the node and router subprocesses.
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                                    if existing else src)
    code = run_smoke(args)
    if code:
        return code
    return run_replicated_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
