#!/usr/bin/env python
"""Aggregate every ``reports/BENCH_*.json`` into one trend summary.

Each benchmark driver writes its own machine-readable report; this tool
folds whatever subset exists into a single table so one CI artifact
answers "how did this build do" without opening five JSON files.  Known
benchmarks get curated headline rows (the numbers their gates are about:
obs overhead %, load peak throughput, kernel speedups, ...); anything
unrecognized falls back to its shallowest numeric leaves, so a new
``BENCH_foo.json`` shows up here the day it lands with no edit to this
file.

Outputs, next to the inputs:

* ``reports/BENCH_report.md``   — one markdown table per benchmark;
* ``reports/BENCH_report.json`` — the same rows, machine-readable.

Usage::

    python tools/bench_report.py [--reports-dir reports]
"""

import argparse
import glob
import json
import os
import sys

#: Cap on fallback rows per benchmark, so a deeply nested report cannot
#: drown the table; curated extractors are exempt.
MAX_GENERIC_ROWS = 8


# --------------------------------------------------------------- extractors
#
# Each extractor maps one benchmark payload to [(metric, value), ...].
# They only .get() their way in — a missing key degrades to fewer rows,
# never a crash — and an extractor raising falls back to the generic walk.

def _headline_obs(payload):
    comparison = payload.get("comparison", {})
    return [
        ("overhead_pct", comparison.get("overhead_pct")),
        ("best_off_seconds", comparison.get("best_off_seconds")),
        ("best_on_seconds", comparison.get("best_on_seconds")),
        ("profiler_share_pct", comparison.get("profiler_share_pct")),
        ("profiler_samples", comparison.get("profiler_samples")),
        ("n_points", comparison.get("n_points")),
    ]


def _headline_load(payload):
    sweep = payload.get("sweep") or []
    rows = []
    if sweep:
        peak = max(sweep, key=lambda e: e.get(
            "throughput_jobs_per_sec", 0.0))
        rows += [
            ("peak_throughput_jobs_per_sec",
             peak.get("throughput_jobs_per_sec")),
            ("lightest_rate_p50_s", sweep[0].get("p50_s")),
            ("lightest_rate_p99_s", sweep[0].get("p99_s")),
            ("top_rate_shed_fraction", sweep[-1].get("shed_rate")),
        ]
    overload = payload.get("overload", {})
    if overload.get("burst"):
        rows.append(("overload_shed_fraction",
                     overload.get("shed", 0) / overload["burst"]))
    return rows


def _headline_kernels(payload):
    rows = []
    dims = payload.get("headline", {}).get("dimensions", {})
    for dim in sorted(dims):
        rows.append((f"headline_speedup_{dim}d", dims[dim].get("speedup")))
        rows.append((f"headline_new_seconds_{dim}d",
                     dims[dim].get("new_seconds")))
    return rows


def _headline_store(payload):
    by_size = payload.get("by_size", {})
    if not by_size:
        return []
    biggest = by_size[max(by_size, key=int)]
    return [(f"n{max(by_size, key=int)}_{key}", value)
            for key, value in sorted(biggest.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)]


def _headline_cluster(payload):
    by_fleet = payload.get("by_fleet", {})
    if not by_fleet:
        return []
    biggest = by_fleet[max(by_fleet, key=int)]
    return [(f"fleet{max(by_fleet, key=int)}_{key}", value)
            for key, value in sorted(biggest.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)]


HEADLINES = {
    "bench_obs": _headline_obs,
    "bench_load": _headline_load,
    "bench_kernels": _headline_kernels,
    "bench_store": _headline_store,
    "bench_cluster": _headline_cluster,
}

#: Bookkeeping keys the generic walk skips — present in every report and
#: never a trend signal.
_SKIP_KEYS = ("cpu_count", "seed")


def _numeric_leaves(payload, prefix="", depth=0):
    """Depth-first ``(dotted.path, value)`` pairs, shallowest first."""
    if depth > 3:
        return
    for key in sorted(payload):
        if depth == 0 and key in _SKIP_KEYS:
            continue
        value = payload[key]
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield path, value
        elif isinstance(value, dict):
            yield from _numeric_leaves(value, f"{path}.", depth + 1)


def extract_rows(payload):
    """Headline ``(metric, value)`` rows for one benchmark payload."""
    extractor = HEADLINES.get(payload.get("benchmark"))
    if extractor is not None:
        try:
            rows = [(metric, value) for metric, value in extractor(payload)
                    if value is not None]
            if rows:
                return rows, "curated"
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            pass  # malformed report: the generic walk still says something
    generic = sorted(_numeric_leaves(payload),
                     key=lambda item: (item[0].count("."), item[0]))
    return generic[:MAX_GENERIC_ROWS], "generic"


def _fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value)) if isinstance(value, float) else str(value)


def build_report(reports_dir):
    """All ``BENCH_*.json`` under ``reports_dir`` folded into one doc."""
    paths = sorted(glob.glob(os.path.join(reports_dir, "BENCH_*.json")))
    paths = [p for p in paths
             if os.path.basename(p) != "BENCH_report.json"]
    benchmarks, skipped = {}, []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            skipped.append({"file": os.path.basename(path),
                            "error": str(exc)})
            continue
        name = payload.get("benchmark") or \
            os.path.basename(path)[len("BENCH_"):-len(".json")]
        rows, source = extract_rows(payload)
        benchmarks[name] = {
            "file": os.path.basename(path),
            "cpu_count": payload.get("cpu_count"),
            "source": source,
            "headlines": {metric: value for metric, value in rows},
        }
    return {"reports_dir": os.path.abspath(reports_dir),
            "benchmarks": benchmarks, "skipped": skipped}


def render_markdown(report):
    lines = ["# Benchmark trend summary", ""]
    if not report["benchmarks"]:
        lines.append("_No BENCH_*.json reports found._")
        return "\n".join(lines) + "\n"
    for name, entry in sorted(report["benchmarks"].items()):
        suffix = " (generic rows)" if entry["source"] == "generic" else ""
        lines += [f"## {name}{suffix}", "",
                  f"`{entry['file']}`, cpu_count={entry['cpu_count']}", "",
                  "| metric | value |", "| --- | ---: |"]
        lines += [f"| {metric} | {_fmt(value)} |"
                  for metric, value in entry["headlines"].items()]
        lines.append("")
    for skip in report["skipped"]:
        lines.append(f"_skipped {skip['file']}: {skip['error']}_")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--reports-dir", default="reports",
                        help="directory holding the BENCH_*.json inputs "
                             "(outputs land beside them)")
    args = parser.parse_args(argv)
    if not os.path.isdir(args.reports_dir):
        print(f"note: no reports directory at {args.reports_dir!r}; "
              f"nothing to aggregate")
        return 0

    report = build_report(args.reports_dir)
    markdown = render_markdown(report)
    md_path = os.path.join(args.reports_dir, "BENCH_report.md")
    json_path = os.path.join(args.reports_dir, "BENCH_report.json")
    with open(md_path, "w", encoding="utf-8") as fh:
        fh.write(markdown)
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(markdown)
    print(f"trend summary written to {md_path} and {json_path} "
          f"({len(report['benchmarks'])} benchmark(s), "
          f"{len(report['skipped'])} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
