#!/usr/bin/env python
"""CI smoke check for the observability surface (repro.obs).

Boots a real ``repro serve`` subprocess, drives a small mixed workload
through it (including an exact repeat, so the cache tiers fire), then
asserts the scrape surface holds what ISSUE/README promise:

* ``GET /v1/metrics`` returns Prometheus text that a strict parser
  accepts, with computable quantiles (p50/p99 from the job-latency
  buckets), per-tier cache lookup counters, and per-phase timing series;
* ``GET /v1/metrics?format=json`` carries the same registry document,
  cross-checked against the text form (completed-job counts agree);
* every finished job's ``GET /v1/jobs/<id>`` body carries a span tree
  whose ``executed`` span holds the work-model counter totals, and the
  trace never leaks into the canonical payload bytes;
* a 2-second ``GET /v1/profile`` capture taken *while the workload
  runs* holds samples attributed to a traversal-phase frame, and its
  collapsed form lands on disk for CI to archive.

Usage::

    python tools/ci_obs_smoke.py --port 8423 --dataset Uniform100M2:10000
"""

import argparse
import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.obs import (
    histogram_from_sample,
    parse_prometheus_text,
    render_collapsed,
)
from repro.service import JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec

#: Engine phases that walk the spatial tree — the profiler must see the
#: traversal itself, not just bookkeeping around it.
TRAVERSAL_PHASES = frozenset({"tree", "tree_build", "core", "mst",
                              "compute"})


def _request(url, data=None, timeout=90, raw=False):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        body = resp.read()
        return body.decode() if raw else json.loads(body)


def _await_job(base, body, timeout):
    job_id = _request(f"{base}/v1/jobs",
                      json.dumps(body).encode())["job_id"]
    deadline = time.monotonic() + timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result = _request(f"{base}/v1/jobs/{job_id}?wait={chunk:.1f}")
        if result.get("status") in ("done", "failed"):
            return result
        if time.monotonic() >= deadline:
            raise SystemExit(f"FAIL: job {job_id} still "
                             f"{result.get('status')} after {timeout}s")


def _start_server(port):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    base = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: server exited early "
                             f"(code {proc.returncode})")
        try:
            _request(f"{base}/v1/healthz", timeout=5)
            return proc, base
        except (urllib.error.URLError, OSError):
            time.sleep(0.25)
    proc.kill()
    raise SystemExit("FAIL: server never became healthy")


def check_obs_surface(args):
    proc, base = _start_server(args.port)
    try:
        specs = [
            {"dataset": args.dataset, "algorithm": "emst"},
            {"dataset": args.dataset, "algorithm": "mrd_emst", "k_pts": 4},
            {"dataset": args.dataset, "algorithm": "hdbscan", "k_pts": 4},
            {"dataset": args.dataset, "algorithm": "emst"},  # result hit
        ]
        # Burst-capture a profile concurrently with the workload, so the
        # samples land while the engine is actually traversing.
        profile_box = {}

        def _capture_profile():
            try:
                profile_box["doc"] = _request(
                    f"{base}/v1/profile?seconds=2&hz=97&format=json",
                    timeout=90)
            except Exception as exc:  # re-raised on the main thread
                profile_box["error"] = exc

        capture = threading.Thread(target=_capture_profile,
                                   name="profile-capture")
        capture.start()
        results = [_await_job(base, body, args.timeout) for body in specs]
        capture.join(timeout=90)
        for body, result in zip(specs, results):
            assert result["status"] == "done", result.get("error")
        assert results[-1]["cache"]["result_hit"], results[-1]["cache"]

        # --- traces ride on every result, outside the canonical payload.
        for result in results:
            trace = result.get("trace")
            assert trace and trace["trace_id"].startswith("tr-"), result
            names = [span["name"] for span in trace["spans"]]
            assert names == ["submit", "queued", "batched", "executed",
                             "served"], names
            executed = trace["spans"][3]
            assert executed["meta"]["counters"]["scalar_ops"] > 0
        reference = canonical_payload_bytes(execute_spec(make_exec_spec(
            JobSpec.from_dict(specs[0])))["payload"])
        assert canonical_payload_bytes(results[0]["payload"]) == reference, \
            "FAIL: traced payload diverges from in-process reference"
        replayed = results[-1]["trace"]["spans"][3]["children"]
        assert all(child["meta"].get("replayed") for child in replayed), \
            "FAIL: result-hit repeat must mark its phases as replayed"

        # --- Prometheus text form: parseable, quantiles computable.
        text = _request(f"{base}/v1/metrics", raw=True)
        parsed = parse_prometheus_text(text)
        completed = parsed["repro_jobs_completed_total"][0][1]
        assert completed == len(specs), parsed["repro_jobs_completed_total"]
        buckets = [(labels, value) for labels, value
                   in parsed["repro_job_seconds_bucket"]
                   if labels.get("algorithm") == "emst"]
        assert buckets and buckets[-1][0]["le"] == "+Inf"
        assert buckets[-1][1] == 2.0  # two emst jobs observed
        lookups = {(labels["tier"], labels["level"], labels["outcome"]): v
                   for labels, v in parsed["repro_cache_lookups_total"]}
        assert lookups[("result", "memory", "hit")] >= 1, lookups
        assert lookups[("tree", "memory", "miss")] >= 1, lookups
        phases = {labels["phase"] for labels, _
                  in parsed["repro_phase_seconds_count"]}
        assert "mst" in phases, phases
        endpoints = {labels["endpoint"] for labels, _
                     in parsed["repro_http_requests_total"]}
        assert {"/v1/jobs", "/v1/jobs/{id}"} <= endpoints, endpoints

        # --- JSON form cross-checks the text form.
        doc = _request(f"{base}/v1/metrics?format=json")
        by_name = {m["name"]: m for m in doc["metrics"]}
        json_completed = by_name["repro_jobs_completed_total"][
            "samples"][0]["value"]
        assert json_completed == completed, (json_completed, completed)
        sample = [s for s in by_name["repro_job_seconds"]["samples"]
                  if s["labels"] == {"algorithm": "emst"}][0]
        hist = histogram_from_sample(sample)
        p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
        assert 0.0 < p50 <= p99, (p50, p99)

        # --- the in-flight profile capture saw the traversal itself.
        assert "error" not in profile_box, \
            f"FAIL: /v1/profile capture failed: {profile_box['error']}"
        profile = profile_box.get("doc")
        assert profile and profile.get("enabled"), profile
        assert profile.get("samples", 0) > 0, \
            "FAIL: 2s capture during the workload collected no samples"
        traversal = sum(count for phase, count
                        in (profile.get("phases") or {}).items()
                        if phase in TRAVERSAL_PHASES)
        assert traversal >= 1, (
            f"FAIL: no sample attributed to a traversal phase "
            f"({sorted(TRAVERSAL_PHASES)}); saw {profile.get('phases')}")
        if args.profile_out:
            os.makedirs(os.path.dirname(os.path.abspath(args.profile_out)),
                        exist_ok=True)
            with open(args.profile_out, "w", encoding="utf-8") as fh:
                fh.write(render_collapsed(profile))

        print(f"ok: observability surface verified "
              f"(dataset={args.dataset})\n"
              f"  {int(completed)} jobs traced; emst latency "
              f"p50={p50 * 1e3:.1f}ms p99={p99 * 1e3:.1f}ms\n"
              f"  cache lookups: result/memory hit x"
              f"{int(lookups[('result', 'memory', 'hit')])}; "
              f"phase series: {', '.join(sorted(phases))}\n"
              f"  traced payload byte-identical to in-process reference\n"
              f"  profile: {profile['samples']} samples, {traversal} in "
              f"traversal phases"
              + (f" -> {args.profile_out}" if args.profile_out else ""))
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--port", type=int, default=8423)
    parser.add_argument("--dataset", default="Uniform100M2:10000")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--profile-out",
                        default="reports/PROFILE_smoke.collapsed",
                        help="write the captured collapsed-stack profile "
                             "here (empty string disables)")
    args = parser.parse_args(argv)
    return check_obs_surface(args)


if __name__ == "__main__":
    sys.exit(main())
