#!/usr/bin/env python
"""Calibration solver for the simulated-device cost model.

Runs the instrumented algorithms on the Hacc reference workload, then
solves for (a) the per-device compute throughput constants and (b) the
per-algorithm work-scale factors so that the simulated rates match the
paper's Figure-1 anchors:

    ArborX : 0.8 seq / 17.1 MT / 270.7 A100 / 180.3 MI250X  MFeatures/sec
    MemoGFK: 0.7 seq                                         MFeatures/sec
    MLPACK : 0.2 seq                                         MFeatures/sec

Everything else in the benchmark suite (other datasets, scaling sweeps,
phase breakdowns, k_pts sweeps, ablations) uses these constants unchanged.
Run after any change to kernels or counter accounting, and copy the
printed values into ``repro/kokkos/devices.py`` and
``repro.bench.harness.ALGORITHM_WORK_SCALE``.

Usage::

    python tools/calibrate_cost_model.py
"""

from __future__ import annotations

import math

from repro.bench.harness import run_arborx, run_memogfk, run_mlpack
from repro.data import generate
from repro.kokkos.costmodel import traversal_ops, weighted_ops
from repro.kokkos.devices import A100, EPYC_7763_MT, EPYC_7763_SEQ, MI250X_GCD

TARGETS_MF = {
    "arborx_seq": 0.8,
    "arborx_mt": 17.1,
    "arborx_a100": 270.7,
    "arborx_mi250x": 180.3,
    "memogfk_seq": 0.7,
    "mlpack_seq": 0.2,
}

REFERENCE = {"arborx_n": 30_000, "memogfk_n": 3_000, "mlpack_n": 1_500}


def sort_seconds(counters, rate: float) -> float:
    n = counters.sort_elements
    if n == 0:
        return 0.0
    return n * math.log2(max(n, 2)) / rate


def solve_rate(counters, device, target_seconds: float, *,
               serial_sort: bool, gpu: bool) -> float:
    """Compute throughput that makes the record hit ``target_seconds``."""
    sat = device.saturation(counters.max_batch)
    rate = device.serial_sort_rate if serial_sort else device.sort_rate * sat
    t_sort = sort_seconds(counters, rate)
    t_mem = counters.bytes_moved / device.mem_bandwidth
    t_launch = counters.kernel_launches * device.launch_overhead
    budget = target_seconds - t_sort - t_mem - t_launch
    if budget <= 0:
        raise SystemExit(
            f"{device.name}: fixed costs ({t_sort:.2e}s sort, {t_mem:.2e}s "
            f"mem, {t_launch:.2e}s launch) exceed the {target_seconds:.2e}s "
            "target; lower sort/launch constants first")
    trav = traversal_ops(counters)
    flat = weighted_ops(counters) - trav
    if gpu:
        trav *= counters.divergence_factor
    return (trav + flat) / (budget * sat)


def main() -> None:
    print("running reference workloads (Hacc generator)...")
    pts = generate("Hacc37M", REFERENCE["arborx_n"], seed=0)
    arborx = run_arborx(pts, "Hacc37M").total_counters
    feats = REFERENCE["arborx_n"] * 3

    t_seq = feats / (TARGETS_MF["arborx_seq"] * 1e6)
    t_mt = feats / (TARGETS_MF["arborx_mt"] * 1e6)
    t_a100 = feats / (TARGETS_MF["arborx_a100"] * 1e6)
    t_mi = feats / (TARGETS_MF["arborx_mi250x"] * 1e6)

    r_seq = solve_rate(arborx, EPYC_7763_SEQ, t_seq,
                       serial_sort=False, gpu=False)
    r_mt = solve_rate(arborx, EPYC_7763_MT, t_mt,
                      serial_sort=True, gpu=False)
    r_a100 = solve_rate(arborx, A100, t_a100, serial_sort=False, gpu=True)
    r_mi = solve_rate(arborx, MI250X_GCD, t_mi, serial_sort=False, gpu=True)

    print(f"EPYC_7763_SEQ.peak_ops_per_sec = {r_seq:.3e}")
    print(f"EPYC_7763_MT.peak_ops_per_sec  = {r_mt:.3e}"
          f"  (implied efficiency {r_mt / r_seq / 64:.2f} on 64 cores)")
    print(f"A100.peak_ops_per_sec          = {r_a100:.3e}")
    print(f"MI250X_GCD.peak_ops_per_sec    = {r_mi:.3e}"
          f"  ({r_mi / r_a100:.2f} of A100)")

    # Per-algorithm work scales against the solved sequential rate.
    memogfk = run_memogfk(generate("Hacc37M", REFERENCE["memogfk_n"], seed=0),
                          "Hacc37M").total_counters
    mlpack = run_mlpack(generate("Hacc37M", REFERENCE["mlpack_n"], seed=0),
                        "Hacc37M").total_counters
    for name, counters, n in (("MemoGFK", memogfk, REFERENCE["memogfk_n"]),
                              ("MLPACK", mlpack, REFERENCE["mlpack_n"])):
        target = (n * 3) / (TARGETS_MF[f"{name.lower()}_seq"] * 1e6)
        # Solve scale s: s * (W/r_seq + sort + mem) = target (launches ~0).
        base = (weighted_ops(counters) / r_seq
                + sort_seconds(counters, EPYC_7763_SEQ.sort_rate)
                + counters.bytes_moved / EPYC_7763_SEQ.mem_bandwidth)
        print(f"ALGORITHM_WORK_SCALE[{name!r}] = {target / base:.3f}")


if __name__ == "__main__":
    main()
