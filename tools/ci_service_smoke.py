#!/usr/bin/env python
"""CI smoke check: a served job must byte-match in-process execution.

Submits a deterministic dataset job to a running ``repro serve`` instance
over HTTP, recomputes the same job in-process through the pure executor
(:func:`repro.service.executor.execute_spec`), and asserts the two payloads
are byte-identical in canonical form (wall-clock ``phases`` stripped — see
:func:`repro.service.jobs.canonical_payload_bytes`).

Both legs of the CI backend matrix (``--backend thread`` and
``--backend process``) run this against the same spec; each leg agreeing
with the common in-process reference proves the backends agree with each
other, without shipping artifacts between jobs.  The canonical SHA-256 is
printed so the two legs' logs can also be compared directly.

Usage::

    python tools/ci_service_smoke.py --url http://127.0.0.1:8321 \
        --dataset Uniform100M2:10000 --expect-backend process
"""

import argparse
import hashlib
import json
import sys
import time
import urllib.request

from repro.service import JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec


def _request(url, data=None, timeout=90):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument("--dataset", default="Uniform100M2:10000")
    parser.add_argument("--algorithm", default="emst",
                        choices=("emst", "mrd_emst", "hdbscan"))
    parser.add_argument("--expect-backend", default=None,
                        help="fail unless /v1/healthz reports this backend")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")

    health = _request(f"{base}/v1/healthz")
    if args.expect_backend and health.get("backend") != args.expect_backend:
        print(f"FAIL: server runs backend {health.get('backend')!r}, "
              f"expected {args.expect_backend!r}", file=sys.stderr)
        return 1

    body = {"dataset": args.dataset, "algorithm": args.algorithm}
    job_id = _request(f"{base}/v1/jobs",
                      json.dumps(body).encode())["job_id"]
    deadline = time.monotonic() + args.timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result = _request(f"{base}/v1/jobs/{job_id}?wait={chunk:.1f}")
        if result.get("status") in ("done", "failed"):
            break
        if time.monotonic() >= deadline:
            print(f"FAIL: job {job_id} still {result.get('status')} after "
                  f"{args.timeout}s", file=sys.stderr)
            return 1
    if result["status"] != "done":
        print(f"FAIL: job failed: {result.get('error')}", file=sys.stderr)
        return 1
    served = canonical_payload_bytes(result["payload"])

    spec = JobSpec(dataset=args.dataset, algorithm=args.algorithm)
    spec.validate()
    reference = canonical_payload_bytes(
        execute_spec(make_exec_spec(spec))["payload"])

    served_sha = hashlib.sha256(served).hexdigest()
    if served != reference:
        print(f"FAIL: served payload diverges from in-process reference\n"
              f"  served    sha256={served_sha}\n"
              f"  reference sha256="
              f"{hashlib.sha256(reference).hexdigest()}", file=sys.stderr)
        return 1
    print(f"ok: served payload is byte-identical to in-process execution\n"
          f"  backend={health.get('backend')} dataset={args.dataset} "
          f"algorithm={args.algorithm}\n"
          f"  canonical sha256={served_sha}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
