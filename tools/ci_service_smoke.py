#!/usr/bin/env python
"""CI smoke check: a served job must byte-match in-process execution.

Default mode submits a deterministic dataset job to a running
``repro serve`` instance over HTTP, recomputes the same job in-process
through the pure executor (:func:`repro.service.executor.execute_spec`),
and asserts the two payloads are byte-identical in canonical form
(wall-clock ``phases`` stripped — see
:func:`repro.service.jobs.canonical_payload_bytes`).

Both legs of the CI backend matrix (``--backend thread`` and
``--backend process``) run this against the same spec; each leg agreeing
with the common in-process reference proves the backends agree with each
other, without shipping artifacts between jobs.  The canonical SHA-256 is
printed so the two legs' logs can also be compared directly.

``--restart-warmth`` instead runs the persistence acceptance path
end-to-end: it starts its *own* server with ``--store-dir``, submits a
job, **kills the server** (SIGKILL — a crash, not a drain), starts a new
one over the same store, and asserts that

* the exact-repeat job is answered from the **disk result tier**
  (``result_disk_hit``) with bytes matching the in-process reference, and
* a different job over the same points skips ``T_tree`` and ``T_core``
  via the **disk BVH and core-distance tiers**, again byte-identical.

Usage::

    python tools/ci_service_smoke.py --url http://127.0.0.1:8321 \
        --dataset Uniform100M2:10000 --expect-backend process
    python tools/ci_service_smoke.py --restart-warmth \
        --backend process --port 8422
"""

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.service import JobSpec, canonical_payload_bytes
from repro.service.executor import execute_spec, make_exec_spec


def _request(url, data=None, timeout=90):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _await_job(base, body, timeout):
    job_id = _request(f"{base}/v1/jobs",
                      json.dumps(body).encode())["job_id"]
    deadline = time.monotonic() + timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result = _request(f"{base}/v1/jobs/{job_id}?wait={chunk:.1f}")
        if result.get("status") in ("done", "failed"):
            return result
        if time.monotonic() >= deadline:
            raise SystemExit(f"FAIL: job {job_id} still "
                             f"{result.get('status')} after {timeout}s")


def _reference_bytes(body):
    spec = JobSpec.from_dict(body)
    return canonical_payload_bytes(
        execute_spec(make_exec_spec(spec))["payload"])


def check_served_vs_reference(args):
    """The original smoke: served payload == in-process execution."""
    base = args.url.rstrip("/")
    health = _request(f"{base}/v1/healthz")
    if args.expect_backend and health.get("backend") != args.expect_backend:
        print(f"FAIL: server runs backend {health.get('backend')!r}, "
              f"expected {args.expect_backend!r}", file=sys.stderr)
        return 1

    body = {"dataset": args.dataset, "algorithm": args.algorithm}
    result = _await_job(base, body, args.timeout)
    if result["status"] != "done":
        print(f"FAIL: job failed: {result.get('error')}", file=sys.stderr)
        return 1
    served = canonical_payload_bytes(result["payload"])
    reference = _reference_bytes(body)

    served_sha = hashlib.sha256(served).hexdigest()
    if served != reference:
        print(f"FAIL: served payload diverges from in-process reference\n"
              f"  served    sha256={served_sha}\n"
              f"  reference sha256="
              f"{hashlib.sha256(reference).hexdigest()}", file=sys.stderr)
        return 1
    print(f"ok: served payload is byte-identical to in-process execution\n"
          f"  backend={health.get('backend')} dataset={args.dataset} "
          f"algorithm={args.algorithm}\n"
          f"  canonical sha256={served_sha}")
    return 0


def _start_server(args, store_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(args.port),
         "--backend", args.backend, "--workers", "1",
         "--store-dir", store_dir],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    base = f"http://127.0.0.1:{args.port}"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: server exited early "
                             f"(code {proc.returncode})")
        try:
            health = _request(f"{base}/v1/healthz", timeout=5)
            if not health.get("persistent"):
                raise SystemExit("FAIL: server reports no persistent store")
            return proc, base
        except (urllib.error.URLError, OSError):
            time.sleep(0.25)
    proc.kill()
    raise SystemExit("FAIL: server never became healthy")


def check_restart_warmth(args):
    """serve → kill -9 → serve: repeats must warm from the disk store."""
    mrd = {"dataset": args.dataset, "algorithm": "mrd_emst", "k_pts": 4}
    hdb = {"dataset": args.dataset, "algorithm": "hdbscan", "k_pts": 4}
    store_dir = tempfile.mkdtemp(prefix="repro-smoke-store-")
    proc = None
    try:
        proc, base = _start_server(args, store_dir)
        cold = _await_job(base, mrd, args.timeout)
        assert cold["status"] == "done", cold.get("error")
        assert not cold["cache"]["result_hit"], cold["cache"]
        cold_bytes = canonical_payload_bytes(cold["payload"])

        proc.kill()  # a crash, not a graceful drain
        proc.wait(timeout=30)

        proc, base = _start_server(args, store_dir)
        warm = _await_job(base, mrd, args.timeout)
        assert warm["status"] == "done", warm.get("error")
        assert warm["cache"]["result_hit"], warm["cache"]
        assert warm["cache"]["result_disk_hit"], warm["cache"]
        warm_bytes = canonical_payload_bytes(warm["payload"])
        reference = _reference_bytes(mrd)
        assert warm_bytes == cold_bytes == reference, (
            "FAIL: disk-served repeat diverges from cold/reference bytes")

        other = _await_job(base, hdb, args.timeout)
        assert other["status"] == "done", other.get("error")
        assert other["cache"]["tree_disk_hit"], other["cache"]
        assert other["cache"]["core_disk_hit"], other["cache"]
        assert other["timings"]["algo_tree"] == 0.0, other["timings"]
        assert other["timings"]["algo_core"] == 0.0, other["timings"]
        assert canonical_payload_bytes(other["payload"]) == \
            _reference_bytes(hdb), (
            "FAIL: artifact-warm hdbscan diverges from in-process reference")

        stats = _request(f"{base}/v1/stats")
        for tier in ("result_cache", "tree_cache", "core_cache"):
            assert stats[tier]["disk"]["hits"] >= 1, (tier, stats[tier])
        print(f"ok: restart warmth verified "
              f"(backend={args.backend}, dataset={args.dataset})\n"
              f"  repeat: disk result hit, sha256="
              f"{hashlib.sha256(warm_bytes).hexdigest()}\n"
              f"  new job: T_tree and T_core skipped via disk tiers, "
              f"byte-identical to cold execution")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        shutil.rmtree(store_dir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument("--dataset", default="Uniform100M2:10000")
    parser.add_argument("--algorithm", default="emst",
                        choices=("emst", "mrd_emst", "hdbscan"))
    parser.add_argument("--expect-backend", default=None,
                        help="fail unless /v1/healthz reports this backend")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--restart-warmth", action="store_true",
                        help="run the serve → kill → serve persistence "
                             "check (starts its own servers)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="backend for --restart-warmth servers")
    parser.add_argument("--port", type=int, default=8422,
                        help="port for --restart-warmth servers")
    args = parser.parse_args(argv)

    if args.restart_warmth:
        # PYTHONPATH must reach the child server processes.
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        existing = os.environ.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                                        if existing else src)
        return check_restart_warmth(args)
    return check_served_vs_reference(args)


if __name__ == "__main__":
    sys.exit(main())
