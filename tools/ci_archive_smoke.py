#!/usr/bin/env python
"""CI smoke check for the tail-sampled trace archive (repro.obs.archive).

Boots a real ``repro serve`` subprocess with a store dir and aggressive
tail-sampling knobs, drives a mixed fast/slow/failing workload, then
asserts the retention contract end to end:

* every failure and every over-threshold job is served by
  ``GET /v1/traces`` (filterable by ``outcome`` and ``min_duration_ms``)
  while the fast majority is sampled down well below half;
* ``GET /v1/traces/<id>`` returns the archived record **byte-identical**
  to the trace that rode on the job body;
* ``GET /v1/admin/events`` and ``POST /v1/admin/dump`` answer, and the
  SLO burn-rate gauges show up on ``/v1/metrics``;
* after a **kill -9** and a restart over the same store dir, the error
  and slow traces are still served — the archive survived the crash.

Usage::

    python tools/ci_archive_smoke.py --port 8427
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

#: Jobs past this wall time are always retained (served as --trace-slow-ms).
SLOW_MS = 150.0
#: Probability a fast, successful trace is kept (served as --trace-sample).
SAMPLE = 0.02
#: Fast jobs submitted; with SAMPLE=0.02 roughly one survives.
N_FAST = 40

#: Passes submit validation, fails at runtime (hdbscan needs >= 2 points)
#: — a guaranteed-retained "failed" trace.
FAILING_SPEC = {"points": [[0.0, 0.0]], "algorithm": "hdbscan"}


def _request(url, data=None, timeout=90, raw=False):
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        body = resp.read()
        return body.decode() if raw else json.loads(body)


def _await_job(base, body, timeout):
    job_id = _request(f"{base}/v1/jobs",
                      json.dumps(body).encode())["job_id"]
    deadline = time.monotonic() + timeout
    while True:
        chunk = max(0.0, min(deadline - time.monotonic(), 30.0))
        result = _request(f"{base}/v1/jobs/{job_id}?wait={chunk:.1f}")
        if result.get("status") in ("done", "failed"):
            return result
        if time.monotonic() >= deadline:
            raise SystemExit(f"FAIL: job {job_id} still "
                             f"{result.get('status')} after {timeout}s")


def _start_server(port, store_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "1", "--store-dir", store_dir,
         "--trace-slow-ms", str(SLOW_MS), "--trace-sample", str(SAMPLE)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    base = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: server exited early "
                             f"(code {proc.returncode})")
        try:
            _request(f"{base}/v1/healthz", timeout=5)
            return proc, base
        except (urllib.error.URLError, OSError):
            time.sleep(0.25)
    proc.kill()
    raise SystemExit("FAIL: server never became healthy")


def _canonical(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _drive_workload(base, timeout):
    """Mixed workload; returns (fast results, slow result, failed results)."""
    fast = [_await_job(
        base, {"dataset": f"Uniform100M2:300:{seed}", "algorithm": "emst"},
        timeout) for seed in range(N_FAST)]
    slow = _await_job(
        base, {"dataset": "Uniform100M2:30000", "algorithm": "hdbscan",
               "k_pts": 4}, timeout)
    failed = [_await_job(base, FAILING_SPEC, timeout) for _ in range(2)]
    for result in fast:
        assert result["status"] == "done", result.get("error")
    assert slow["status"] == "done", slow.get("error")
    assert all(r["status"] == "failed" for r in failed), failed
    return fast, slow, failed


def check_archive(args):
    store_dir = tempfile.mkdtemp(prefix="repro-archive-smoke-")
    proc, base = _start_server(args.port, store_dir)
    try:
        fast, slow, failed = _drive_workload(base, args.timeout)

        # --- retention: failures and the slow job always survive.
        doc = _request(f"{base}/v1/traces?outcome=failed&limit=500")
        failed_ids = {r["trace"]["trace_id"] for r in failed
                      if r.get("trace")}
        archived_failed = {rec["trace_id"] for rec in doc["traces"]}
        assert failed_ids and failed_ids <= archived_failed, (
            failed_ids, archived_failed)
        doc = _request(f"{base}/v1/traces?min_duration_ms={SLOW_MS}"
                       f"&outcome=done&limit=500")
        slow_id = slow["trace"]["trace_id"]
        slow_ids = {rec["trace_id"] for rec in doc["traces"]}
        assert slow_id in slow_ids, (slow_id, slow_ids)

        # --- and the fast majority was sampled down.
        doc = _request(f"{base}/v1/traces?limit=500")
        fast_ids = {r["trace"]["trace_id"] for r in fast}
        kept_fast = fast_ids & {rec["trace_id"] for rec in doc["traces"]}
        assert len(kept_fast) < N_FAST / 2, (
            f"FAIL: {len(kept_fast)}/{N_FAST} fast traces retained — "
            f"tail sampling is not shedding")

        # --- archived record is byte-identical to the job-body trace.
        rec = _request(f"{base}/v1/traces/{slow_id}")
        assert _canonical(rec["trace"]) == _canonical(slow["trace"]), \
            "FAIL: archived trace diverges from the job-body trace"
        assert rec["reason"] == "slow" and rec["outcome"] == "done", rec

        # --- flight recorder + events + SLO gauges answer.
        events = _request(f"{base}/v1/admin/events?limit=10")
        assert events["events"] and events["stats"]["seen"] > 0, events
        bundle = _request(f"{base}/v1/admin/dump", data=b"{}")
        assert bundle["role"] == "node" and bundle["slo"], bundle.keys()
        assert bundle["trace_archive"]["records"] >= 3, \
            bundle["trace_archive"]
        text = _request(f"{base}/v1/metrics", raw=True)
        assert "repro_slo_burn_rate{" in text, \
            "FAIL: SLO burn-rate gauges missing from /v1/metrics"
        assert "repro_trace_archive_retained_total{" in text

        # --- kill -9, restart over the same store dir: the error and
        # slow traces must have survived the crash.
        proc.kill()
        proc.wait(timeout=30)
        proc, base = _start_server(args.port, store_dir)
        doc = _request(f"{base}/v1/traces?limit=500")
        survivors = {rec["trace_id"] for rec in doc["traces"]}
        missing = (failed_ids | {slow_id}) - survivors
        assert not missing, \
            f"FAIL: traces lost across kill -9 restart: {missing}"
        rec = _request(f"{base}/v1/traces/{slow_id}")
        assert _canonical(rec["trace"]) == _canonical(slow["trace"]), \
            "FAIL: restarted node serves a mutated archived trace"

        print(f"ok: trace archive verified across kill -9 restart\n"
              f"  retained: {len(failed_ids)} failed + 1 slow; "
              f"fast sampled {len(kept_fast)}/{N_FAST}\n"
              f"  archived records byte-identical to job-body traces, "
              f"pre-crash traces served after restart\n"
              f"  events/dump/SLO surfaces answered")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        shutil.rmtree(store_dir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--port", type=int, default=8427)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)
    return check_archive(args)


if __name__ == "__main__":
    sys.exit(main())
