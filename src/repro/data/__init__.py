"""Synthetic datasets mirroring the paper's evaluation inputs (Section 4).

The paper's datasets are 10M–500M points of real trajectory, road, GPS and
cosmology data.  Those files are not redistributable (and far exceed this
environment), so each is replaced by a generator reproducing its
*distributional character* at 10^3–10^5 scale — the property the EMST
algorithms are actually sensitive to:

==================  ====  ==============================================
paper dataset       dim   generator character
==================  ====  ==============================================
Ngsim               2     three long highway bands (car trajectories)
NgsimLocation3      2     a single highway band
PortoTaxi           2     taxi random-walk trajectories from city hotspots
RoadNetwork3D       2     jittered road-network polylines (North Jutland)
GeoLife24M3D        3     extreme hot-spot density skew (GPS logs)
Hacc37M / Hacc497M  3     cosmology: halos + filaments + background
VisualVar10M2D/3D   2/3   Gan–Tao style varying-density clusters
Normal*M2 / *M3     2/3   i.i.d. standard normal
Uniform*M2 / *M3    2/3   uniform in the unit square/cube
==================  ====  ==============================================

All generators take ``(n, seed)`` and are deterministic given both.
``repro.data.sampling`` implements the distribution-preserving subsampling
used by the paper's scaling study (Section 4.3).
"""

from repro.data.generators import (
    DATASETS,
    dataset_dimension,
    generate,
    generate_from_spec,
    parse_dataset_spec,
    geolife,
    hacc,
    ngsim,
    ngsim_location3,
    normal,
    portotaxi,
    roadnetwork,
    uniform,
    visualvar,
)
from repro.data.sampling import sample_preserving

__all__ = [
    "DATASETS",
    "generate",
    "generate_from_spec",
    "parse_dataset_spec",
    "dataset_dimension",
    "uniform",
    "normal",
    "visualvar",
    "hacc",
    "geolife",
    "roadnetwork",
    "ngsim",
    "ngsim_location3",
    "portotaxi",
    "sample_preserving",
]
