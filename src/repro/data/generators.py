"""Dataset generators (see :mod:`repro.data` for the paper mapping)."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import DimensionError, InvalidInputError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_n(n: int) -> None:
    if n < 1:
        raise InvalidInputError(f"dataset size must be >= 1, got {n}")


def uniform(n: int, dim: int = 2, seed: int = 0) -> np.ndarray:
    """Uniform points in the unit square/cube centered at the origin."""
    _check_n(n)
    if dim not in (2, 3):
        raise DimensionError(f"dim must be 2 or 3, got {dim}")
    return _rng(seed).random((n, dim)) - 0.5


def normal(n: int, dim: int = 2, seed: int = 0) -> np.ndarray:
    """i.i.d. standard normal points (zero mean, unit deviation)."""
    _check_n(n)
    if dim not in (2, 3):
        raise DimensionError(f"dim must be 2 or 3, got {dim}")
    return _rng(seed).standard_normal((n, dim))


def visualvar(n: int, dim: int = 2, seed: int = 0,
              n_clusters: int = 12) -> np.ndarray:
    """Varying-density clusters in the style of Gan & Tao's generator.

    Cluster sizes follow a power law and cluster radii are chosen so local
    densities span several orders of magnitude; 2% of points are uniform
    noise.  This is the "VisualVar" character: visually distinct clusters
    with strongly varying variance.
    """
    _check_n(n)
    if dim not in (2, 3):
        raise DimensionError(f"dim must be 2 or 3, got {dim}")
    rng = _rng(seed)
    n_noise = max(n // 50, 1) if n >= 10 else 0
    n_clustered = n - n_noise

    weights = rng.pareto(1.2, size=n_clusters) + 0.5
    weights /= weights.sum()
    sizes = rng.multinomial(n_clustered, weights)
    centers = rng.random((n_clusters, dim))
    # Radii spread over ~2.5 decades -> density varies by >5 decades in 2D.
    radii = 10.0 ** rng.uniform(-3.0, -0.5, size=n_clusters)

    chunks = []
    for c in range(n_clusters):
        if sizes[c] == 0:
            continue
        chunks.append(centers[c]
                      + radii[c] * rng.standard_normal((sizes[c], dim)))
    if n_noise:
        chunks.append(rng.random((n_noise, dim)))
    pts = np.concatenate(chunks, axis=0)[:n]
    return pts[rng.permutation(pts.shape[0])]


def hacc(n: int, seed: int = 0, *, n_halos: int = 40,
         halo_fraction: float = 0.65,
         filament_fraction: float = 0.2) -> np.ndarray:
    """Cosmology-like 3D point set (the Hacc37M/Hacc497M stand-in).

    N-body snapshots concentrate mass in *halos* (steep radial profiles)
    connected by *filaments* over a diffuse background.  The generator
    places Pareto-size halos with ``r ~ u^2``-concentrated profiles, strings
    filament points between nearby halo pairs, and fills the rest
    uniformly — reproducing the multi-scale clustering that makes Hacc the
    *best-performing* dataset for tree-based EMST in the paper.
    """
    _check_n(n)
    rng = _rng(seed)
    n_halo_pts = int(n * halo_fraction)
    n_fil = int(n * filament_fraction)
    n_bg = n - n_halo_pts - n_fil

    centers = rng.random((n_halos, 3))
    weights = rng.pareto(1.0, size=n_halos) + 0.3
    weights /= weights.sum()
    sizes = rng.multinomial(n_halo_pts, weights)
    scale_radii = 10.0 ** rng.uniform(-2.6, -1.3, size=n_halos)

    chunks = []
    for h in range(n_halos):
        if sizes[h] == 0:
            continue
        # Concentrated radial profile: r = r_s * u^2 puts most points in
        # the core with a shallow tail, qualitatively NFW-like.
        u = rng.random(sizes[h])
        r = scale_radii[h] * (u ** 2.0) * 8.0
        direction = rng.standard_normal((sizes[h], 3))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        chunks.append(centers[h] + r[:, None] * direction)

    if n_fil > 0 and n_halos >= 2:
        # Filaments between each halo and its nearest neighbors.
        d2 = np.sum((centers[:, None] - centers[None]) ** 2, axis=2)
        np.fill_diagonal(d2, np.inf)
        partner = np.argmin(d2, axis=1)
        which = rng.integers(0, n_halos, size=n_fil)
        t = rng.random(n_fil)
        a = centers[which]
        b = centers[partner[which]]
        jitter = 0.004 * rng.standard_normal((n_fil, 3))
        chunks.append(a + t[:, None] * (b - a) + jitter)

    if n_bg > 0:
        chunks.append(rng.random((n_bg, 3)))
    pts = np.concatenate(chunks, axis=0)[:n]
    return pts[rng.permutation(pts.shape[0])]


def geolife(n: int, seed: int = 0, *, n_hotspots: int = 6) -> np.ndarray:
    """Extremely skewed 3D GPS-log stand-in (the GeoLife pathology).

    Most points concentrate in a handful of hyper-dense hotspots (sigma
    ~1e-5 of the domain) while the rest spread over a continent-sized
    extent, with a nearly degenerate third (altitude) coordinate.  This is
    the density contrast that under-resolves the Z-curve and makes GeoLife
    the worst case for every implementation in the paper (Section 4.1).
    """
    _check_n(n)
    rng = _rng(seed)
    n_hot = int(n * 0.9)
    n_travel = n - n_hot

    hotspot_centers = rng.random((n_hotspots, 2)) * 40.0  # "degrees"
    weights = rng.pareto(0.8, size=n_hotspots) + 0.2
    weights /= weights.sum()
    sizes = rng.multinomial(n_hot, weights)
    chunks = []
    for h in range(n_hotspots):
        if sizes[h] == 0:
            continue
        # Hotspot extent below the 21-bit Z-curve cell size of the 40-degree
        # domain (40 / 2^21 ~ 1.9e-5) in *every* dimension: points inside a
        # hotspot collapse onto a handful of Morton codes, reproducing the
        # under-resolution pathology the paper reports for GeoLife
        # (Section 4.1) — the hierarchy inside a hotspot degenerates to
        # index order with fully overlapping bounding volumes.
        sigma = 10.0 ** rng.uniform(-5.3, -4.5)
        xy = hotspot_centers[h] + sigma * rng.standard_normal((sizes[h], 2))
        alt = 0.05 + 1e-6 * rng.standard_normal((sizes[h], 1))
        chunks.append(np.concatenate([xy, alt], axis=1))
    if n_travel:
        # Sparse inter-city travel: segments between random hotspots.
        a = hotspot_centers[rng.integers(0, n_hotspots, n_travel)]
        b = hotspot_centers[rng.integers(0, n_hotspots, n_travel)]
        t = rng.random((n_travel, 1))
        xy = a + t * (b - a) + 0.02 * rng.standard_normal((n_travel, 2))
        alt = 0.3 + 0.1 * rng.random((n_travel, 1))  # flights higher up
        chunks.append(np.concatenate([xy, alt], axis=1))
    pts = np.concatenate(chunks, axis=0)[:n]
    return pts[rng.permutation(pts.shape[0])]


def roadnetwork(n: int, seed: int = 0, *, grid: int = 12) -> np.ndarray:
    """Road-network stand-in (RoadNetwork3D: North Jutland, 2D points).

    Points sampled along the edges of a jittered grid of roads plus a few
    diagonal arterials — 1D structure embedded in 2D, low density contrast.
    """
    _check_n(n)
    rng = _rng(seed)
    # Build road segments: grid streets with jittered vertices.
    xs = np.linspace(0.0, 1.0, grid)
    verts = np.stack(np.meshgrid(xs, xs), axis=-1).reshape(-1, 2)
    verts = verts + 0.015 * rng.standard_normal(verts.shape)
    segs = []
    for i in range(grid):
        for j in range(grid - 1):
            segs.append((verts[i * grid + j], verts[i * grid + j + 1]))
            segs.append((verts[j * grid + i], verts[(j + 1) * grid + i]))
    for _ in range(grid // 2):  # arterials
        a, b = rng.integers(0, verts.shape[0], 2)
        segs.append((verts[a], verts[b]))
    segs_a = np.array([s[0] for s in segs])
    segs_b = np.array([s[1] for s in segs])
    lengths = np.linalg.norm(segs_b - segs_a, axis=1)
    prob = lengths / lengths.sum()
    which = rng.choice(len(segs), size=n, p=prob)
    t = rng.random((n, 1))
    pts = segs_a[which] + t * (segs_b[which] - segs_a[which])
    pts += 0.0008 * rng.standard_normal(pts.shape)  # GPS noise
    return pts


def _highway(n: int, rng: np.random.Generator, origin: np.ndarray,
             heading: float, length: float, lanes: int = 4) -> np.ndarray:
    """Points along one highway: lanes parallel to a gently curving axis."""
    s = np.sort(rng.random(n)) * length
    curve = 0.03 * length * np.sin(s / length * 3.0)
    lane = rng.integers(0, lanes, size=n) * 0.004
    lateral = lane + 0.0012 * rng.standard_normal(n)
    c, sn = np.cos(heading), np.sin(heading)
    x = origin[0] + c * s - sn * (curve + lateral)
    y = origin[1] + sn * s + c * (curve + lateral)
    return np.stack([x, y], axis=1)


def ngsim_location3(n: int, seed: int = 0) -> np.ndarray:
    """A single highway of car-trajectory points (NgsimLocation3, 2D)."""
    _check_n(n)
    rng = _rng(seed)
    return _highway(n, rng, np.array([0.0, 0.0]), 0.4, 2.0)


def ngsim(n: int, seed: int = 0) -> np.ndarray:
    """Three highways of car-trajectory points (Ngsim, 2D)."""
    _check_n(n)
    rng = _rng(seed)
    sizes = [n - 2 * (n // 3), n // 3, n // 3]
    hw = [
        _highway(sizes[0], rng, np.array([0.0, 0.0]), 0.4, 2.0),
        _highway(sizes[1], rng, np.array([3.0, 1.0]), -0.7, 1.5),
        _highway(sizes[2], rng, np.array([-1.0, 2.5]), 1.2, 1.8),
    ]
    pts = np.concatenate(hw, axis=0)[:n]
    return pts[rng.permutation(pts.shape[0])]


def portotaxi(n: int, seed: int = 0, *, n_taxis: int = 60) -> np.ndarray:
    """Taxi-trajectory stand-in (PortoTaxi, 2D).

    Each taxi performs a random walk starting from one of a few city
    hotspots; successive GPS fixes are strongly autocorrelated, giving the
    chain-like local structure of real trajectory data.
    """
    _check_n(n)
    rng = _rng(seed)
    hotspots = rng.random((5, 2))
    per_taxi = np.full(n_taxis, n // n_taxis)
    per_taxi[: n - per_taxi.sum()] += 1
    chunks = []
    for t in range(n_taxis):
        m = int(per_taxi[t])
        if m == 0:
            continue
        start = hotspots[rng.integers(0, hotspots.shape[0])]
        steps = 0.004 * rng.standard_normal((m, 2))
        drift = 0.002 * rng.standard_normal(2)
        path = start + np.cumsum(steps + drift, axis=0)
        chunks.append(path)
    pts = np.concatenate(chunks, axis=0)[:n]
    return pts[rng.permutation(pts.shape[0])]


# ---------------------------------------------------------------------------
# Registry mapping the paper's dataset names to generators.

GeneratorFn = Callable[[int, int], np.ndarray]

DATASETS: Dict[str, Tuple[GeneratorFn, int]] = {
    "GeoLife24M3D": (lambda n, seed: geolife(n, seed), 3),
    "RoadNetwork3D": (lambda n, seed: roadnetwork(n, seed), 2),
    "Ngsim": (lambda n, seed: ngsim(n, seed), 2),
    "NgsimLocation3": (lambda n, seed: ngsim_location3(n, seed), 2),
    "PortoTaxi": (lambda n, seed: portotaxi(n, seed), 2),
    "VisualVar10M2D": (lambda n, seed: visualvar(n, 2, seed), 2),
    "VisualVar10M3D": (lambda n, seed: visualvar(n, 3, seed), 3),
    "Normal100M3": (lambda n, seed: normal(n, 3, seed), 3),
    "Normal100M2": (lambda n, seed: normal(n, 2, seed), 2),
    "Normal300M2": (lambda n, seed: normal(n, 2, seed + 1), 2),
    "Uniform100M2": (lambda n, seed: uniform(n, 2, seed), 2),
    "Uniform100M3": (lambda n, seed: uniform(n, 3, seed), 3),
    "Uniform300M3": (lambda n, seed: uniform(n, 3, seed + 1), 3),
    "Hacc37M": (lambda n, seed: hacc(n, seed), 3),
    "Hacc497M": (lambda n, seed: hacc(n, seed + 1), 3),
}


def generate(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` points of the named paper dataset."""
    if name not in DATASETS:
        raise InvalidInputError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    fn, _ = DATASETS[name]
    return fn(n, seed)


def dataset_dimension(name: str) -> int:
    """Spatial dimension of the named dataset."""
    if name not in DATASETS:
        raise InvalidInputError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[name][1]


def parse_dataset_spec(spec: str) -> Tuple[str, int, int]:
    """Validate a ``NAME:N[:SEED]`` spec and return ``(name, n, seed)``.

    A leading ``dataset:`` prefix (the CLI convention) is accepted and
    ignored.  Raises :class:`InvalidInputError` for an unknown dataset
    name, non-integer size/seed, or a non-positive size — so callers (the
    CLI and the service submit path) can reject bad specs up front.
    """
    parts = spec.split(":")
    if parts and parts[0] == "dataset":
        parts = parts[1:]
    if len(parts) not in (2, 3):
        raise InvalidInputError(
            f"bad dataset spec {spec!r}; use dataset:NAME:N[:SEED]")
    name = parts[0]
    if name not in DATASETS:
        raise InvalidInputError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    try:
        n = int(parts[1])
        seed = int(parts[2]) if len(parts) == 3 else 0
    except ValueError:
        raise InvalidInputError(
            f"bad dataset spec {spec!r}: size and seed must be integers")
    if n < 1:
        raise InvalidInputError(f"dataset size must be >= 1, got {n}")
    if seed < 0:
        raise InvalidInputError(f"dataset seed must be >= 0, got {seed}")
    return name, n, seed


def generate_from_spec(spec: str) -> np.ndarray:
    """Generate points from a ``NAME:N[:SEED]`` spec string.

    Shared by the CLI and the service layer so both resolve dataset specs
    identically; see :func:`parse_dataset_spec` for the accepted form.
    """
    name, n, seed = parse_dataset_spec(spec)
    return generate(name, n, seed=seed)
