"""Distribution-preserving subsampling (the paper's scaling study, §4.3).

"We try to maintain a given distribution by randomly sampling a large
dataset a specified number of times, producing a subset with the same data
distribution" — a uniform random subset without replacement, which is what
random sampling of an empirical distribution means.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInputError


def sample_preserving(points: np.ndarray, m: int, seed: int = 0) -> np.ndarray:
    """Uniform random subset of ``m`` points (without replacement).

    Raises when ``m`` exceeds the population — silently padding would break
    the scaling study's semantics.
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise InvalidInputError(f"expected (n, d) points, got {points.shape}")
    n = points.shape[0]
    if not 1 <= m <= n:
        raise InvalidInputError(f"cannot sample {m} of {n} points")
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=m, replace=False)
    return points[idx]


def sample_sweep(points: np.ndarray, sizes, seed: int = 0):
    """Yield ``(m, subset)`` for each requested size (clamped to ``n``).

    Sizes are deduplicated and sorted ascending, mirroring the sweep axis
    of Figure 7.
    """
    n = points.shape[0]
    seen = set()
    for m in sorted(int(s) for s in sizes):
        m = min(m, n)
        if m in seen:
            continue
        seen.add(m)
        yield m, sample_preserving(points, m, seed=seed)
