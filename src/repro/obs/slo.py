"""Declarative SLOs evaluated into multi-window burn-rate gauges.

An :class:`SLO` states an objective over metrics the registry already
collects — "99.9% of jobs complete successfully", "95% of jobs finish
under 1 s" — and :class:`SloEngine` turns the cumulative counters behind
it into the two numbers an operator actually pages on:

* **burn rate** per sliding window: the error rate over the window
  divided by the rate the objective budgets for.  1.0 means the budget
  is being spent exactly on schedule; 14 means a 30-day budget is gone
  in ~2 days.  Exposed as ``repro_slo_burn_rate{slo,window}``.
* **budget remaining**: the fraction of the all-time error budget still
  unspent, ``repro_slo_budget_remaining{slo}``.

The engine holds no collector threads: it snapshots the underlying
counters lazily, whenever a gauge is scraped (with a small guard so the
several SLO gauges on one ``/v1/metrics`` page share a snapshot), and
keeps a bounded deque of timestamped snapshots spanning the longest
window.  Burn over a window is the delta between the freshest snapshot
and the one closest to the window boundary — no per-request bookkeeping,
so the job hot path pays nothing.

Sources are the existing families, read directly (never via
``registry.as_dict()``, which would re-enter the SLO gauges themselves):

* availability: ``repro_jobs_completed_total`` (total, counts failures
  too) and ``repro_jobs_failed_total`` (bad);
* latency: the ``repro_job_seconds`` histogram, summed across its
  ``algorithm`` labels — good = observations at or under the bucket
  bound matching ``threshold_s``, so thresholds must sit on a bucket
  boundary (validated at registration).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .registry import MetricsRegistry

#: Default burn-rate windows (seconds): fast page, slow ticket.
DEFAULT_WINDOWS: Tuple[float, ...] = (300.0, 3600.0)

#: Minimum seconds between two counter snapshots — the SLO gauges on one
#: metrics page all trigger collection; they should share one snapshot.
_SNAPSHOT_GUARD_S = 0.05


def format_window(seconds: float) -> str:
    """``300.0 -> "5m"``, ``3600.0 -> "1h"`` — stable gauge label values."""
    seconds = float(seconds)
    if seconds < 60 or seconds % 60:
        return f"{seconds:g}s"
    if seconds < 3600 or seconds % 3600:
        return f"{int(seconds // 60)}m"
    return f"{int(seconds // 3600)}h"


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``kind`` is ``"availability"`` (good = job did not fail) or
    ``"latency"`` (good = job ran in at most ``threshold_s`` seconds;
    required, and must equal one of the ``repro_job_seconds`` bucket
    bounds so the histogram can answer exactly).
    """

    name: str
    kind: str
    target: float
    threshold_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and self.threshold_s is None:
            raise ValueError(f"latency SLO {self.name!r} needs threshold_s")


#: The stock objectives every engine ships with: jobs succeed, and the
#: overwhelming majority finish within a second.
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO("availability", "availability", 0.999,
        description="Jobs complete without failure."),
    SLO("latency_1s", "latency", 0.95, threshold_s=1.0,
        description="Jobs finish within 1 s end to end."),
)


@dataclass
class _Counts:
    """Cumulative (bad, total) for one SLO at one instant."""

    bad: float = 0.0
    total: float = 0.0


class SloEngine:
    """Evaluate :class:`SLO` objectives from a registry's own counters."""

    def __init__(self, registry: MetricsRegistry,
                 slos: Tuple[SLO, ...] = DEFAULT_SLOS,
                 windows: Tuple[float, ...] = DEFAULT_WINDOWS,
                 clock: Callable[[], float] = time.time) -> None:
        if not slos:
            raise ValueError("SloEngine needs at least one SLO")
        if not windows or any(w <= 0 for w in windows):
            raise ValueError(f"bad windows {windows!r}")
        self.registry = registry
        self.slos = tuple(slos)
        self.windows = tuple(sorted(float(w) for w in windows))
        self._clock = clock
        self._lock = threading.Lock()
        # Idempotent re-registration hands back the live families the
        # scheduler and engine write into (creating them zeroed if the
        # SLO engine boots first).
        self._completed = registry.counter(
            "repro_jobs_completed_total",
            "Jobs whose runner finished (success or failure).")
        self._failed = registry.counter(
            "repro_jobs_failed_total",
            "Jobs that ended in failure (raised or absorbed).")
        self._job_h = registry.histogram(
            "repro_job_seconds",
            "End-to-end runner seconds per job, by algorithm.",
            labels=("algorithm",))
        for slo in self.slos:
            if slo.kind == "latency" \
                    and slo.threshold_s not in self._job_h.buckets:
                raise ValueError(
                    f"latency SLO {slo.name!r}: threshold_s="
                    f"{slo.threshold_s} is not a repro_job_seconds bucket "
                    f"bound {self._job_h.buckets}")
        #: (ts, {slo name: _Counts}), oldest first, spanning max(windows).
        self._snapshots: Deque[Tuple[float, Dict[str, _Counts]]] = deque()
        # Seed the baseline now, so the very first scrape already has a
        # window start to diff against.
        self._snapshots.append((self._clock(), self._read_counts()))
        registry.gauge(
            "repro_slo_target", "Declared objective target, per SLO.",
            labels=("slo",),
            fn=lambda: {(s.name,): s.target for s in self.slos})
        registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per sliding window "
            "(1.0 = spending exactly on budget).",
            labels=("slo", "window"), fn=self._burn_gauge)
        registry.gauge(
            "repro_slo_budget_remaining",
            "Fraction of the all-time error budget still unspent, per SLO.",
            labels=("slo",), fn=self._budget_gauge)

    # ------------------------------------------------------------- collection

    def _read_counts(self) -> Dict[str, _Counts]:
        latency_samples = None
        out: Dict[str, _Counts] = {}
        for slo in self.slos:
            if slo.kind == "availability":
                out[slo.name] = _Counts(bad=self._failed.value(),
                                        total=self._completed.value())
                continue
            if latency_samples is None:
                latency_samples = self._job_h.samples()
            bound_idx = self._job_h.buckets.index(slo.threshold_s)
            good = total = 0.0
            for sample in latency_samples:
                counts = sample.get("counts") or ()
                good += sum(counts[:bound_idx + 1])
                total += sum(counts)
            out[slo.name] = _Counts(bad=total - good, total=total)
        return out

    def _snapshot(self) -> Tuple[float, Dict[str, _Counts]]:
        """Append a fresh snapshot (or reuse a just-taken one)."""
        now = self._clock()
        with self._lock:
            if self._snapshots \
                    and now - self._snapshots[-1][0] < _SNAPSHOT_GUARD_S:
                return self._snapshots[-1]
            counts = self._read_counts()
            self._snapshots.append((now, counts))
            # Keep exactly one snapshot at or beyond the longest window's
            # boundary so every window always has a baseline to diff
            # against.
            horizon = now - self.windows[-1]
            while len(self._snapshots) >= 2 \
                    and self._snapshots[1][0] <= horizon:
                self._snapshots.popleft()
            return self._snapshots[-1]

    def _baseline(self, now: float, window: float,
                  ) -> Tuple[float, Dict[str, _Counts]]:
        """The snapshot closest to (at or before) the window boundary."""
        boundary = now - window
        with self._lock:
            chosen = self._snapshots[0]
            for ts, counts in self._snapshots:
                if ts > boundary:
                    break
                chosen = (ts, counts)
            return chosen

    # ------------------------------------------------------------ evaluation

    def burn_rates(self) -> Dict[Tuple[str, str], float]:
        """``{(slo, window label): burn rate}`` for every SLO × window."""
        now, fresh = self._snapshot()
        out: Dict[Tuple[str, str], float] = {}
        for window in self.windows:
            _base_ts, base = self._baseline(now, window)
            for slo in self.slos:
                cur = fresh.get(slo.name, _Counts())
                old = base.get(slo.name, _Counts())
                d_total = cur.total - old.total
                d_bad = cur.bad - old.bad
                burn = 0.0
                if d_total > 0:
                    burn = (d_bad / d_total) / (1.0 - slo.target)
                out[(slo.name, format_window(window))] = burn
        return out

    def budget_remaining(self) -> Dict[str, float]:
        """``{slo: fraction of the all-time error budget unspent}``."""
        _now, fresh = self._snapshot()
        out: Dict[str, float] = {}
        for slo in self.slos:
            counts = fresh.get(slo.name, _Counts())
            if counts.total <= 0:
                out[slo.name] = 1.0
                continue
            spent = (counts.bad / counts.total) / (1.0 - slo.target)
            out[slo.name] = 1.0 - spent
        return out

    def report(self) -> List[Dict[str, Any]]:
        """JSON-safe evaluation of every SLO (CLI / flight-recorder form)."""
        burn = self.burn_rates()
        budget = self.budget_remaining()
        _now, fresh = self._snapshot()
        out: List[Dict[str, Any]] = []
        for slo in self.slos:
            counts = fresh.get(slo.name, _Counts())
            out.append({
                "name": slo.name,
                "kind": slo.kind,
                "target": slo.target,
                "threshold_s": slo.threshold_s,
                "description": slo.description,
                "total": counts.total,
                "bad": counts.bad,
                "budget_remaining": budget[slo.name],
                "burn_rate": {
                    format_window(w): burn[(slo.name, format_window(w))]
                    for w in self.windows},
            })
        return out

    # --------------------------------------------------------------- gauges

    def _burn_gauge(self) -> Dict[Tuple[str, str], float]:
        return self.burn_rates()

    def _budget_gauge(self) -> Dict[Tuple[str], float]:
        return {(name,): value
                for name, value in self.budget_remaining().items()}
