"""Continuous sampling profiler + runtime resource telemetry.

Answers "where do the cycles go on a *live* server" — the question the
source paper answers with hardware counters and this reproduction, until
now, could only answer with offline benchmarks.  Two collaborating
pieces, both stdlib-only and both fully disabled with the rest of the
obs layer (``REPRO_OBS=off`` / ``Engine(obs=False)``):

:class:`SamplingProfiler`
    A daemon thread walks :func:`sys._current_frames` at a low default
    rate (:data:`DEFAULT_PROFILE_HZ`) and appends one record per sampled
    thread into a bounded ring.  Each record carries the thread's stack
    (collapsed-form frames, outermost first) and the engine phase the
    thread was executing, read from the thread→phase registry that
    :meth:`repro.timing.PhaseTimer.phase` maintains — phase names are
    exactly the span-child names the trace layer emits (``resolve``,
    ``tree``, ``core``, ``mst``, ``tree_build``, ``compute``,
    ``dispatch``), which is what ties a wall-clock sample back to the
    span a job was in.  ``GET /v1/profile?seconds=&hz=`` bursts the
    sampling rate for an on-demand capture; without ``seconds=`` the
    endpoint answers instantly from the ring of recent samples.

:class:`ResourceCollector`
    ``/proc``-based RSS and CPU for the parent process and any
    process-pool workers (collect-on-scrape gauges, so an idle process
    pays nothing), plus GC pause timing via ``gc.callbacks`` into a
    ``repro_gc_pause_seconds`` histogram.

The profile wire document is JSON; :func:`render_collapsed` turns it
(or a router-merged fleet document) into standard collapsed-stack text
(``frame;frame;... count``) that ``flamegraph.pl`` and speedscope read
directly.  Stacks are prefixed with the attributed phase — and, in
fleet documents, with the node name — so a flamegraph splits by node
and phase at the root.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.timing import active_phases, phase_registry_size

__all__ = [
    "DEFAULT_PROFILE_HZ",
    "MAX_PROFILE_HZ",
    "MAX_PROFILE_SECONDS",
    "ResourceCollector",
    "SamplingProfiler",
    "merge_profiles",
    "render_collapsed",
]

#: Default always-on sampling rate.  Low and deliberately off any round
#: frequency so the sampler cannot phase-lock with periodic work; the
#: <3% overhead gate in ``benchmarks/bench_obs.py`` prices in exactly
#: this rate.
DEFAULT_PROFILE_HZ = 17.0
#: Hardest the wire surface lets a capture drive the sampler.
MAX_PROFILE_HZ = 199.0
#: Longest single on-demand capture (captures hold an HTTP worker).
MAX_PROFILE_SECONDS = 30.0
#: Deepest stack recorded per sample; frames beyond this are dropped
#: from the root end (the leaf side is what profiles are read for).
MAX_STACK_DEPTH = 64
#: Ring capacity in samples (one sample = one thread at one tick).  At
#: the default rate with a handful of threads this is minutes of
#: history; a burst capture recycles it in seconds, which is fine — a
#: capture only aggregates records newer than its own start.
DEFAULT_RING_SAMPLES = 8192
#: Most distinct (phase, stack) rows one profile document reports.
MAX_PROFILE_STACKS = 500

#: Sub-millisecond-capable buckets: GC pauses and event-loop lag live
#: well below the request-latency bucket floor.
PAUSE_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)

_SRC_MARKERS = (os.sep + "src" + os.sep, os.sep + "site-packages" + os.sep,
                os.sep + "lib" + os.sep)


def _short_file(filename: str) -> str:
    """A recognizable short form of a frame's source path."""
    for marker in _SRC_MARKERS:
        index = filename.rfind(marker)
        if index >= 0:
            return filename[index + len(marker):]
    parts = filename.rsplit(os.sep, 2)
    return os.sep.join(parts[-2:]) if len(parts) > 1 else filename


def _format_frame(filename: str, name: str, lineno: int) -> str:
    """One collapsed-stack frame token: ``file:func:line``.

    No spaces or semicolons — both are structural in the collapsed
    format (``flamegraph.pl`` splits frames on ``;`` and the trailing
    count on the last space).
    """
    token = f"{_short_file(filename)}:{name}:{lineno}"
    return token.replace(";", ",").replace(" ", "_")


def _walk_stack(frame: Any) -> Tuple[str, ...]:
    """The frame's stack as collapsed tokens, outermost first."""
    frames: List[str] = []
    while frame is not None and len(frames) < MAX_STACK_DEPTH:
        code = frame.f_code
        frames.append(_format_frame(code.co_filename, code.co_name,
                                    frame.f_lineno))
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class SamplingProfiler:
    """Always-on wall-clock sampler with on-demand burst captures."""

    def __init__(self, registry: MetricsRegistry, *,
                 hz: float = DEFAULT_PROFILE_HZ,
                 ring_samples: int = DEFAULT_RING_SAMPLES,
                 auto_start: bool = True) -> None:
        if not 0 < hz <= MAX_PROFILE_HZ:
            raise ValueError(
                f"profile hz must be in (0, {MAX_PROFILE_HZ}], got {hz}")
        self.registry = registry
        self.hz = float(hz)
        #: (monotonic ts, thread name, phase-or-None, stack tuple).
        self._ring: Deque[Tuple[float, str, Optional[str],
                                Tuple[str, ...]]] = deque(
            maxlen=ring_samples)
        self._samples_c = registry.counter(
            "repro_profile_samples_total",
            "Profiler samples taken, by phase-attribution state.",
            labels=("state",))
        self._in_phase_h = self._samples_c.labels(state="in_phase")
        self._idle_h = self._samples_c.labels(state="unattributed")
        self._sampling_seconds = 0.0
        registry.gauge(
            "repro_profile_sampling_seconds_total",
            "Cumulative wall seconds the profiler spent taking samples.",
            fn=lambda: self._sampling_seconds)
        self._started_mono = time.monotonic()
        self._burst_lock = threading.Lock()
        self._burst_until = 0.0
        self._burst_interval = 0.0
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if auto_start:
            self.start()

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and wait for it (idempotent)."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        self._thread = None

    # ------------------------------------------------------------ sampling

    def _interval(self) -> float:
        now = time.monotonic()
        with self._burst_lock:
            if now < self._burst_until and self._burst_interval > 0:
                return self._burst_interval
        return 1.0 / self.hz

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._wake.wait(self._interval())
            self._wake.clear()

    def sample_once(self) -> int:
        """Take one sample of every live thread; returns threads sampled.

        Public so tests can sample deterministically while threads sit
        in known phases, without racing the background loop's timing.
        """
        t0 = time.perf_counter()
        now = time.monotonic()
        frames = sys._current_frames()
        phases = active_phases()
        names = {t.ident: t.name for t in threading.enumerate()}
        own = threading.get_ident()
        sampled = 0
        for ident, frame in frames.items():
            if ident == own:
                continue  # the sampler observing itself is pure noise
            stack = _walk_stack(frame)
            if not stack:
                continue
            phase = phases.get(ident)
            self._ring.append((now, names.get(ident, f"thread-{ident}"),
                               phase, stack))
            (self._in_phase_h if phase is not None
             else self._idle_h).inc()
            sampled += 1
        del frames  # drop the frame references promptly
        self._sampling_seconds += time.perf_counter() - t0
        return sampled

    # ------------------------------------------------------------- capture

    def capture(self, seconds: float,
                hz: Optional[float] = None) -> Dict[str, Any]:
        """Burst-sample for ``seconds`` and return the captured profile.

        Temporarily raises the background loop's rate to ``hz`` (default
        :data:`MAX_PROFILE_HZ` capped at 4x the steady rate floor of
        50 Hz), blocks the calling thread for the window, then
        aggregates only the ring records taken inside it.  Concurrent
        captures simply extend each other's burst window.
        """
        seconds = max(0.0, min(float(seconds), MAX_PROFILE_SECONDS))
        rate = min(float(hz) if hz else max(50.0, self.hz), MAX_PROFILE_HZ)
        start = time.monotonic()
        deadline = start + seconds
        with self._burst_lock:
            self._burst_until = max(self._burst_until, deadline)
            self._burst_interval = 1.0 / rate
        self._wake.set()  # pull the sampler out of its steady-rate sleep
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, 0.05))
        return self.profile_doc(since=start, hz=rate,
                                duration_s=time.monotonic() - start)

    def profile_doc(self, since: Optional[float] = None,
                    hz: Optional[float] = None,
                    duration_s: Optional[float] = None) -> Dict[str, Any]:
        """The JSON profile document over ring records newer than
        ``since`` (monotonic; ``None`` = the whole ring)."""
        records = [r for r in list(self._ring)
                   if since is None or r[0] >= since]
        counts: Dict[Tuple[Optional[str], Tuple[str, ...]], int] = {}
        phase_counts: Dict[str, int] = {}
        threads = set()
        in_phase = 0
        for _, name, phase, stack in records:
            threads.add(name)
            counts[(phase, stack)] = counts.get((phase, stack), 0) + 1
            if phase is not None:
                in_phase += 1
                phase_counts[phase] = phase_counts.get(phase, 0) + 1
        stacks = [{"phase": phase, "stack": list(stack), "count": count}
                  for (phase, stack), count in sorted(
                      counts.items(), key=lambda item: -item[1])]
        truncated = max(0, len(stacks) - MAX_PROFILE_STACKS)
        if truncated:
            stacks = stacks[:MAX_PROFILE_STACKS]
        span = 0.0
        if records:
            span = records[-1][0] - records[0][0]
        return {
            "version": 1,
            "enabled": True,
            "hz": float(hz if hz is not None else self.hz),
            "default_hz": self.hz,
            "duration_s": float(duration_s if duration_s is not None
                                else span),
            "samples": len(records),
            "in_phase_samples": in_phase,
            "threads": sorted(threads),
            "phases": dict(sorted(phase_counts.items(),
                                  key=lambda item: -item[1])),
            "stacks": stacks,
            "truncated_stacks": truncated,
        }

    # ---------------------------------------------------------------- misc

    def stats(self) -> Dict[str, Any]:
        """Small JSON-safe summary for ``/v1/admin/dump`` and benches."""
        in_phase = self._in_phase_h.value
        unattributed = self._idle_h.value
        return {
            "hz": self.hz,
            "running": bool(self._thread is not None
                            and self._thread.is_alive()),
            "samples_total": int(in_phase + unattributed),
            "in_phase_samples": int(in_phase),
            "unattributed_samples": int(unattributed),
            "sampling_seconds": self._sampling_seconds,
            "uptime_seconds": time.monotonic() - self._started_mono,
            "ring_samples": len(self._ring),
            "phase_registry_threads": phase_registry_size(),
        }


def empty_profile_doc() -> Dict[str, Any]:
    """The well-formed answer of a profiler-less (obs-off) engine."""
    return {"version": 1, "enabled": False, "hz": 0.0, "default_hz": 0.0,
            "duration_s": 0.0, "samples": 0, "in_phase_samples": 0,
            "threads": [], "phases": {}, "stacks": [],
            "truncated_stacks": 0}


def render_collapsed(doc: Dict[str, Any]) -> str:
    """A profile document as collapsed-stack text.

    Lines are ``phase;frame;...;frame count`` (root first, leaf last),
    the input format of ``flamegraph.pl`` and speedscope.  Unattributed
    samples root at ``idle``; node-tagged stacks (router merges) root at
    ``node;phase``.
    """
    lines: List[str] = []
    for row in doc.get("stacks", []):
        prefix: List[str] = []
        node = row.get("node")
        if node:
            prefix.append(str(node).replace(";", ",").replace(" ", "_"))
        prefix.append(row.get("phase") or "idle")
        frames = prefix + list(row.get("stack", []))
        lines.append(f"{';'.join(frames)} {int(row.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_profiles(per_node: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-node profile documents into one fleet document.

    Every stack row gains a ``node`` tag; counts, phases and thread
    lists pool across nodes (threads are prefixed ``node:``); the fleet
    ``hz``/``duration_s`` report the maximum over nodes.
    """
    merged = empty_profile_doc()
    stacks: List[Dict[str, Any]] = []
    for node, doc in sorted(per_node.items()):
        if not isinstance(doc, dict):
            continue
        merged["enabled"] = bool(merged["enabled"] or doc.get("enabled"))
        merged["hz"] = max(merged["hz"], float(doc.get("hz", 0.0)))
        merged["default_hz"] = max(merged["default_hz"],
                                   float(doc.get("default_hz", 0.0)))
        merged["duration_s"] = max(merged["duration_s"],
                                   float(doc.get("duration_s", 0.0)))
        merged["samples"] += int(doc.get("samples", 0))
        merged["in_phase_samples"] += int(doc.get("in_phase_samples", 0))
        merged["truncated_stacks"] += int(doc.get("truncated_stacks", 0))
        merged["threads"].extend(f"{node}:{name}"
                                 for name in doc.get("threads", []))
        for phase, count in (doc.get("phases") or {}).items():
            merged["phases"][phase] = \
                merged["phases"].get(phase, 0) + int(count)
        for row in doc.get("stacks", []):
            stacks.append({**row, "node": node})
    stacks.sort(key=lambda row: -int(row.get("count", 0)))
    merged["truncated_stacks"] += max(0, len(stacks) - MAX_PROFILE_STACKS)
    merged["stacks"] = stacks[:MAX_PROFILE_STACKS]
    return merged


# --------------------------------------------------------------- resources

class ResourceCollector:
    """``/proc``-based process telemetry + GC pause histograms.

    Registers collect-on-scrape gauges for parent/worker RSS and CPU (an
    idle process pays nothing; hosts without ``/proc`` read zeros) and a
    ``gc.callbacks`` hook timing every collector pause.  ``worker_pids``
    is a zero-arg callable yielding the current process-pool worker pids
    (the pool can be replaced after a crash, so pids are read live).
    """

    def __init__(self, registry: MetricsRegistry, *,
                 worker_pids: Optional[Any] = None) -> None:
        self.registry = registry
        self._worker_pids = worker_pids or (lambda: [])
        try:
            self._page_size = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError, AttributeError):
            self._page_size = 4096
        try:
            self._clk_tck = os.sysconf("SC_CLK_TCK")
        except (ValueError, OSError, AttributeError):
            self._clk_tck = 100
        registry.gauge(
            "repro_process_rss_bytes",
            "Resident set size of the serving processes, by role.",
            labels=("role",), fn=self._collect_rss)
        registry.gauge(
            "repro_process_cpu_seconds",
            "Cumulative user+system CPU seconds, by role.",
            labels=("role",), fn=self._collect_cpu)
        self._gc_pause_h = registry.histogram(
            "repro_gc_pause_seconds",
            "Stop-the-world garbage-collector pause durations.",
            buckets=PAUSE_BUCKETS)
        self._gc_start: Optional[float] = None
        self._gc_cb_installed = False
        if registry.enabled:
            gc.callbacks.append(self._gc_callback)
            self._gc_cb_installed = True

    # --------------------------------------------------------------- /proc

    def _read_rss(self, pid: int) -> Optional[int]:
        try:
            with open(f"/proc/{pid}/statm", "rb") as fh:
                fields = fh.read().split()
            return int(fields[1]) * self._page_size
        except (OSError, IndexError, ValueError):
            return None

    def _read_cpu(self, pid: int) -> Optional[float]:
        try:
            with open(f"/proc/{pid}/stat", "rb") as fh:
                raw = fh.read().decode("ascii", "replace")
            # The comm field may contain spaces; parse after its ')'.
            fields = raw.rsplit(")", 1)[1].split()
            utime, stime = int(fields[11]), int(fields[12])
            return (utime + stime) / float(self._clk_tck)
        except (OSError, IndexError, ValueError):
            return None

    def _pids(self) -> Dict[str, List[int]]:
        try:
            workers = [int(p) for p in self._worker_pids()]
        except Exception:  # noqa: BLE001 — a dying pool must not break scrapes
            workers = []
        return {"parent": [os.getpid()], "worker": workers}

    def _collect_rss(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for role, pids in self._pids().items():
            values = [v for v in (self._read_rss(p) for p in pids)
                      if v is not None]
            if values or role == "parent":
                out[role] = float(sum(values))
        return out

    def _collect_cpu(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for role, pids in self._pids().items():
            values = [v for v in (self._read_cpu(p) for p in pids)
                      if v is not None]
            if values or role == "parent":
                out[role] = float(sum(values))
        return out

    # ------------------------------------------------------------------ gc

    def _gc_callback(self, gc_phase: str, info: Dict[str, Any]) -> None:
        if gc_phase == "start":
            self._gc_start = time.perf_counter()
        elif gc_phase == "stop" and self._gc_start is not None:
            self._gc_pause_h.observe(time.perf_counter() - self._gc_start)
            self._gc_start = None

    # ---------------------------------------------------------------- misc

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-safe resource snapshot for ``/v1/admin/dump``."""
        workers = []
        for pid in self._pids()["worker"]:
            workers.append({"pid": pid, "rss_bytes": self._read_rss(pid),
                            "cpu_seconds": self._read_cpu(pid)})
        parent_pid = os.getpid()
        gc_hist = self._gc_pause_h.histogram()
        return {
            "ts": time.time(),
            "parent": {"pid": parent_pid,
                       "rss_bytes": self._read_rss(parent_pid),
                       "cpu_seconds": self._read_cpu(parent_pid)},
            "workers": workers,
            "gc": {"collections": int(gc_hist.count),
                   "pause_seconds_sum": float(gc_hist.sum)},
        }

    def close(self) -> None:
        """Remove the GC hook (idempotent)."""
        if self._gc_cb_installed:
            try:
                gc.callbacks.remove(self._gc_callback)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._gc_cb_installed = False
