"""repro.obs — metrics registry, per-job tracing, structured events.

The observability layer for the serving stack: every component registers
its counters/gauges/histograms into a :class:`MetricsRegistry`, jobs
carry span traces on ``JobResult.trace``, and both are exposed over
``GET /v1/metrics`` and the ``repro top`` / ``repro trace`` CLI.

Instrumentation is gated by the ``REPRO_OBS`` environment variable (see
:func:`obs_enabled`): ``REPRO_OBS=off`` turns every registry write into a
single attribute check, which is what ``benchmarks/bench_obs.py`` uses to
bound the overhead.
"""

from __future__ import annotations

import os

from repro.obs.archive import (
    DEFAULT_ARCHIVE_BYTES,
    DEFAULT_SAMPLE,
    DEFAULT_SLOW_THRESHOLD_S,
    RetentionPolicy,
    TraceArchive,
)
from repro.obs.events import EventLog
from repro.obs.profiler import (
    DEFAULT_PROFILE_HZ,
    MAX_PROFILE_HZ,
    MAX_PROFILE_SECONDS,
    ResourceCollector,
    SamplingProfiler,
    empty_profile_doc,
    merge_profiles,
    render_collapsed,
)
from repro.obs.registry import (
    REGISTRY,
    MetricsRegistry,
    histogram_from_sample,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    DEFAULT_WINDOWS,
    SLO,
    SloEngine,
    format_window,
)
from repro.obs.trace import (
    TRACE_HEADER,
    format_trace,
    from_header,
    make_span,
    make_trace,
    new_trace_id,
    to_header,
)

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})


def obs_enabled(default: bool = True) -> bool:
    """Whether instrumentation is on, per the ``REPRO_OBS`` env knob.

    Unset (or anything not clearly negative) means *on* — observability
    defaults to present; ``REPRO_OBS=off|0|false|no`` disables the hot
    paths for overhead measurement.
    """
    raw = os.environ.get("REPRO_OBS")
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in _OFF_VALUES


__all__ = [
    "DEFAULT_ARCHIVE_BYTES",
    "DEFAULT_PROFILE_HZ",
    "DEFAULT_SAMPLE",
    "DEFAULT_SLOS",
    "DEFAULT_SLOW_THRESHOLD_S",
    "DEFAULT_WINDOWS",
    "EventLog",
    "MAX_PROFILE_HZ",
    "MAX_PROFILE_SECONDS",
    "MetricsRegistry",
    "REGISTRY",
    "ResourceCollector",
    "RetentionPolicy",
    "SLO",
    "SamplingProfiler",
    "SloEngine",
    "TRACE_HEADER",
    "TraceArchive",
    "empty_profile_doc",
    "format_window",
    "format_trace",
    "from_header",
    "histogram_from_sample",
    "make_span",
    "make_trace",
    "merge_profiles",
    "new_trace_id",
    "obs_enabled",
    "parse_prometheus_text",
    "render_collapsed",
    "render_prometheus",
    "to_header",
]
