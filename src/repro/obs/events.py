"""Structured JSONL event log with deterministic sampling.

Replaces the serving stack's suppressed ``BaseHTTPRequestHandler.log_message``
(which discarded every access log line) with a structured alternative: one
JSON object per line, written to a stream when one is attached, and always
retained in a bounded in-memory ring for inspection via stats.

Sampling is deterministic — a counter, not a RNG — so a sample rate of
``0.1`` keeps exactly every 10th event and test runs are reproducible.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, TextIO


class EventLog:
    """A sampled, bounded, optionally stream-backed structured log."""

    def __init__(self, stream: Optional[TextIO] = None, *,
                 sample: float = 1.0, max_buffer: int = 256) -> None:
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be positive: {max_buffer}")
        self.stream = stream
        self.sample = float(sample)
        self._lock = threading.Lock()
        self._buffer: "deque[Dict[str, Any]]" = deque(maxlen=max_buffer)
        self._seen = 0
        self._emitted = 0
        self._written = 0

    def emit(self, event: str, **fields: Any) -> bool:
        """Record one event; returns whether sampling kept it.

        The keep rule ``int(n * sample) != int((n - 1) * sample)`` admits
        an exact ``sample`` fraction of the stream with no randomness:
        ``sample >= 1`` keeps everything, ``sample <= 0`` nothing.
        """
        with self._lock:
            self._seen += 1
            n = self._seen
            if self.sample >= 1.0:
                keep = True
            elif self.sample <= 0.0:
                keep = False
            else:
                keep = int(n * self.sample) != int((n - 1) * self.sample)
            if not keep:
                return False
            self._emitted += 1
            record = {"ts": round(time.time(), 6), "event": event, **fields}
            self._buffer.append(record)
            stream = self.stream
            if stream is not None:
                line = json.dumps(record, separators=(",", ":"),
                                  default=str)
                try:
                    stream.write(line + "\n")
                    self._written += 1
                except (OSError, ValueError):
                    pass  # a dead stream must never fail the request path
        return True

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent retained events, oldest first."""
        with self._lock:
            events = list(self._buffer)
        return events if n is None else events[-n:]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"seen": self._seen, "emitted": self._emitted,
                    "written": self._written,
                    "sampled_out": self._seen - self._emitted,
                    "sample": self.sample}
