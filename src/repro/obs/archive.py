"""Tail-sampled trace retention with a crash-safe on-disk JSONL ring.

Per-job span trees (PR 6) die with their ``JobResult`` — useful live,
useless for postmortems.  This module keeps the traces worth keeping:

* :class:`RetentionPolicy` decides, at job completion, whether a trace is
  retained and *why*.  The tail is always kept — failures, traces whose
  routing history shows a lost job or a failed-over hop, and anything
  slower than the latency threshold — while the fast majority is sampled
  deterministically (a counter, not a RNG, so tests and CI replays see
  the exact same keeps).
* :class:`TraceArchive` is a bounded ring of retained trace records,
  always queryable in memory and — with a directory attached — mirrored
  to an append-only ``traces.jsonl`` that survives restarts.  Durability
  mirrors :class:`repro.store.disk.DiskStore`: appends are plain JSONL
  lines; once the file accumulates enough dead lines (evicted records),
  it is compacted by atomic temp-write + fsync + ``os.replace``; opening
  replays the file and *self-heals* — a torn final line (writer killed
  mid-append) is quarantined, never fatal, and orphaned compaction temps
  are swept.

The archived ``trace`` object is stored verbatim — the exact dict that
rode ``JobResult.trace`` — so a trace served later from
``GET /v1/traces/<id>`` is byte-identical (canonical JSON) to what the
client saw in flight.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Default byte budget for the retained-trace ring (memory and disk).
DEFAULT_ARCHIVE_BYTES = 16 << 20
#: Default latency threshold (seconds) above which a trace is always kept
#: — aligned to a ``DEFAULT_LATENCY_BUCKETS`` bound so the SLO engine and
#: the archive agree on what "slow" means.
DEFAULT_SLOW_THRESHOLD_S = 0.25
#: Default keep fraction for the fast majority (deterministic).
DEFAULT_SAMPLE = 0.05
#: Hard cap on records in the ring regardless of byte budget.
MAX_ARCHIVE_RECORDS = 8192

#: Dead (evicted) journal lines tolerated before the file is compacted.
_COMPACT_SLACK = 256

_ARCHIVE_NAME = "traces.jsonl"
_QUARANTINE_DIR = "quarantine"

#: Span names / hop outcomes that mark a trace as routing-anomalous.
_ANOMALY_SPANS = frozenset({"lost", "shed"})
_ANOMALY_HOPS = frozenset({"unavailable", "overloaded", "lost"})


@dataclass
class RetentionPolicy:
    """Keep/drop decision for one completed job's trace.

    ``decide`` returns the retention *reason* (``failed`` / ``lost`` /
    ``failover`` / ``slow`` / ``sampled``) or ``None`` for a drop.  The
    sampling counter advances only for jobs that none of the always-keep
    rules claimed, so the sample rate applies to the fast majority alone.
    """

    slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S
    sample: float = DEFAULT_SAMPLE

    def __post_init__(self) -> None:
        if self.slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be >= 0, got {self.slow_threshold_s}")
        if not 0.0 <= self.sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {self.sample}")
        self._fast_seen = 0
        self._lock = threading.Lock()

    def decide(self, *, outcome: str, duration_s: float,
               trace: Optional[Dict[str, Any]]) -> Optional[str]:
        if outcome != "done":
            return "failed"
        anomaly = self._routing_anomaly(trace)
        if anomaly is not None:
            return anomaly
        if duration_s >= self.slow_threshold_s:
            return "slow"
        with self._lock:
            self._fast_seen += 1
            n = self._fast_seen
        if self.sample >= 1.0:
            return "sampled"
        if self.sample <= 0.0:
            return None
        # The EventLog keep rule: admits an exact `sample` fraction of the
        # fast stream with no randomness.
        if int(n * self.sample) != int((n - 1) * self.sample):
            return "sampled"
        return None

    @staticmethod
    def _routing_anomaly(trace: Optional[Dict[str, Any]]) -> Optional[str]:
        """``lost`` / ``failover`` if the routing history shows trouble.

        A ``lost`` marker span means the job was transparently re-executed
        after its node died; a ``route`` hop whose outcome is not
        ``accepted`` means a failover happened on the way in.  Both are
        exactly the traces a postmortem needs, however fast the retry ran.
        """
        if not trace:
            return None
        for span in trace.get("spans", ()):
            if not isinstance(span, dict):
                continue
            if span.get("name") in _ANOMALY_SPANS:
                return "lost"
            meta = span.get("meta") or {}
            if span.get("name") == "route" \
                    and meta.get("outcome") in _ANOMALY_HOPS:
                return "failover"
        return None


class TraceArchive:
    """Bounded, queryable, optionally disk-backed ring of kept traces.

    All methods are thread-safe.  With ``directory=None`` the ring is
    memory-only (the pre-store engine posture); with a directory, every
    retained record appends one JSONL line and restarts replay the file.
    An archive write failure (full disk, read-only volume) degrades to
    memory-only operation — archiving must never fail the job it records.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 max_bytes: int = DEFAULT_ARCHIVE_BYTES,
                 max_records: int = MAX_ARCHIVE_RECORDS,
                 policy: Optional[RetentionPolicy] = None,
                 registry: Optional[Any] = None) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {max_records}")
        self.policy = policy or RetentionPolicy()
        self.max_bytes = int(max_bytes)
        self.max_records = int(max_records)
        self.directory = os.path.abspath(directory) if directory else None
        self._path = os.path.join(self.directory, _ARCHIVE_NAME) \
            if self.directory else None
        self._lock = threading.Lock()
        #: (nbytes of the serialized line, record), oldest first.
        self._records: Deque[Tuple[int, Dict[str, Any]]] = deque()
        self._bytes = 0
        self._file_lines = 0
        self._offered = 0
        self._dropped = 0
        self._write_errors = 0
        self._retained_by_reason: Dict[str, int] = {}
        self.healed: Dict[str, int] = {}
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
            self._open()
        if registry is not None:
            self._register(registry)

    # ------------------------------------------------------------ open & heal

    def _open(self) -> None:
        """Replay ``traces.jsonl``, healing crash damage as it goes.

        A line that fails to parse is quarantined (the evidence is kept
        under ``quarantine/``, out of the hot path) and skipped — the one
        expected case is the torn final line of a writer killed
        mid-append.  Orphaned compaction temps are swept.  The file is
        then rewritten clean, so damage never accumulates.
        """
        healed = {"bad_lines": 0, "orphan_tmp": 0}
        records: List[Tuple[int, Dict[str, Any]]] = []
        bad: List[str] = []
        if os.path.exists(self._path):
            with open(self._path, "r", encoding="utf-8",
                      errors="replace") as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                        if not isinstance(record, dict) \
                                or "trace_id" not in record:
                            raise ValueError("not a trace record")
                    except (ValueError, TypeError):
                        healed["bad_lines"] += 1
                        bad.append(line)
                        continue
                    records.append((len(line.encode("utf-8")), record))
        for name in os.listdir(self.directory):
            if name.startswith(_ARCHIVE_NAME + "."):
                os.unlink(os.path.join(self.directory, name))
                healed["orphan_tmp"] += 1
        if bad:
            self._quarantine(bad)
        self._records = deque(records)
        self._bytes = sum(nbytes for nbytes, _ in self._records)
        self._evict_over_budget()
        self.healed = healed
        try:
            self._compact()
        except OSError:
            self._write_errors += 1

    def _quarantine(self, lines: List[str]) -> None:
        """Keep unparseable journal bytes as evidence, best-effort."""
        qdir = os.path.join(self.directory, _QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            fd, path = tempfile.mkstemp(dir=qdir, prefix="torn-",
                                        suffix=".jsonl")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.writelines(lines)
            del path
        except OSError:
            pass

    # ---------------------------------------------------------------- journal

    def _append_line(self, line: str) -> None:
        with open(self._path, "a", encoding="utf-8") as fh:
            fh.write(line)
        self._file_lines += 1
        if self._file_lines > len(self._records) + _COMPACT_SLACK:
            self._compact()

    def _compact(self) -> None:
        """Atomically rewrite the file as exactly the live records."""
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix=_ARCHIVE_NAME + ".")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for _nbytes, record in self._records:
                    fh.write(json.dumps(record, separators=(",", ":"),
                                        sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._file_lines = len(self._records)

    def _evict_over_budget(self) -> None:
        while self._records and (
                self._bytes > self.max_bytes
                or len(self._records) > self.max_records):
            nbytes, _record = self._records.popleft()
            self._bytes -= nbytes

    # -------------------------------------------------------------------- api

    def offer(self, *, job_id: str, trace: Optional[Dict[str, Any]],
              outcome: str, algorithm: str, duration_s: float,
              node: str = "", ts: float = 0.0) -> Optional[str]:
        """Apply the retention policy to one completed job.

        Returns the retention reason, or ``None`` when the trace was
        sampled out.  Jobs without a trace (``REPRO_OBS=off`` upstream)
        are counted but never retained.
        """
        with self._lock:
            self._offered += 1
        if trace is None:
            with self._lock:
                self._dropped += 1
            return None
        reason = self.policy.decide(outcome=outcome, duration_s=duration_s,
                                    trace=trace)
        if reason is None:
            with self._lock:
                self._dropped += 1
            return None
        record = {
            "trace_id": trace.get("trace_id", ""),
            "job_id": job_id,
            "node": node,
            "ts": round(float(ts), 6),
            "outcome": outcome,
            "algorithm": algorithm,
            "duration_s": float(duration_s),
            "reason": reason,
            "trace": trace,
        }
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        with self._lock:
            self._records.append((len(line.encode("utf-8")), record))
            self._bytes += len(line.encode("utf-8"))
            self._retained_by_reason[reason] = \
                self._retained_by_reason.get(reason, 0) + 1
            self._evict_over_budget()
            if self._path is not None:
                try:
                    self._append_line(line)
                except OSError:
                    self._write_errors += 1
        return reason

    def query(self, *, since: Optional[float] = None,
              min_duration_s: Optional[float] = None,
              outcome: Optional[str] = None,
              algorithm: Optional[str] = None,
              limit: int = 50) -> List[Dict[str, Any]]:
        """Matching records, slowest first (what "show me the slowest
        traces in the last hour" wants), bounded by ``limit``."""
        with self._lock:
            records = [record for _nbytes, record in self._records]
        out = []
        for record in records:
            if since is not None and record.get("ts", 0.0) < since:
                continue
            if min_duration_s is not None \
                    and record.get("duration_s", 0.0) < min_duration_s:
                continue
            if outcome is not None and record.get("outcome") != outcome:
                continue
            if algorithm is not None \
                    and record.get("algorithm") != algorithm:
                continue
            out.append(record)
        out.sort(key=lambda r: (-r.get("duration_s", 0.0),
                                -r.get("ts", 0.0)))
        return out[:max(0, int(limit))]

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The newest record for ``trace_id``, or ``None``."""
        with self._lock:
            for _nbytes, record in reversed(self._records):
                if record.get("trace_id") == trace_id:
                    return record
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "records": len(self._records),
                "bytes": self._bytes,
                "offered": self._offered,
                "retained": sum(self._retained_by_reason.values()),
                "dropped": self._dropped,
                "by_reason": dict(self._retained_by_reason),
                "write_errors": self._write_errors,
                "persistent": self._path is not None,
                "path": self._path,
                "healed": dict(self.healed),
            }

    # ---------------------------------------------------------------- metrics

    def _register(self, registry: Any) -> None:
        self._retained_c = registry.counter(
            "repro_trace_archive_retained_total",
            "Traces retained by the tail-sampling policy, by reason.",
            labels=("reason",))
        self._dropped_c = registry.counter(
            "repro_trace_archive_dropped_total",
            "Completed jobs whose trace the policy sampled out.")
        registry.gauge(
            "repro_trace_archive_bytes",
            "Bytes currently held by the trace-archive ring.",
            fn=lambda: float(self._bytes))
        registry.gauge(
            "repro_trace_archive_records",
            "Trace records currently queryable in the archive.",
            fn=lambda: float(len(self._records)))
        # Mirror the internal tallies into the registry on every offer by
        # wrapping: cheaper to re-point offer than to double-count here.
        inner_offer = self.offer

        def counted_offer(**kwargs: Any) -> Optional[str]:
            reason = inner_offer(**kwargs)
            if reason is None:
                self._dropped_c.inc()
            else:
                self._retained_c.inc(reason=reason)
            return reason

        self.offer = counted_offer  # type: ignore[method-assign]
