"""The metrics registry: counters, gauges and latency histograms.

A :class:`MetricsRegistry` is the instrumentation seam of the serving
stack: the engine, the batch scheduler, the tiered caches and the cluster
router all register their instruments into one registry, and the HTTP
front ends expose it as ``GET /v1/metrics`` — Prometheus text format by
default, JSON with ``?format=json``.

Design points:

* **Lock-cheap hot path.**  ``inc``/``observe`` take one uncontended
  per-family lock around an int/float add (histograms: one bisect plus
  three adds, see :class:`repro.metrics.Histogram`).  When the registry is
  *disabled* (``REPRO_OBS=off``) every write is a single attribute check
  — the overhead benchmark (``benchmarks/bench_obs.py``) measures exactly
  this gap.
* **Registry per serving component, not per process.**  An
  :class:`~repro.service.engine.Engine` owns its registry (test suites
  and ``cluster-demo`` boot several engines in one process; a global
  registry would pool their counters and break per-node statistics).
  :data:`REGISTRY` is the process-default for standalone use.
* **Mergeable exposition.**  :meth:`MetricsRegistry.as_dict` is the JSON
  wire form; :func:`render_prometheus` turns one or many such documents
  into a single valid Prometheus text page, attaching extra labels per
  document — which is how the cluster router re-exports every node's
  metrics under a ``node=`` label in one fleet-wide scrape surface.

Families are created idempotently (``registry.counter(name)`` returns the
existing family on repeat calls), so components wired to one registry can
share label families — e.g. all three cache tiers report into one
``repro_cache_lookups_total{tier=,level=,outcome=}`` family.
"""

from __future__ import annotations

import re
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.metrics import DEFAULT_LATENCY_BUCKETS, Histogram

#: Metric kinds a family can have.
KINDS = ("counter", "gauge", "histogram")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


class Handle:
    """One labeled child of a family; the object hot paths hold on to."""

    __slots__ = ("family", "key")

    def __init__(self, family: "MetricFamily", key: Tuple[str, ...]) -> None:
        self.family = family
        self.key = key

    def inc(self, amount: float = 1.0) -> None:
        self.family._inc(self.key, amount)

    def set(self, value: float) -> None:
        self.family._set(self.key, value)

    def observe(self, value: float) -> None:
        self.family._observe(self.key, value)

    @property
    def value(self) -> float:
        return self.family._value(self.key)


class MetricFamily:
    """All samples of one metric name, across its label combinations."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str, label_names: Tuple[str, ...],
                 buckets: Sequence[float],
                 fn: Optional[Callable[[], Any]] = None) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = tuple(float(b) for b in buckets)
        self.fn = fn
        self._lock = threading.Lock()
        #: label-values tuple -> float (counter/gauge) or Histogram.
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not label_names and fn is None:
            # Unlabeled families expose their zero sample immediately, so
            # a scrape sees every registered series even before traffic.
            self._children[()] = (Histogram(self.buckets)
                                  if kind == "histogram" else 0.0)

    # ---------------------------------------------------------------- access

    def labels(self, **labels: Any) -> Handle:
        """The handle for one label combination (created zeroed)."""
        key = self._key(labels)
        with self._lock:
            if key not in self._children:
                self._children[key] = (Histogram(self.buckets)
                                       if self.kind == "histogram" else 0.0)
        return Handle(self, key)

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)

    # -------------------------------------------------------------- mutation

    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        if self.kind not in ("counter", "gauge"):
            raise TypeError(f"{self.name} is a {self.kind}, cannot inc()")
        if self.kind == "counter" and amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        if not self.registry.enabled:
            return
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def _set(self, key: Tuple[str, ...], value: float) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, cannot set()")
        if not self.registry.enabled:
            return
        with self._lock:
            self._children[key] = float(value)

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, cannot observe()")
        if not self.registry.enabled:
            return
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Histogram(self.buckets)
            child.observe(value)

    # --------------------------------------------------------------- reading

    def _value(self, key: Tuple[str, ...]) -> float:
        with self._lock:
            child = self._children.get(key, 0.0)
        if isinstance(child, Histogram):
            raise TypeError(f"{self.name} is a histogram; read samples()")
        return float(child)

    # Label-free convenience: most families in this codebase are unlabeled.

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self._inc(self._key(labels), amount)

    def set(self, value: float, **labels: Any) -> None:
        self._set(self._key(labels), value)

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        if self.kind == "histogram":
            with self._lock:
                if key not in self._children:
                    self._children[key] = Histogram(self.buckets)
        self._observe(key, value)

    def value(self, **labels: Any) -> float:
        return self._value(self._key(labels))

    def histogram(self, **labels: Any) -> Histogram:
        """A snapshot copy of one labeled histogram (empty if untouched)."""
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}")
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return Histogram(self.buckets)
            return Histogram.from_dict(child.as_dict())

    def samples(self) -> List[Dict[str, Any]]:
        """JSON-safe samples: ``{"labels": {...}, "value"| histogram}``."""
        out: List[Dict[str, Any]] = []
        with self._lock:
            items = list(self._children.items())
        if self.fn is not None:
            items = self._collect_fn()
        for key, child in items:
            labels = dict(zip(self.label_names, key))
            if isinstance(child, Histogram):
                out.append({"labels": labels, **child.as_dict()})
            else:
                out.append({"labels": labels, "value": float(child)})
        return out

    def _collect_fn(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Evaluate a callback gauge into ``(key, value)`` items."""
        collected = self.fn()
        if isinstance(collected, (int, float)):
            return [((), float(collected))]
        # A dict maps label-value tuples (or single values) to floats.
        items: List[Tuple[Tuple[str, ...], float]] = []
        for key, value in collected.items():
            if not isinstance(key, tuple):
                key = (key,)
            items.append((tuple(str(k) for k in key), float(value)))
        return items


class MetricsRegistry:
    """Ordered collection of metric families with text/JSON exposition."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    # ---------------------------------------------------------- registration

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str], buckets: Sequence[float],
                  fn: Optional[Callable[[], Any]] = None) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{family.kind}{family.label_names}, "
                        f"cannot re-register as {kind}{label_names}")
                return family
            family = MetricFamily(self, name, kind, help, label_names,
                                  buckets, fn)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        """A monotonically increasing counter family (idempotent)."""
        return self._register(name, "counter", help, labels,
                              DEFAULT_LATENCY_BUCKETS)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = (),
              fn: Optional[Callable[[], Any]] = None) -> MetricFamily:
        """A settable gauge family; ``fn`` makes it collect-on-scrape.

        A callback gauge evaluates ``fn()`` at exposition time: a plain
        number for an unlabeled gauge, or a dict of label-value(-tuple)
        to number for a labeled one — how occupancy numbers (queue depth,
        cache bytes) are read live instead of being pushed on every
        mutation.
        """
        return self._register(name, "gauge", help, labels,
                              DEFAULT_LATENCY_BUCKETS, fn)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> MetricFamily:
        """A fixed-bucket histogram family (idempotent)."""
        return self._register(name, "histogram", help, labels, buckets)

    # ------------------------------------------------------------ exposition

    def as_dict(self) -> Dict[str, Any]:
        """The JSON exposition document (``?format=json`` wire form)."""
        with self._lock:
            families = list(self._families.values())
        return {"metrics": [
            {"name": f.name, "type": f.kind, "help": f.help,
             "samples": f.samples()}
            for f in families]}

    def render_prometheus(self,
                          extra_labels: Optional[Dict[str, str]] = None,
                          ) -> str:
        """This registry as one Prometheus text-format page."""
        return render_prometheus([(extra_labels or {}, self.as_dict())])


#: Process-default registry for standalone / module-level instrumentation.
REGISTRY = MetricsRegistry()


def render_prometheus(documents: Iterable[Tuple[Dict[str, str],
                                                Dict[str, Any]]]) -> str:
    """Render JSON exposition documents as one Prometheus text page.

    ``documents`` is ``(extra_labels, doc)`` pairs — samples from each
    document carry its extra labels (the router passes ``{"node": name}``
    per scraped node).  Families sharing a name across documents are
    merged under a single ``# TYPE`` block, as the text format requires;
    the first document's help string wins.
    """
    merged: "Dict[str, Dict[str, Any]]" = {}
    for extra, doc in documents:
        for family in doc.get("metrics", []):
            name = family.get("name")
            if not name or not _NAME_RE.match(name):
                continue
            entry = merged.setdefault(
                name, {"type": family.get("type", "gauge"),
                       "help": family.get("help", ""), "samples": []})
            for sample in family.get("samples", []):
                labels = {**sample.get("labels", {}), **extra}
                entry["samples"].append({**sample, "labels": labels})
    lines: List[str] = []
    for name, entry in merged.items():
        if entry["help"]:
            help_text = entry["help"].replace("\\", "\\\\").replace("\n",
                                                                    "\\n")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample in entry["samples"]:
            labels = sample["labels"]
            if "value" in sample:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{_format_value(sample['value'])}")
                continue
            # Histogram sample: cumulative buckets, then sum and count.
            cumulative = 0
            for bound, count in zip(sample["bounds"], sample["counts"]):
                cumulative += int(count)
                bucket_labels = {**labels, "le": _format_value(bound)}
                lines.append(f"{name}_bucket{_format_labels(bucket_labels)} "
                             f"{cumulative}")
            total = cumulative + int(sample["counts"][-1])
            inf_labels = {**labels, "le": "+Inf"}
            lines.append(f"{name}_bucket{_format_labels(inf_labels)} "
                         f"{total}")
            lines.append(f"{name}_sum{_format_labels(labels)} "
                         f"{_format_value(sample['sum'])}")
            lines.append(f"{name}_count{_format_labels(labels)} {total}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def parse_prometheus_text(text: str) -> Dict[str, List[Tuple[Dict[str, str],
                                                             float]]]:
    """Parse Prometheus text format into ``{series: [(labels, value)]}``.

    Series names are literal (``foo_bucket``, ``foo_sum`` stay distinct);
    comments and blank lines are skipped.  Used by the CI smoke check and
    the tests to assert on scraped output without a client library.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$", line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, _, raw_labels, raw_value = match.groups()
        labels: Dict[str, str] = {}
        if raw_labels:
            for part in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]'
                                   r'|\\.)*)"', raw_labels):
                key, value = part
                labels[key] = (value.replace("\\n", "\n")
                               .replace('\\"', '"').replace("\\\\", "\\"))
        out.setdefault(name, []).append((labels, float(raw_value)))
    return out


def histogram_from_sample(sample: Dict[str, Any]) -> Histogram:
    """Rebuild a :class:`Histogram` from one JSON exposition sample."""
    return Histogram.from_dict(sample)
