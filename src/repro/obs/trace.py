"""Per-job tracing: timestamped span trees carried on job results.

A *trace* records the life of one job as a tree of spans — ``submit →
queued → batched → executed → served`` on a node, with the executed span
holding per-phase children (``tree``/``core``/``mst``) and the summed
:class:`~repro.kokkos.counters.CostCounters` of the batch entry.  For a
routed job the cluster router prepends its own hop spans (including
failed hops on failover), shipped to the serving node in the
:data:`TRACE_HEADER` HTTP header, so one trace shows the full path:
router → (dead node, failover) → home node → phases.

Traces ride on ``JobResult.trace`` — *outside* the payload, like the cost
counters already are, so :func:`repro.service.jobs.canonical_payload_bytes`
and every byte-identity test are untouched by their presence or absence.

Spans are plain dicts (JSON all the way through):

``{"name": str, "node": str, "start": epoch_seconds, "duration_s": float,
"meta": {...}, "children": [span, ...]}``

Timestamps are wall-clock epoch seconds because spans from different
processes (router, nodes) land in one tree; sub-spans additionally carry
monotonic-derived durations which are reliable within a process.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Any, Dict, List, Optional

#: HTTP header carrying a trace context across cluster hops.
TRACE_HEADER = "X-Repro-Trace"

#: Upper bounds on what :func:`from_header` accepts — a trace header is
#: advisory context, never worth an unbounded parse.
MAX_HEADER_BYTES = 64 * 1024
MAX_SPANS = 256


def new_trace_id() -> str:
    """A fresh trace identifier (``tr-`` + 16 hex chars)."""
    return "tr-" + uuid.uuid4().hex[:16]


def make_span(name: str, *, node: str = "", start: Optional[float] = None,
              duration_s: float = 0.0, children: Optional[List[Dict[str, Any]]] = None,
              **meta: Any) -> Dict[str, Any]:
    """Build one span dict; extra keyword args land in ``meta``."""
    span: Dict[str, Any] = {
        "name": name,
        "node": node,
        "start": time.time() if start is None else float(start),
        "duration_s": float(duration_s),
    }
    if meta:
        span["meta"] = meta
    if children:
        span["children"] = children
    return span


def make_trace(trace_id: Optional[str] = None,
               spans: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """A trace document: ``{"trace_id": ..., "spans": [...]}``."""
    return {"trace_id": trace_id or new_trace_id(), "spans": spans or []}


def _count_spans(spans: List[Any]) -> int:
    total = 0
    stack = list(spans)
    while stack:
        span = stack.pop()
        if not isinstance(span, dict):
            continue
        total += 1
        stack.extend(span.get("children", ()))
    return total


def to_header(trace: Dict[str, Any]) -> str:
    """Serialise a trace for the :data:`TRACE_HEADER` HTTP header."""
    return json.dumps(trace, separators=(",", ":"))


def from_header(value: Optional[str]) -> Optional[Dict[str, Any]]:
    """Parse a trace header defensively; ``None`` on anything off.

    A malformed or oversized header must never fail a job submission —
    the job matters, its trace context is best-effort.
    """
    if not value or len(value) > MAX_HEADER_BYTES:
        return None
    try:
        trace = json.loads(value)
    except (ValueError, TypeError):
        return None
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    spans = trace.get("spans")
    if not isinstance(trace_id, str) or not isinstance(spans, list):
        return None
    if _count_spans(spans) > MAX_SPANS:
        return None
    return {"trace_id": trace_id, "spans": spans}


def _format_duration(seconds: float) -> str:
    ms = seconds * 1e3
    if ms >= 100:
        return f"{ms:.0f}ms"
    if ms >= 1:
        return f"{ms:.1f}ms"
    return f"{ms:.3f}ms"


def _format_meta(meta: Dict[str, Any]) -> str:
    parts = []
    for key, value in meta.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]" if parts else ""


def format_trace(trace: Dict[str, Any]) -> str:
    """Pretty-print a trace as an indented span tree (``repro trace``).

    >>> t = make_trace("tr-demo", [
    ...     make_span("submit", node="n0", start=0.0),
    ...     make_span("executed", node="n0", start=0.1, duration_s=0.25,
    ...               children=[make_span("tree", start=0.1,
    ...                                   duration_s=0.2)])])
    >>> print(format_trace(t))  # doctest: +NORMALIZE_WHITESPACE
    trace tr-demo
      submit         @n0
      executed       @n0  250ms
        tree          200ms
    """
    lines = [f"trace {trace.get('trace_id', '?')}"]

    def walk(spans: List[Dict[str, Any]], depth: int) -> None:
        for span in spans:
            name = str(span.get("name", "?"))
            node = span.get("node") or ""
            duration = float(span.get("duration_s") or 0.0)
            pieces = [f"{'  ' * depth}{name:<15}"]
            if node:
                pieces.append(f"@{node}")
            if duration:
                pieces.append(_format_duration(duration))
            line = " ".join(pieces).rstrip()
            line += _format_meta(span.get("meta") or {})
            lines.append(line)
            walk(span.get("children") or [], depth + 1)

    walk(trace.get("spans") or [], 1)
    return "\n".join(lines)
