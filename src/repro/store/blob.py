"""Flat-blob serialization for persisted artifacts.

A *blob* is a single ``.npz`` file holding named ndarrays plus one JSON
metadata document (stored as a ``uint8`` byte array under ``__meta__``, so
the container stays pure-array and loads with ``allow_pickle=False``).
Everything the serving engine caches flattens to this shape:

* a **BVH** becomes the same dict of arrays the process backend already
  ships between processes (:func:`bvh_to_state` — the canonical
  serialization, re-exported by :mod:`repro.service.executor`), so a tree
  written by one process or node is readable by any other;
* a **result payload** is pure JSON and travels entirely in the metadata;
* a **core-distance artifact** is one float64 array (squared core
  distances in the submitting caller's point order — deliberately
  tree-independent, see :func:`encode_core`) plus its phase counters.

The per-tier ``encode_*`` / ``decode_*`` pairs below are the codecs the
:class:`~repro.store.tiered.TieredCache` uses to spill and warm values.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Dict, Tuple

import numpy as np

from repro.bvh.bvh import BVH
from repro.errors import InvalidInputError

#: Reserved array name carrying the JSON metadata bytes inside a blob.
META_KEY = "__meta__"

#: Blob container format version, recorded in every blob's metadata.  Bump
#: together with any change to the fingerprint scheme or codec layouts.
#: Version history:
#:
#: 1. original layout (one point per BVH leaf, no leaf arrays);
#: 2. blocked leaves — tree blobs add ``leaf_start`` / ``leaf_count``
#:    arrays and a ``leaf_size`` metadata field.
BLOB_FORMAT = 2

#: Formats :func:`read_blob` still accepts.  A format-1 tree blob decodes
#: as a ``leaf_size=1`` tree (the arrays it lacks are derivable).
COMPATIBLE_FORMATS = (1, 2)

Meta = Dict[str, Any]
Arrays = Dict[str, np.ndarray]


# ------------------------------------------------------------------ container

def write_blob(file: BinaryIO, meta: Meta, arrays: Arrays) -> None:
    """Serialize ``(meta, arrays)`` into ``file`` as an uncompressed npz."""
    if META_KEY in arrays:
        raise InvalidInputError(f"array name {META_KEY!r} is reserved")
    meta = dict(meta)
    meta["format"] = BLOB_FORMAT
    meta_bytes = np.frombuffer(json.dumps(meta, sort_keys=True).encode(),
                               dtype=np.uint8)
    np.savez(file, **{META_KEY: meta_bytes}, **arrays)


def read_blob(path: str) -> Tuple[Meta, Arrays]:
    """Load a blob; raises on a truncated, corrupt or alien file.

    Any failure surfaces as :class:`InvalidInputError` so the store can
    quarantine the file uniformly (``zipfile``/``numpy`` raise a zoo of
    exception types for damaged inputs).
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            if META_KEY not in data.files:
                raise InvalidInputError(f"{path}: blob carries no metadata")
            meta = json.loads(bytes(data[META_KEY]).decode())
            arrays = {name: data[name] for name in data.files
                      if name != META_KEY}
    except InvalidInputError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, ValueError, OSError, ...
        raise InvalidInputError(f"{path}: unreadable blob ({exc})") from exc
    if meta.get("format") not in COMPATIBLE_FORMATS:
        raise InvalidInputError(
            f"{path}: blob format {meta.get('format')!r}, "
            f"expected one of {COMPATIBLE_FORMATS}")
    return meta, arrays


# ----------------------------------------------------------------- BVH state

def bvh_to_state(tree: BVH) -> Dict[str, Any]:
    """Flatten a :class:`BVH` to a dict of arrays (references, no copies).

    This is the canonical serialized form of a tree: the engine ships it to
    process-pool workers, and :func:`encode_tree` writes exactly these
    arrays to disk — plain ndarrays and a list of ndarrays pickle and store
    efficiently (raw buffers, no per-element boxing), and reconstruction is
    allocation-free.
    """
    return {
        "points": tree.points, "order": tree.order, "codes": tree.codes,
        "left": tree.left, "right": tree.right, "parent": tree.parent,
        "lo": tree.lo, "hi": tree.hi, "schedule": list(tree.schedule),
        "codes_lo": tree.codes_lo,
        "leaf_start": tree.leaf_start, "leaf_count": tree.leaf_count,
        "leaf_size": tree.leaf_size,
    }


def bvh_from_state(state: Dict[str, Any]) -> BVH:
    """Rebuild a :class:`BVH` from :func:`bvh_to_state` output.

    Tolerates pre-blocking states (no leaf arrays): they decode as
    ``leaf_size=1`` trees, which ``BVH.__post_init__`` synthesizes.
    """
    return BVH(**state)


# -------------------------------------------------------------------- codecs

def encode_tree(value: Dict[str, Any]) -> Tuple[Meta, Arrays]:
    """Codec for the tree tier: ``{"bvh": BVH, "counters": dict | None}``.

    The cached construction-phase counters ride in the metadata so a warm
    tree replays the exact work numbers of its original build — keeping
    warm results byte-identical to cold ones.
    """
    state = bvh_to_state(value["bvh"])
    arrays = {name: state[name]
              for name in ("points", "order", "codes",
                           "left", "right", "parent", "lo", "hi",
                           "leaf_start", "leaf_count")}
    for level, step in enumerate(state["schedule"]):
        arrays[f"schedule_{level:03d}"] = step
    if state["codes_lo"] is not None:
        arrays["codes_lo"] = state["codes_lo"]
    meta = {"tier": "tree", "n_schedule": len(state["schedule"]),
            "leaf_size": state["leaf_size"],
            "counters": value.get("counters")}
    return meta, arrays


def decode_tree(meta: Meta, arrays: Arrays) -> Dict[str, Any]:
    """Inverse of :func:`encode_tree`.

    Format-1 blobs carry no leaf arrays; they decode as ``leaf_size=1``
    trees (``BVH.__post_init__`` synthesizes the implied blocking).
    """
    schedule = [arrays[f"schedule_{level:03d}"]
                for level in range(int(meta["n_schedule"]))]
    bvh = BVH(points=arrays["points"], order=arrays["order"],
              codes=arrays["codes"], left=arrays["left"],
              right=arrays["right"], parent=arrays["parent"],
              lo=arrays["lo"], hi=arrays["hi"], schedule=schedule,
              codes_lo=arrays.get("codes_lo"),
              leaf_start=arrays.get("leaf_start"),
              leaf_count=arrays.get("leaf_count"),
              leaf_size=int(meta.get("leaf_size", 1)))
    return {"bvh": bvh, "counters": meta.get("counters")}


def encode_result(payload: Dict[str, Any]) -> Tuple[Meta, Arrays]:
    """Codec for the result tier: a serialized (JSON-safe) job payload."""
    return {"tier": "result", "payload": payload}, {}


def decode_result(meta: Meta, arrays: Arrays) -> Dict[str, Any]:
    """Inverse of :func:`encode_result`."""
    return meta["payload"]


def encode_core(value: Dict[str, Any]) -> Tuple[Meta, Arrays]:
    """Codec for the core-distance tier.

    ``value`` is ``{"core_sq": (n,) float64, "counters": dict | None}``
    with the squared core distances **in the caller's point order** — not
    the BVH's sorted order — so the artifact depends only on
    ``(points, k_pts)`` and one entry serves every tree configuration.
    """
    return ({"tier": "core", "counters": value.get("counters")},
            {"core_sq": np.ascontiguousarray(value["core_sq"])})


def decode_core(meta: Meta, arrays: Arrays) -> Dict[str, Any]:
    """Inverse of :func:`encode_core`."""
    return {"core_sq": arrays["core_sq"], "counters": meta.get("counters")}


#: tier name -> (encode, decode); the registry the TieredCache tiers and the
#: store's self-checks share.
CODECS = {
    "tree": (encode_tree, decode_tree),
    "result": (encode_result, decode_result),
    "core": (encode_core, decode_core),
}


def codec_for(tier: str) -> Tuple[Any, Any]:
    """The ``(encode, decode)`` pair registered for ``tier``."""
    try:
        return CODECS[tier]
    except KeyError:
        raise InvalidInputError(
            f"no codec for tier {tier!r}; known: {', '.join(sorted(CODECS))}")
