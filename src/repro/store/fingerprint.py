"""The content-fingerprinting scheme shared by every cache and store tier.

One SHA-256 scheme keys everything content-addressed in this repository:
the in-memory cache tiers (:mod:`repro.service.cache`), the persistent
:class:`~repro.store.disk.DiskStore`, and — because the keys name *content*,
not locations — any future cross-node tier.  The scheme is therefore part of
the **on-disk format**: a change to any function here invalidates every
persisted store, so the exact key bytes are pinned by a test
(``tests/test_store.py::TestFingerprint``) and must only change together
with a store format-version bump.

Scheme
------
``fingerprint_array`` digests an array's dtype string, shape tuple string
and raw buffer bytes (dtype and shape are mixed in so a ``(6,)`` array
cannot collide with a ``(3, 2)`` view of the same buffer).
``combine_fingerprint`` derives a tier key from a precomputed array digest
and a canonical parameter string, separated by a NUL byte so no parameter
string can collide with a digest prefix.  All digests are lowercase hex.
"""

from __future__ import annotations

import hashlib

import numpy as np


def fingerprint_array(points: np.ndarray) -> str:
    """SHA-256 content fingerprint of an array (dtype, shape and bytes).

    The dtype and shape are mixed into the digest so e.g. a ``(6,)`` float
    array cannot collide with a ``(3, 2)`` one over the same buffer.
    """
    points = np.ascontiguousarray(points)
    digest = hashlib.sha256()
    digest.update(str(points.dtype).encode())
    digest.update(str(points.shape).encode())
    digest.update(points.tobytes())
    return digest.hexdigest()


def combine_fingerprint(array_fingerprint: str, params: str) -> str:
    """Cache key from a precomputed array digest and a parameter string.

    Lets callers hash a large point buffer once and derive several keys
    (result tier, tree tier, core tier) from the digest.
    """
    digest = hashlib.sha256()
    digest.update(array_fingerprint.encode())
    digest.update(b"\x00")
    digest.update(params.encode())
    return digest.hexdigest()


def fingerprint(points: np.ndarray, params: str = "") -> str:
    """Cache key for (points content, canonical parameter string)."""
    return combine_fingerprint(fingerprint_array(points), params)


def fingerprint_spec(spec) -> str:
    """Points-content fingerprint of a job spec — the cluster routing key.

    Accepts anything with the :class:`~repro.service.jobs.JobSpec` shape
    (``resolve_points()``); duck typing keeps this module importable
    without the service layer.  The digest is exactly the engine's
    ``points_fp``, so a router hashing specs with this helper pins a point
    set to the same node whose cache tiers (memory and disk) are keyed by
    it — deliberately independent of the algorithm and its parameters, the
    way the tree and core tiers are shared across algorithms.  Derive the
    result-tier key with ``combine_fingerprint(fp, spec.params_key())``
    when an exact-repeat check is needed.
    """
    return fingerprint_array(spec.resolve_points())
