"""The in-memory cache tier: a thread-safe, byte-bounded LRU.

:class:`ContentCache` is the top tier of every
:class:`~repro.store.tiered.TieredCache`: keys are content fingerprints
(:mod:`repro.store.fingerprint`), values are live Python objects, and
eviction is least-recently-used under a byte budget with sizes from
:func:`estimate_nbytes`.  Hit/miss counters report through
:func:`repro.metrics.hit_rate` so cache statistics use the same rate
conventions as the benchmark harness.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.metrics import hit_rate


def estimate_nbytes(value: Any) -> int:
    """Approximate heap footprint of a cached value, in bytes.

    Counts array buffers exactly and walks containers and dataclasses
    (covering :class:`~repro.bvh.bvh.BVH` and serialized result payloads);
    everything else falls back to ``sys.getsizeof``.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(estimate_nbytes(getattr(value, f.name))
                   for f in dataclasses.fields(value))
    if isinstance(value, dict):
        return sum(estimate_nbytes(k) + estimate_nbytes(v)
                   for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(item) for item in value)
    return int(sys.getsizeof(value))


class ContentCache:
    """A thread-safe LRU cache bounded by total byte size.

    ``get`` refreshes recency; ``put`` evicts least-recently-used entries
    until the new value fits.  A value larger than the whole budget is
    rejected (counted in ``oversized``) rather than flushing the cache.
    """

    def __init__(self, max_bytes: int, *, name: str = "cache") -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.name = name
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._current_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key`` (refreshing recency) or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any,
            nbytes: Optional[int] = None) -> bool:
        """Insert ``value`` under ``key``; returns whether it was stored.

        ``nbytes`` overrides the :func:`estimate_nbytes` size estimate.
        """
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        with self._lock:
            if size > self.max_bytes:
                self.oversized += 1
                return False
            if key in self._entries:
                self._current_bytes -= self._sizes[key]
                del self._entries[key]
            while self._current_bytes + size > self.max_bytes:
                old_key, _ = self._entries.popitem(last=False)
                self._current_bytes -= self._sizes.pop(old_key)
                self.evictions += 1
            self._entries[key] = value
            self._sizes[key] = size
            self._current_bytes += size
            return True

    def size_of(self, key: str) -> Optional[int]:
        """The stored byte estimate for ``key`` (no recency effect)."""
        with self._lock:
            return self._sizes.get(key)

    def keys(self) -> List[str]:
        """Keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._current_bytes = 0

    @property
    def current_bytes(self) -> int:
        """Total estimated bytes of the stored entries."""
        with self._lock:
            return self._current_bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache."""
        return hit_rate(self.hits, self.misses)

    def stats(self) -> Dict[str, Any]:
        """Counters and occupancy, JSON-safe."""
        with self._lock:
            return {
                "name": self.name,
                "entries": len(self._entries),
                "current_bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": hit_rate(self.hits, self.misses),
                "evictions": self.evictions,
                "oversized": self.oversized,
            }
