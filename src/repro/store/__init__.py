"""Persistent content-addressed artifact store for the serving engine.

The paper's headline win is amortizing ``T_tree`` within one run; the
service's in-memory tiers amortize it across requests; this package
amortizes it across **process lifetimes** (and, because keys are content
fingerprints and therefore location-independent, across nodes): built
trees, result payloads and core-distance arrays spill to disk on insert
and warm back on the first request after a restart.

Layers
------
``repro.store.fingerprint``  the SHA-256 content-keying scheme (pinned)
``repro.store.memory``       the in-memory byte-bounded LRU tier
``repro.store.blob``         flat ``.npz`` blob format + per-tier codecs
``repro.store.disk``         crash-safe on-disk store with a JSONL index
``repro.store.tiered``       the memory → disk → miss facade

Example
-------
>>> import numpy as np, tempfile
>>> from repro.store import DiskStore, TieredCache, fingerprint
>>> root = tempfile.mkdtemp()
>>> cache = TieredCache("core", 1 << 20, DiskStore(root))
>>> key = fingerprint(np.zeros((4, 2)), "core;k_pts=2")
>>> cache.put(key, {"core_sq": np.ones(4), "counters": None})
True
>>> cold = TieredCache("core", 1 << 20, DiskStore(root))  # "restart"
>>> cold.get_with_source(key)[1]
'disk'
"""

from repro.store.blob import (
    BLOB_FORMAT,
    bvh_from_state,
    bvh_to_state,
    codec_for,
    read_blob,
    write_blob,
)
from repro.store.disk import DEFAULT_STORE_BYTES, DiskStore
from repro.store.fingerprint import (
    combine_fingerprint,
    fingerprint,
    fingerprint_array,
    fingerprint_spec,
)
from repro.store.memory import ContentCache, estimate_nbytes
from repro.store.tiered import TieredCache

__all__ = [
    "BLOB_FORMAT",
    "DEFAULT_STORE_BYTES",
    "ContentCache",
    "DiskStore",
    "TieredCache",
    "bvh_from_state",
    "bvh_to_state",
    "codec_for",
    "combine_fingerprint",
    "estimate_nbytes",
    "fingerprint",
    "fingerprint_array",
    "fingerprint_spec",
    "read_blob",
    "write_blob",
]
