"""Persistent content-addressed artifact store with crash-safe writes.

:class:`DiskStore` keeps one blob file per cached artifact under a
two-level hash-prefix directory layout::

    <root>/
      index.jsonl                     append-only recency/size journal
      objects/<tier>/<aa>/<bb>/<key>.npz
      quarantine/                     blobs that failed to load

where ``<key>`` is the artifact's content fingerprint (see
:mod:`repro.store.fingerprint`) and ``<aa>``/``<bb>`` its first two hex-pair
prefixes — the classic git-object layout, keeping directories small at
millions of entries.

Durability model
----------------
* **Writes are atomic**: a blob is serialized to a temp file in the target
  directory, fsync'ed, then ``os.replace``'d into its final name.  A crash
  mid-write leaves only a ``*.tmp*`` file, never a half-written blob under
  a live name.
* **The index is a journal**: every ``put``/``touch``/``evict`` appends one
  JSON line.  On open the journal is replayed to rebuild the byte-bounded
  LRU order, then compacted; a torn final line (crash mid-append) is
  skipped.
* **Opening self-heals**: orphaned temp files are deleted, entries whose
  blob is missing are dropped, blobs whose size disagrees with the journal
  are quarantined, and unindexed blobs (crash between rename and journal
  append) are removed.  A blob that replays fine but fails to *load* later
  is quarantined at read time and reported as a miss.

Eviction is least-recently-used under ``max_bytes`` of blob-file bytes,
mirroring :class:`~repro.service.cache.ContentCache` one tier down.  The
store assumes a single writer process (the serving engine); multi-node
sharing is read-compatible by design but dispatch is a later PR.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvalidInputError
from repro.store.blob import Arrays, Meta, read_blob, write_blob

#: Default byte budget: a serving node's disk is cheap relative to recompute.
DEFAULT_STORE_BYTES = 1 << 30

#: Journal compaction threshold: rewrite once the journal holds this many
#: more lines than live entries (touch records accumulate per disk hit).
_COMPACT_SLACK = 1024

_INDEX_NAME = "index.jsonl"
_OBJECTS_DIR = "objects"
_QUARANTINE_DIR = "quarantine"


class DiskStore:
    """A byte-bounded, crash-safe blob store keyed by content fingerprint.

    All methods are thread-safe.  ``get``/``put`` address an artifact by
    ``(tier, key)``; tiers partition the directory layout and the stats,
    while keys within a tier are content fingerprints and never collide
    across tiers by construction (each tier derives its keys with a
    distinct canonical parameter string).
    """

    def __init__(self, root: str,
                 max_bytes: int = DEFAULT_STORE_BYTES) -> None:
        if max_bytes <= 0:
            raise InvalidInputError(
                f"max_bytes must be positive, got {max_bytes}")
        self.root = os.path.abspath(root)
        self.max_bytes = int(max_bytes)
        self._objects = os.path.join(self.root, _OBJECTS_DIR)
        self._quarantine = os.path.join(self.root, _QUARANTINE_DIR)
        self._index_path = os.path.join(self.root, _INDEX_NAME)
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._quarantine, exist_ok=True)
        self._lock = threading.RLock()
        #: (tier, key) -> blob file size, in LRU order (oldest first).
        self._entries: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self._current_bytes = 0
        self._journal_lines = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.oversized = 0
        self.corrupt = 0
        self.journal_errors = 0
        self.healed: Dict[str, int] = {}
        self._open()

    # ------------------------------------------------------------------ paths

    def _path(self, tier: str, key: str) -> str:
        return os.path.join(self._objects, tier, key[:2], key[2:4],
                            f"{key}.npz")

    # ----------------------------------------------------------- open & heal

    def _open(self) -> None:
        healed = {"bad_journal_lines": 0, "missing_blobs": 0,
                  "size_mismatches": 0, "orphan_tmp": 0, "unindexed": 0}
        entries: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        if os.path.exists(self._index_path):
            with open(self._index_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                        op = record["op"]
                        ident = (record["tier"], record["key"])
                    except (json.JSONDecodeError, KeyError, TypeError):
                        healed["bad_journal_lines"] += 1
                        continue
                    if op == "put":
                        entries[ident] = int(record.get("nbytes", 0))
                        entries.move_to_end(ident)
                    elif op == "touch" and ident in entries:
                        entries.move_to_end(ident)
                    elif op == "evict":
                        entries.pop(ident, None)
        for (tier, key) in list(entries):
            path = self._path(tier, key)
            try:
                size = os.path.getsize(path)
            except OSError:
                del entries[(tier, key)]
                healed["missing_blobs"] += 1
                continue
            if size != entries[(tier, key)]:
                # A size the journal disagrees with means a torn or tampered
                # blob; keep the evidence out of the hot path.
                self._quarantine_file(path)
                del entries[(tier, key)]
                healed["size_mismatches"] += 1
        # A crash inside _compact leaves an index.jsonl.XXXXXX temp next to
        # the journal; sweep those with the rest of the orphans.
        for name in os.listdir(self.root):
            if name.startswith(_INDEX_NAME + "."):
                os.unlink(os.path.join(self.root, name))
                healed["orphan_tmp"] += 1
        indexed_paths = {self._path(tier, key) for tier, key in entries}
        for dirpath, _dirnames, filenames in os.walk(self._objects):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if not name.endswith(".npz"):
                    # A crashed writer's temp file: never a live artifact.
                    os.unlink(path)
                    healed["orphan_tmp"] += 1
                elif path not in indexed_paths:
                    # Renamed into place but the journal append never
                    # happened; without a journal entry its recency and
                    # accounting are unknown — cheaper to re-miss than to
                    # trust it.
                    os.unlink(path)
                    healed["unindexed"] += 1
        self._entries = entries
        self._current_bytes = sum(entries.values())
        self.healed = healed
        self._compact()

    def _quarantine_file(self, path: str) -> None:
        target = os.path.join(self._quarantine, os.path.basename(path))
        try:
            os.replace(path, target)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    # --------------------------------------------------------------- journal

    def _append(self, record: Dict[str, Any]) -> None:
        with open(self._index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal_lines += 1
        if self._journal_lines > len(self._entries) + _COMPACT_SLACK:
            self._compact()

    def _append_best_effort(self, record: Dict[str, Any]) -> None:
        """Journal append that degrades instead of raising.

        Used on the *read* path: a full or read-only volume must cost at
        most stale recency (or a re-discovered corrupt blob after restart),
        never fail the request that merely looked something up.  The write
        path keeps strict appends — its callers already absorb ``OSError``
        as a failed spill.
        """
        try:
            self._append(record)
        except OSError:
            self.journal_errors += 1

    def _compact(self) -> None:
        """Atomically rewrite the journal as one ``put`` line per entry."""
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=_INDEX_NAME + ".")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for (tier, key), nbytes in self._entries.items():
                    fh.write(json.dumps(
                        {"op": "put", "tier": tier, "key": key,
                         "nbytes": nbytes}, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._journal_lines = len(self._entries)

    # ------------------------------------------------------------------- api

    def get(self, tier: str, key: str) -> Optional[Tuple[Meta, Arrays]]:
        """The ``(meta, arrays)`` blob for ``(tier, key)``, or ``None``.

        Refreshes LRU recency on a hit.  A blob that exists but fails to
        deserialize is quarantined and reported as a miss — the store heals
        forward instead of failing the job that asked.  Journal writes on
        this path are best-effort for the same reason.
        """
        ident = (tier, key)
        with self._lock:
            if ident not in self._entries:
                self.misses += 1
                return None
            path = self._path(tier, key)
        # The blob read happens outside the lock: one tier warming a large
        # tree must not stall every other tier's (memory-fast) lookups.
        try:
            blob = read_blob(path)
        except InvalidInputError:
            with self._lock:
                if ident in self._entries:
                    # Still live: genuinely corrupt — quarantine it.  If a
                    # concurrent put evicted it meanwhile, the unlinked
                    # file was the cause and there is nothing to heal.
                    self._quarantine_file(path)
                    self._current_bytes -= self._entries.pop(ident)
                    self._append_best_effort(
                        {"op": "evict", "tier": tier, "key": key})
                    self.corrupt += 1
                self.misses += 1
            return None
        with self._lock:
            if ident in self._entries:
                self._entries.move_to_end(ident)
                self._append_best_effort(
                    {"op": "touch", "tier": tier, "key": key})
            self.hits += 1
            return blob

    def put(self, tier: str, key: str, meta: Meta, arrays: Arrays) -> bool:
        """Persist one artifact; returns whether it was stored.

        The blob is written atomically (temp file + rename); least-recently
        -used artifacts are evicted until it fits.  An artifact larger than
        the whole budget is rejected rather than flushing the store.
        """
        with self._lock:
            path = self._path(tier, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=f"{key}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    write_blob(fh, meta, arrays)
                    fh.flush()
                    os.fsync(fh.fileno())
                return self._commit_tmp(tier, key, tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def _commit_tmp(self, tier: str, key: str, tmp: str, path: str) -> bool:
        """Move a fully written temp blob into its live name (lock held).

        Shared tail of every write path: budget check, LRU eviction until
        the newcomer fits, atomic rename, journal append.  Returns whether
        the blob was kept (``False`` only for over-budget artifacts, whose
        temp file is unlinked here).
        """
        size = os.path.getsize(tmp)
        if size > self.max_bytes:
            os.unlink(tmp)
            self.oversized += 1
            return False
        ident = (tier, key)
        if ident in self._entries:
            self._current_bytes -= self._entries.pop(ident)
        while self._current_bytes + size > self.max_bytes:
            (old_tier, old_key), old_size = \
                self._entries.popitem(last=False)
            self._current_bytes -= old_size
            try:
                os.unlink(self._path(old_tier, old_key))
            except OSError:
                pass
            self._append({"op": "evict", "tier": old_tier,
                          "key": old_key})
            self.evictions += 1
        os.replace(tmp, path)
        self._entries[ident] = size
        self._current_bytes += size
        self._append({"op": "put", "tier": tier, "key": key,
                      "nbytes": size})
        self.puts += 1
        return True

    # ------------------------------------------------------------- raw bytes
    #
    # The wire format IS the store format: a blob file's bytes stream
    # straight onto the ``/v1/artifacts`` surface and straight back into a
    # peer's store, so replication and peer-fetch get byte-identity for
    # free.  These two methods are that surface's storage half.

    def get_blob_bytes(self, tier: str, key: str) -> Optional[bytes]:
        """The raw blob-file bytes for ``(tier, key)``, or ``None``.

        Refreshes LRU recency on a hit, like :meth:`get`.  A file whose
        size disagrees with the journal is quarantined and reported as a
        miss — the receiving side would reject it anyway, so heal here.
        """
        ident = (tier, key)
        with self._lock:
            expected = self._entries.get(ident)
            if expected is None:
                self.misses += 1
                return None
            path = self._path(tier, key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        if len(data) != expected:
            with self._lock:
                # Only quarantine if nothing rewrote the entry meanwhile.
                if self._entries.get(ident) == expected:
                    self._quarantine_file(path)
                    self._current_bytes -= self._entries.pop(ident)
                    self._append_best_effort(
                        {"op": "evict", "tier": tier, "key": key})
                    self.corrupt += 1
                self.misses += 1
            return None
        with self._lock:
            if ident in self._entries:
                self._entries.move_to_end(ident)
                self._append_best_effort(
                    {"op": "touch", "tier": tier, "key": key})
            self.hits += 1
        return data

    def put_blob_bytes(self, tier: str, key: str, data: bytes) -> bool:
        """Persist one artifact from raw blob bytes; returns whether stored.

        The bytes are written to a temp file, fsync'ed, then *validated by
        deserializing* before the atomic rename — torn or foreign bytes
        raise :class:`InvalidInputError` and leave the store untouched.
        """
        with self._lock:
            path = self._path(tier, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=f"{key}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                read_blob(tmp)
                return self._commit_tmp(tier, key, tmp, path)
            except InvalidInputError:
                self.corrupt += 1
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def __contains__(self, ident: Tuple[str, str]) -> bool:
        with self._lock:
            return tuple(ident) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self, tier: Optional[str] = None) -> List[Tuple[str, str]]:
        """``(tier, key)`` pairs in LRU order, optionally one tier only."""
        with self._lock:
            return [ident for ident in self._entries
                    if tier is None or ident[0] == tier]

    def entries(self, tier: Optional[str] = None) -> List[Dict[str, Any]]:
        """Listing documents (``tier``/``key``/``nbytes``) in LRU order.

        JSON-safe by construction — this is the body of the artifact
        listing endpoint, which rebalance walks to find stranded shards.
        """
        with self._lock:
            return [{"tier": t, "key": k, "nbytes": n}
                    for (t, k), n in self._entries.items()
                    if tier is None or t == tier]

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        with self._lock:
            removed = len(self._entries)
            for tier, key in list(self._entries):
                try:
                    os.unlink(self._path(tier, key))
                except OSError:
                    pass
            self._entries.clear()
            self._current_bytes = 0
            self._compact()
            return removed

    def clear_tier(self, tier: str) -> Tuple[int, int]:
        """Delete one tier's artifacts; returns ``(entries, bytes)`` removed.

        The ops-endpoint building block: flushing e.g. the result tier
        after an algorithm fix must not also discard every expensively
        built tree.  Other tiers' entries and recency are untouched.
        """
        with self._lock:
            removed = 0
            reclaimed = 0
            for ident in [i for i in self._entries if i[0] == tier]:
                reclaimed += self._entries.pop(ident)
                removed += 1
                try:
                    os.unlink(self._path(*ident))
                except OSError:
                    pass
            self._current_bytes -= reclaimed
            if removed:
                self._compact()  # journal must not resurrect them on replay
            return removed, reclaimed

    def compact(self) -> Dict[str, int]:
        """Rewrite the journal to one line per live entry, on demand.

        Compaction normally triggers itself once the journal outgrows the
        live set by ``_COMPACT_SLACK`` lines; this forces it now (an ops
        hook for before-snapshot or after-mass-eviction moments).  Returns
        the line and byte counts reclaimed, JSON-safe.
        """
        with self._lock:
            try:
                bytes_before = os.path.getsize(self._index_path)
            except OSError:
                bytes_before = 0
            lines_before = self._journal_lines
            self._compact()
            try:
                bytes_after = os.path.getsize(self._index_path)
            except OSError:
                bytes_after = 0
            return {
                "journal_lines_before": lines_before,
                "journal_lines_after": self._journal_lines,
                "journal_bytes_before": bytes_before,
                "journal_bytes_after": bytes_after,
                "journal_bytes_reclaimed": max(0, bytes_before - bytes_after),
                "entries": len(self._entries),
            }

    @property
    def current_bytes(self) -> int:
        """Total bytes of stored blob files."""
        with self._lock:
            return self._current_bytes

    def stats(self) -> Dict[str, Any]:
        """Occupancy, counters and last-open heal report, JSON-safe."""
        with self._lock:
            per_tier: Dict[str, int] = {}
            for tier, _key in self._entries:
                per_tier[tier] = per_tier.get(tier, 0) + 1
            return {
                "root": self.root,
                "entries": len(self._entries),
                "entries_by_tier": per_tier,
                "current_bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "corrupt": self.corrupt,
                "journal_errors": self.journal_errors,
                "healed": dict(self.healed),
            }
