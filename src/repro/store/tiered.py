"""The two-level cache facade: memory tier over an optional disk store.

:class:`TieredCache` is what the serving engine actually talks to.  Lookups
fall through **memory → disk → miss**; a disk hit decodes the blob through
the tier's codec (:mod:`repro.store.blob`) and *promotes* the value into
the memory tier, so a warm-restarted server pays the deserialization once
per artifact, not once per request.  Inserts go to both levels (*spill on
insert*), so anything the memory tier later evicts — or a process restart
wipes — is still one disk read away.

Without a :class:`~repro.store.disk.DiskStore` the facade degrades to the
plain in-memory :class:`~repro.store.memory.ContentCache`, which keeps the
engine's code path identical whether persistence is configured or not.
"""

from __future__ import annotations

import io
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import InvalidInputError
from repro.metrics import hit_rate
from repro.obs import MetricsRegistry
from repro.store.blob import codec_for, read_blob
from repro.store.disk import DiskStore
from repro.store.memory import ContentCache, estimate_nbytes

#: ``source`` values :meth:`TieredCache.get_with_source` can report
#: (``"peer"`` joins them when a :attr:`TieredCache.peer_fetch` hook is
#: installed — it is not pre-touched into the lookup counter because a
#: peerless cache never reports it).
SOURCES = ("memory", "disk")


class TieredCache:
    """Memory-over-disk cache for one artifact tier (tree/result/core).

    ``tier`` selects the blob codec and namespaces the disk layout; several
    tiers share one :class:`DiskStore` (and its byte budget) the way the
    engine's tiers share one process.  All methods are thread-safe.
    """

    def __init__(self, tier: str, max_bytes: int,
                 store: Optional[DiskStore] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.tier = tier
        self.memory = ContentCache(max_bytes, name=tier)
        self.store = store
        self._encode, self._decode = codec_for(tier)
        #: Read-through hook consulted after a disk miss: a callable
        #: ``(tier, key) -> Optional[bytes]`` returning a peer's raw blob
        #: bytes (the engine installs one wired to its ``--peer`` set).
        #: The hook owns its own telemetry; a hit here reports source
        #: ``"peer"`` and warms both local levels.
        self.peer_fetch: Optional[Callable[[str, str],
                                           Optional[bytes]]] = None
        self.disk_hits = 0
        self.disk_misses = 0
        self.peer_hits = 0
        self.spill_errors = 0
        self.decode_errors = 0
        self.read_errors = 0
        # Exposition: lookup counters per level/outcome and store I/O
        # latency.  All engine tiers share one registry, so these are
        # labeled children of shared families.  The plain int counters
        # above remain the source of truth for `stats()` (and the tests
        # pinning it); the registry mirrors them for `/v1/metrics`.
        registry = registry if registry is not None \
            else MetricsRegistry(enabled=False)
        lookups = registry.counter(
            "repro_cache_lookups_total",
            "Cache lookups by tier, level (memory/disk) and outcome.",
            labels=("tier", "level", "outcome"))
        self._lookup = {
            (level, outcome): lookups.labels(tier=tier, level=level,
                                             outcome=outcome)
            for level in SOURCES for outcome in ("hit", "miss")}
        self._io_h = registry.histogram(
            "repro_store_io_seconds",
            "Latency of disk-store reads and writes by tier and op.",
            labels=("tier", "op"))
        self._io_get = self._io_h.labels(tier=tier, op="get")
        self._io_put = self._io_h.labels(tier=tier, op="put")

    def __len__(self) -> int:
        return len(self.memory)

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key`` from either level, or ``None``."""
        return self.get_with_source(key)[0]

    def get_with_source(self, key: str
                        ) -> Tuple[Optional[Any], Optional[str]]:
        """``(value, "memory" | "disk")`` on a hit, ``(None, None)`` else."""
        value = self.memory.get(key)
        if value is not None:
            self._lookup[("memory", "hit")].inc()
            return value, "memory"
        self._lookup[("memory", "miss")].inc()
        if self.store is None:
            return self._peer_read_through(key)
        started = time.perf_counter()
        try:
            blob = self.store.get(self.tier, key)
        except OSError:  # an unreadable volume is a miss, not a failure
            self.read_errors += 1
            self.disk_misses += 1
            self._lookup[("disk", "miss")].inc()
            return self._peer_read_through(key)
        finally:
            self._io_get.observe(time.perf_counter() - started)
        if blob is None:
            self.disk_misses += 1
            self._lookup[("disk", "miss")].inc()
            return self._peer_read_through(key)
        try:
            value = self._decode(*blob)
        except Exception:  # noqa: BLE001 — a bad artifact must read as a
            # miss (the job recomputes), never fail the request.
            self.decode_errors += 1
            self.disk_misses += 1
            self._lookup[("disk", "miss")].inc()
            return self._peer_read_through(key)
        self.disk_hits += 1
        self._lookup[("disk", "hit")].inc()
        # Promote with the size recorded at insert time: re-walking a large
        # payload with estimate_nbytes on the serving path would cost more
        # than the deserialization itself (and drift from the budget
        # accounting the artifact was inserted under).
        self.memory.put(key, value, blob[0].get("memory_nbytes"))
        return value, "disk"

    def _peer_read_through(self, key: str
                           ) -> Tuple[Optional[Any], Optional[str]]:
        """Last-resort lookup level: a replica peer's artifact surface.

        Fetched bytes are validated by decoding, persisted locally (same
        crash-safe path as a spill — the next lookup is a plain disk hit)
        and promoted into memory.  Any failure degrades to a miss; the
        job recomputes exactly as it would have without peers.
        """
        fetch = self.peer_fetch
        if fetch is None:
            return None, None
        data = fetch(self.tier, key)
        if data is None:
            return None, None
        try:
            blob = read_blob(io.BytesIO(data))
            value = self._decode(*blob)
        except Exception:  # noqa: BLE001 — a bad peer blob is a miss
            self.decode_errors += 1
            return None, None
        if self.store is not None:
            try:
                self.store.put_blob_bytes(self.tier, key, data)
            except (InvalidInputError, OSError):
                self.spill_errors += 1
        self.peer_hits += 1
        self.memory.put(key, value, blob[0].get("memory_nbytes"))
        return value, "peer"

    def put(self, key: str, value: Any,
            nbytes: Optional[int] = None) -> bool:
        """Insert into memory and spill to disk; returns the memory verdict.

        ``nbytes`` overrides the memory tier's size estimate.  A failed
        spill (full disk, permission error) is counted, not raised: the
        serving path must not fail a job over a cold-cache-on-restart
        degradation.
        """
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        stored = self.memory.put(key, value, size)
        if self.store is not None:
            started = time.perf_counter()
            try:
                meta, arrays = self._encode(value)
                meta = dict(meta)
                meta["memory_nbytes"] = size  # reused on promotion
                self.store.put(self.tier, key, meta, arrays)
            except OSError:
                self.spill_errors += 1
            finally:
                self._io_put.observe(time.perf_counter() - started)
        return stored

    def size_of(self, key: str) -> Optional[int]:
        """The memory tier's byte estimate for ``key`` (no recency effect)."""
        return self.memory.size_of(key)

    def clear(self) -> int:
        """Drop the memory level only; returns how many entries it held.

        The disk level is shared between tiers, so it is cleared once at
        the store (see :meth:`DiskStore.clear` / ``Engine.flush``).
        """
        dropped = len(self.memory)
        self.memory.clear()
        return dropped

    def stats(self) -> Dict[str, Any]:
        """Memory-tier stats plus a ``disk`` sub-document, JSON-safe."""
        out = self.memory.stats()
        out["disk"] = {
            "enabled": self.store is not None,
            "hits": self.disk_hits,
            "misses": self.disk_misses,
            "hit_rate": hit_rate(self.disk_hits, self.disk_misses),
            "spill_errors": self.spill_errors,
            "decode_errors": self.decode_errors,
            "read_errors": self.read_errors,
        }
        out["peer_hits"] = self.peer_hits
        return out
