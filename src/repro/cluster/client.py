"""Minimal stdlib HTTP client for one ``repro.service`` node.

One :class:`NodeClient` per :class:`~repro.cluster.topology.Node`; it
speaks the existing ``/v1`` JSON API (jobs, stats, healthz, admin) with a
per-request timeout and bounded retries.  Error taxonomy, keyed on the
server's error envelope (``{"error": {"code", "message", "retryable"}}``,
see :mod:`repro.api.contract`) rather than status-class guessing:

* :class:`~repro.errors.NodeUnavailableError` — connection refused/reset,
  timeout, or a *retryable* error response (5xx).  The node may be down;
  the router fails the work over to the next node in ring order.
* :class:`~repro.errors.NodeOverloadedError` — a 429 shed.  Failover-
  eligible (another node may have headroom) but the node is *alive*: the
  router must not mark it down, and ``retry_after`` carries the server's
  ``Retry-After`` hint.
* :class:`NodeHTTPError` — a non-retryable error (4xx: unknown job id,
  bad spec).  The *request* is at fault; failing over would just repeat
  the mistake on another node, so it propagates with the upstream status
  code and machine-readable ``error_code``.

Responses without an envelope (legacy ``{"error": str}`` or non-JSON)
fall back to the status class: 5xx retryable, 4xx not.

Retries apply only to idempotent GETs (a lookup repeated is harmless); a
``POST /v1/jobs`` is never retried against the *same* node — re-dispatch
on a different node is the router's at-most-one failover, mirroring the
engine's crashed-worker policy.

Retry pacing is :func:`backoff_delay`: capped exponential backoff with
*deterministic* jitter (a multiplicative hash of the attempt counter —
no RNG, so tests and replays see identical schedules), except that a 429
shed's ``Retry-After`` hint, when present, overrides the exponential
curve — the server knows its own drain rate better than any client-side
guess.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlencode

from repro.api.contract import parse_error_envelope
from repro.cluster.topology import Node
from repro.errors import (
    ClusterError,
    NodeOverloadedError,
    NodeUnavailableError,
)
from repro.obs import TRACE_HEADER, to_header

#: Seconds a single HTTP request may take before the node counts as down.
DEFAULT_TIMEOUT = 30.0
#: Extra attempts for idempotent GETs (total attempts = retries + 1).
DEFAULT_RETRIES = 1
#: First-retry delay of the exponential backoff curve (seconds).
BACKOFF_BASE = 0.05
#: Ceiling of the exponential curve — a client-side guess never waits
#: longer than this between attempts.
BACKOFF_CAP = 2.0
#: Ceiling on an honored ``Retry-After`` hint: a server asking for more
#: than this is trusted about *direction* but not magnitude.
RETRY_AFTER_CAP = 30.0


def backoff_delay(attempt: int,
                  retry_after: Optional[float] = None) -> float:
    """Seconds to sleep before retry number ``attempt`` (1-based).

    With a positive ``retry_after`` (the server's own 429 hint) that
    value wins, capped at :data:`RETRY_AFTER_CAP`.  Otherwise the delay
    is capped exponential — ``BACKOFF_BASE * 2**(attempt-1)`` up to
    :data:`BACKOFF_CAP` — scaled into ``[50%, 100%]`` by deterministic
    jitter: Knuth's multiplicative hash of the attempt counter, so two
    clients that failed together still decorrelate their retries without
    any RNG (replays and tests see the exact same schedule).
    """
    if attempt < 1:
        raise ClusterError(f"attempt must be >= 1, got {attempt}")
    if retry_after is not None and retry_after > 0:
        return min(float(retry_after), RETRY_AFTER_CAP)
    delay = min(BACKOFF_BASE * 2.0 ** (attempt - 1), BACKOFF_CAP)
    fraction = ((attempt * 2654435761) & 0xFFFFFFFF) / 2.0 ** 32
    return delay * (0.5 + 0.5 * fraction)


class NodeHTTPError(ClusterError):
    """A node answered with a non-retryable error — the request is bad.

    ``code`` is the HTTP status, ``error_code`` the envelope's
    machine-readable name (``unknown_job``, ``bad_request``, ... or
    ``None`` from a legacy server), ``retryable`` always ``False`` —
    retryable errors raise :class:`NodeUnavailableError` /
    :class:`NodeOverloadedError` instead.
    """

    def __init__(self, code: int, message: str, *,
                 error_code: Optional[str] = None,
                 retryable: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.error_code = error_code
        self.retryable = retryable


class NodeClient:
    """HTTP access to one node's ``/v1`` API (stdlib only, thread-safe)."""

    def __init__(self, node: Node, *, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES) -> None:
        if timeout <= 0:
            raise ClusterError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ClusterError(f"retries must be >= 0, got {retries}")
        self.node = node
        self.timeout = timeout
        self.retries = retries

    # ------------------------------------------------------------- transport

    def _request(self, path: str, body: Optional[Dict[str, Any]] = None, *,
                 timeout: Optional[float] = None,
                 idempotent: bool = True,
                 extra_headers: Optional[Dict[str, str]] = None,
                 decode: bool = True,
                 raw_body: Optional[bytes] = None,
                 binary: bool = False) -> Tuple[Any, str]:
        """One JSON round trip; returns ``(decoded body, X-Repro-Node)``.

        ``body`` switches the request to POST; ``raw_body`` does too but
        ships opaque bytes (artifact pushes) instead of JSON.
        ``decode=False`` returns the raw text (the Prometheus
        exposition); ``binary=True`` returns the untouched response bytes
        (artifact blobs).  Connection-level failures and retryable error
        responses raise :class:`NodeUnavailableError` (a 429 shed the
        :class:`NodeOverloadedError` refinement, after ``retries`` extra
        attempts when ``idempotent``, paced by :func:`backoff_delay`);
        non-retryable errors raise :class:`NodeHTTPError`.
        """
        url = f"{self.node.base_url}{path}"
        if raw_body is not None:
            data: Optional[bytes] = raw_body
            headers = {"Content-Type": "application/octet-stream"}
        else:
            data = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} \
                if body is not None else {}
        if extra_headers:
            headers.update(extra_headers)
        attempts = (self.retries + 1) if idempotent else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(backoff_delay(
                    attempt, getattr(last_error, "retry_after", None)))
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=timeout if timeout is not None
                        else self.timeout) as response:
                    raw = response.read()
                    if binary:
                        decoded: Any = raw
                    else:
                        decoded = json.loads(raw) if decode \
                            else raw.decode()
                    return decoded, response.headers.get("X-Repro-Node", "")
            except urllib.error.HTTPError as exc:
                error = self._typed_error(exc)
                if isinstance(error, NodeUnavailableError):
                    last_error = error
                    if attempt + 1 < attempts:
                        continue
                    raise error from exc
                raise error from exc
            except (urllib.error.URLError, socket.timeout, TimeoutError,
                    ConnectionError, OSError,
                    json.JSONDecodeError) as exc:
                # A truncated/garbled body (JSONDecodeError) means the node
                # died mid-response — unavailability, not a bad request.
                last_error = exc
        raise NodeUnavailableError(
            f"node {self.node.name} unreachable at {url}: "
            f"{last_error}") from last_error

    def _typed_error(self, exc: urllib.error.HTTPError) -> ClusterError:
        """The typed exception for one HTTP error response.

        Keyed on the envelope's ``retryable`` flag when present, the
        status class (5xx retryable) otherwise.
        """
        error_code, detail, retryable = self._parse_body(exc)
        if retryable is None:
            retryable = exc.code >= 500
        if exc.code == 429:
            return NodeOverloadedError(
                f"node {self.node.name} shed the request (429): {detail}",
                retry_after=self._retry_after(exc))
        if retryable:
            return NodeUnavailableError(
                f"node {self.node.name} answered {exc.code}: {detail}")
        return NodeHTTPError(exc.code, detail, error_code=error_code,
                             retryable=False)

    @staticmethod
    def _parse_body(exc: urllib.error.HTTPError
                    ) -> Tuple[Optional[str], str, Optional[bool]]:
        try:
            return parse_error_envelope(json.loads(exc.read()))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None, str(exc.reason), None

    @staticmethod
    def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
        try:
            return float(exc.headers.get("Retry-After"))
        except (TypeError, ValueError):
            return None

    # -------------------------------------------------------------- /v1 api

    def healthz(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("/v1/healthz", timeout=timeout)[0]

    def stats(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("/v1/stats", timeout=timeout)[0]

    def metrics_json(self, *, timeout: Optional[float] = None
                     ) -> Dict[str, Any]:
        """The node's metrics registry document (``/v1/metrics?format=json``)."""
        return self._request("/v1/metrics?format=json", timeout=timeout)[0]

    def metrics_text(self, *, timeout: Optional[float] = None) -> str:
        """The node's Prometheus text exposition (``/v1/metrics``)."""
        return self._request("/v1/metrics", timeout=timeout,
                             decode=False)[0]

    def submit(self, body: Dict[str, Any],
               trace: Optional[Dict[str, Any]] = None
               ) -> Tuple[Dict[str, Any], str]:
        """POST one job spec; returns ``(202 body, serving node name)``.

        ``trace`` is a router-side trace context shipped in the
        ``X-Repro-Trace`` header, so the node appends its spans to the
        routing history instead of starting a fresh trace.
        """
        extra = {TRACE_HEADER: to_header(trace)} if trace is not None \
            else None
        return self._request("/v1/jobs", body, idempotent=False,
                             extra_headers=extra)

    def job(self, job_id: str,
            wait_s: float = 0.0) -> Tuple[Dict[str, Any], str]:
        """GET one job (long-polling ``wait_s`` seconds server-side).

        The HTTP timeout stretches to cover the requested wait, so a
        legitimate long-poll is not misread as node death.
        """
        path = f"/v1/jobs/{job_id}"
        if wait_s > 0:
            path += f"?wait_s={wait_s:.3f}"
        return self._request(path, timeout=self.timeout + max(0.0, wait_s))

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {} if tier is None else {"tier": tier}
        return self._request("/v1/admin/flush", body, idempotent=False)[0]

    def compact(self) -> Dict[str, Any]:
        return self._request("/v1/admin/compact", {}, idempotent=False)[0]

    def traces(self, params: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """GET the node's archived-trace query endpoint.

        ``params`` uses the wire names (``since``, ``min_duration_ms``,
        ``outcome``, ``algorithm``, ``limit``); values are urlencoded
        as-is.
        """
        path = "/v1/traces"
        if params:
            path += "?" + urlencode(params)
        return self._request(path)[0]

    def trace(self, trace_id: str) -> Tuple[Dict[str, Any], str]:
        """GET one archived trace record (404 → :class:`NodeHTTPError`)."""
        return self._request(f"/v1/traces/{trace_id}")

    def profile(self, seconds: Optional[float] = None,
                hz: Optional[float] = None, *,
                fmt: str = "json",
                timeout: Optional[float] = None) -> Any:
        """GET ``/v1/profile`` — a JSON profile document by default,
        collapsed-stack text with ``fmt="collapsed"``.

        A capture blocks server-side for its whole window, so the HTTP
        timeout stretches to cover ``seconds`` (like :meth:`job` does
        for long-polls).  Not retried: a repeated capture doubles the
        sampling window.
        """
        params: Dict[str, Any] = {}
        if seconds is not None:
            params["seconds"] = f"{float(seconds):.3f}"
        if hz is not None:
            params["hz"] = f"{float(hz):g}"
        if fmt != "collapsed":
            params["format"] = fmt
        path = "/v1/profile"
        if params:
            path += "?" + urlencode(params)
        stretched = (timeout if timeout is not None else self.timeout) \
            + max(0.0, float(seconds or 0.0))
        return self._request(path, timeout=stretched, idempotent=False,
                             decode=(fmt == "json"))[0]

    def events(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """GET the node's structured-event ring (newest ``limit``)."""
        path = "/v1/admin/events"
        if limit is not None:
            path += f"?limit={int(limit)}"
        return self._request(path)[0]

    def dump(self) -> Dict[str, Any]:
        """POST ``/v1/admin/dump``; returns the flight-recorder bundle."""
        return self._request("/v1/admin/dump", {}, idempotent=False)[0]

    # ------------------------------------------------------------- artifacts

    def artifact(self, tier: str, key: str, *,
                 timeout: Optional[float] = None) -> bytes:
        """GET one cache artifact's raw ``.npz`` bytes.

        A node that does not hold the blob answers 404
        (:class:`NodeHTTPError`) — the expected miss during peer fetch,
        not a health event.
        """
        return self._request(f"/v1/artifacts/{tier}/{key}",
                             timeout=timeout, binary=True)[0]

    def artifact_put(self, tier: str, key: str, data: bytes, *,
                     reason: str = "replica",
                     timeout: Optional[float] = None) -> Dict[str, Any]:
        """POST one artifact blob into the node's store.

        Idempotent by construction (content-addressed key, validated
        before the atomic rename) but not retried: the pusher owns the
        retry policy, and a duplicated push is merely wasted bytes.
        Returns the node's ``{"stored": bool, ...}`` receipt.
        """
        path = f"/v1/artifacts/{tier}/{key}?reason={reason}"
        return self._request(path, raw_body=data, idempotent=False,
                             timeout=timeout)[0]

    def artifact_list(self, *, timeout: Optional[float] = None
                      ) -> Dict[str, Any]:
        """GET the node's on-disk artifact inventory (rebalance input)."""
        return self._request("/v1/artifacts", timeout=timeout)[0]
