"""Minimal stdlib HTTP client for one ``repro.service`` node.

One :class:`NodeClient` per :class:`~repro.cluster.topology.Node`; it
speaks the existing ``/v1`` JSON API (jobs, stats, healthz, admin) with a
per-request timeout and bounded retries.  Error taxonomy:

* :class:`~repro.errors.NodeUnavailableError` — connection refused/reset,
  timeout, or a 5xx response.  The node may be down; the router fails the
  work over to the next node in ring order.
* :class:`NodeHTTPError` — a 4xx response.  The *request* is at fault
  (unknown job id, bad spec); failing over would just repeat the mistake
  on another node, so it propagates with the upstream status code.

Retries apply only to idempotent GETs (a lookup repeated is harmless); a
``POST /v1/jobs`` is never retried against the *same* node — re-dispatch
on a different node is the router's at-most-one failover, mirroring the
engine's crashed-worker policy.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.cluster.topology import Node
from repro.errors import ClusterError, NodeUnavailableError
from repro.obs import TRACE_HEADER, to_header

#: Seconds a single HTTP request may take before the node counts as down.
DEFAULT_TIMEOUT = 30.0
#: Extra attempts for idempotent GETs (total attempts = retries + 1).
DEFAULT_RETRIES = 1


class NodeHTTPError(ClusterError):
    """A node answered with a 4xx status — the request itself is bad."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class NodeClient:
    """HTTP access to one node's ``/v1`` API (stdlib only, thread-safe)."""

    def __init__(self, node: Node, *, timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES) -> None:
        if timeout <= 0:
            raise ClusterError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ClusterError(f"retries must be >= 0, got {retries}")
        self.node = node
        self.timeout = timeout
        self.retries = retries

    # ------------------------------------------------------------- transport

    def _request(self, path: str, body: Optional[Dict[str, Any]] = None, *,
                 timeout: Optional[float] = None,
                 idempotent: bool = True,
                 extra_headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[Dict[str, Any], str]:
        """One JSON round trip; returns ``(decoded body, X-Repro-Node)``.

        ``body`` switches the request to POST.  Connection-level failures
        and 5xx responses raise :class:`NodeUnavailableError` (after
        ``retries`` extra attempts when ``idempotent``); 4xx raise
        :class:`NodeHTTPError`.
        """
        url = f"{self.node.base_url}{path}"
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if body is not None \
            else {}
        if extra_headers:
            headers.update(extra_headers)
        attempts = (self.retries + 1) if idempotent else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(min(0.05 * attempt, 0.5))
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(
                        request,
                        timeout=timeout if timeout is not None
                        else self.timeout) as response:
                    decoded = json.loads(response.read())
                    return decoded, response.headers.get("X-Repro-Node", "")
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code >= 500:
                    last_error = exc
                    if attempt + 1 < attempts:
                        continue
                    raise NodeUnavailableError(
                        f"node {self.node.name} answered "
                        f"{exc.code}: {detail}") from exc
                raise NodeHTTPError(exc.code, detail) from exc
            except (urllib.error.URLError, socket.timeout, TimeoutError,
                    ConnectionError, OSError,
                    json.JSONDecodeError) as exc:
                # A truncated/garbled body (JSONDecodeError) means the node
                # died mid-response — unavailability, not a bad request.
                last_error = exc
        raise NodeUnavailableError(
            f"node {self.node.name} unreachable at {url}: "
            f"{last_error}") from last_error

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read())
            return str(payload.get("error", payload))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return str(exc.reason)

    # -------------------------------------------------------------- /v1 api

    def healthz(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("/v1/healthz", timeout=timeout)[0]

    def stats(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("/v1/stats", timeout=timeout)[0]

    def metrics_json(self, *, timeout: Optional[float] = None
                     ) -> Dict[str, Any]:
        """The node's metrics registry document (``/v1/metrics?format=json``)."""
        return self._request("/v1/metrics?format=json", timeout=timeout)[0]

    def submit(self, body: Dict[str, Any],
               trace: Optional[Dict[str, Any]] = None
               ) -> Tuple[Dict[str, Any], str]:
        """POST one job spec; returns ``(202 body, serving node name)``.

        ``trace`` is a router-side trace context shipped in the
        ``X-Repro-Trace`` header, so the node appends its spans to the
        routing history instead of starting a fresh trace.
        """
        extra = {TRACE_HEADER: to_header(trace)} if trace is not None \
            else None
        return self._request("/v1/jobs", body, idempotent=False,
                             extra_headers=extra)

    def job(self, job_id: str,
            wait_s: float = 0.0) -> Tuple[Dict[str, Any], str]:
        """GET one job (long-polling ``wait_s`` seconds server-side).

        The HTTP timeout stretches to cover the requested wait, so a
        legitimate long-poll is not misread as node death.
        """
        path = f"/v1/jobs/{job_id}"
        if wait_s > 0:
            path += f"?wait_s={wait_s:.3f}"
        return self._request(path, timeout=self.timeout + max(0.0, wait_s))

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {} if tier is None else {"tier": tier}
        return self._request("/v1/admin/flush", body, idempotent=False)[0]

    def compact(self) -> Dict[str, Any]:
        return self._request("/v1/admin/compact", {}, idempotent=False)[0]
