"""Multi-node job dispatch over shared content-addressed stores.

The paper's amortization ladder, one more rung up: PR 1 amortized
``T_tree`` across requests (in-memory tiers), PR 3 across process
lifetimes (the persistent store), and this package amortizes it across
**machines** — a router shards jobs over N ``repro.service`` nodes by the
content fingerprint of their point sets, so every point set has a home
node whose BVH / core-distance / result tiers stay warm for it, and the
fleet's aggregate cache is the sum of its nodes' instead of N copies of
one working set.

Layers
------
``repro.cluster.topology``  ``Node`` descriptors + the consistent-hash
                            ring with rendezvous-ordered failover
``repro.cluster.client``    stdlib HTTP client for one node's ``/v1`` API
``repro.cluster.router``    ``ClusterRouter`` — validate/fingerprint
                            locally, route by ring position, fail over at
                            most once, recover lost jobs by resubmission,
                            aggregate fleet stats
``repro.cluster.server``    the router's own HTTP front end (same API as
                            a node — clients can't tell them apart)

Example
-------
>>> from repro.cluster import ClusterRouter, Node          # doctest: +SKIP
>>> router = ClusterRouter([Node("http://10.0.0.1:8321"),  # doctest: +SKIP
...                         Node("http://10.0.0.2:8321")])
>>> router.submit({"dataset": "Uniform100M2:100000"})      # doctest: +SKIP
{'job_id': 'job-000001', 'status': 'pending', 'node': '10.0.0.1:8321'}

Or from the command line: ``python -m repro route --node URL --node URL``
fronts running nodes, and ``python -m repro cluster-demo`` boots a whole
fleet locally to watch the routing happen.
"""

from repro.cluster.client import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    NodeClient,
    NodeHTTPError,
    backoff_delay,
)
from repro.cluster.rebalance import plan_rebalance, run_rebalance
from repro.cluster.router import ClusterRouter
from repro.cluster.server import create_router_server, run_router_server
from repro.cluster.topology import HashRing, Node, stable_hash
from repro.errors import NodeOverloadedError, NodeUnavailableError

__all__ = [
    "ClusterRouter",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT",
    "HashRing",
    "Node",
    "NodeClient",
    "NodeHTTPError",
    "NodeOverloadedError",
    "NodeUnavailableError",
    "backoff_delay",
    "create_router_server",
    "plan_rebalance",
    "run_rebalance",
    "run_router_server",
    "stable_hash",
]
