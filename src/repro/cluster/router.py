"""The cluster router: one submit/result façade over N service nodes.

:class:`ClusterRouter` makes a fleet of ``repro.service`` nodes look like
one engine.  Per job it:

1. **validates and fingerprints locally** — the spec is parsed with the
   same :class:`~repro.service.jobs.JobSpec` validation the nodes use (a
   bad spec is rejected at the router, costing no node a request) and its
   point content is hashed with :func:`repro.store.fingerprint_spec`, the
   exact digest the nodes key their cache tiers by;
2. **routes by ring position** — the consistent-hash ring maps the
   points-fingerprint to a node, so repeat submissions of the same point
   set land where the BVH / core-distance / result tiers are already warm
   (content-addressed keys make artifacts location-independent; the ring
   adds location *affinity* on top);
3. **fails over at most once** — on a connection error or 5xx the target
   is marked down and the job goes to the next node in preference order
   (ring primary, then rendezvous-ranked survivors), mirroring the
   engine's crashed-worker retry policy;
4. **recovers results across node death** — the router remembers each
   routed job's spec (bounded, like the engine's retention); if the
   owning node dies before the result is read, the next poll transparently
   *resubmits* to a surviving node.  Jobs are pure functions of their
   spec, so re-execution is safe and byte-identical;
5. **replicates artifacts across homes** (``replicas=k`` > 1) — when a
   job finishes, a background worker copies its result/tree/core blobs
   from the serving node to the key's other ring homes via the artifact
   endpoints, so a node death costs *zero recomputation*: the failover
   home answers from its own warm disk tier.  Write-through is
   best-effort cache warming (bounded queue, drops under pressure),
   never a durability promise — recompute-from-spec remains the floor.

Dataset-spec fingerprints are memoized (the specs are deterministic), so
routing a repeat dataset job costs a dict lookup, not a regeneration —
the same trick the engine itself uses.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import repro
from repro.api.contract import DEFAULT_TRACE_LIMIT, ERR_UNKNOWN_TRACE
from repro.cluster.client import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    NodeClient,
    NodeHTTPError,
)
from repro.cluster.topology import HashRing, Node
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeOverloadedError,
    NodeUnavailableError,
    ReproError,
)
from repro.store import combine_fingerprint
from repro.metrics import fleet_hit_rate, fleet_mfeatures_per_second
from repro.obs import (
    MetricsRegistry,
    make_span,
    make_trace,
    merge_profiles,
    obs_enabled,
    render_prometheus,
)
from repro.service.jobs import JobSpec
from repro.store import fingerprint_spec

#: Routed jobs kept resolvable (and re-submittable) at once; mirrors the
#: engine's own finished-job retention cap.
DEFAULT_MAX_ROUTES = 4096
#: Seconds a node stays skipped after a failure before the router risks a
#: request on it again (half-open probe).
DEFAULT_RETRY_DOWN_AFTER = 5.0
#: Timeout for fleet-wide healthz/stats probes.  Deliberately much shorter
#: than the job timeout: these answer from memory on a healthy node, and a
#: hung node must not stall a whole fleet-status call for the full job
#: timeout times the node count (probes run sequentially).
DEFAULT_PROBE_TIMEOUT = 5.0
#: Memoized dataset-spec fingerprints (tiny entries, safety cap).
_MAX_DATASET_MEMO = 4096
#: Replica write-through queue depth.  Replication is an optimization
#: (a dropped copy costs one recompute after a death, never correctness),
#: so a slow fleet sheds copy work instead of backing up submissions.
REPLICA_QUEUE_DEPTH = 256


@dataclass
class _Route:
    """Router-side record of one dispatched job.

    Coalesced submissions share one ``_Route`` instance under several
    routed ids, so a recovery (node death, retention eviction) moves
    every rider at once and the upstream executes exactly once.
    """

    spec: JobSpec
    points_fp: str
    node_name: str
    upstream_id: str
    #: ``(points_fp, params_key)`` while the job may still be in flight;
    #: the first terminal poll clears the in-flight index entry.
    coalesce_key: Optional[Tuple[str, str]] = None
    resubmits: int = 0
    #: Set once the route's artifacts have been queued for replica
    #: write-through — every coalesced rider observes the same terminal
    #: poll, but the fleet only needs one copy pass.
    replicated: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Router-side trace context: hop spans accumulated across dispatch,
    #: failover and recovery, shipped to the serving node in the
    #: ``X-Repro-Trace`` header (``None`` when tracing is off).
    trace: Optional[Dict[str, Any]] = None


class ClusterRouter:
    """Routes the ``/v1`` job API across a fleet of service nodes."""

    def __init__(self, nodes: List[Node], *,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 max_routes: int = DEFAULT_MAX_ROUTES,
                 retry_down_after: float = DEFAULT_RETRY_DOWN_AFTER,
                 probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
                 replicas: int = 1,
                 obs: Optional[bool] = None) -> None:
        if not nodes:
            raise InvalidInputError("a cluster needs at least one node")
        if max_routes < 1:
            raise InvalidInputError(
                f"max_routes must be >= 1, got {max_routes}")
        if replicas < 1:
            raise InvalidInputError(
                f"replicas must be >= 1, got {replicas}")
        self.probe_timeout = min(probe_timeout, timeout)
        self.replicas = replicas
        self.ring = HashRing(nodes)
        self.clients: Dict[str, NodeClient] = {
            node.name: NodeClient(node, timeout=timeout, retries=retries)
            for node in nodes}
        self.max_routes = max_routes
        self.retry_down_after = retry_down_after
        self._routes: "OrderedDict[str, _Route]" = OrderedDict()
        #: In-flight upstream jobs by ``(points_fp, params_key)``:
        #: identical concurrent submissions ride the same upstream job
        #: instead of recomputing (request coalescing).
        self._inflight: Dict[Tuple[str, str], _Route] = {}
        self._dataset_fp: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started_at = time.perf_counter()
        #: Nodes with a cool-off re-probe currently in flight; concurrent
        #: routing calls skip such a node rather than pile probes on it.
        self._probing: Set[str] = set()
        self._probe_guard = threading.Lock()
        # Replica write-through: terminal routes queue here; one daemon
        # worker copies their artifacts to the key's other home nodes.
        self._replica_q: "queue.Queue[Optional[_Route]]" = queue.Queue(
            maxsize=REPLICA_QUEUE_DEPTH)
        self._replica_worker: Optional[threading.Thread] = None
        self._replica_active = 0
        self._closed = False
        # Router-level accounting lives in a metrics registry (like the
        # engine's), read back by `stats()` and scraped by /v1/metrics.
        self.registry = MetricsRegistry(
            enabled=obs_enabled() if obs is None else bool(obs))
        self._submitted_c = self.registry.counter(
            "repro_router_jobs_routed_total",
            "Jobs accepted and routed (including coalesced riders).")
        self._failovers_c = self.registry.counter(
            "repro_router_failovers_total",
            "Dispatches that failed over past an unavailable primary.")
        self._resubmits_c = self.registry.counter(
            "repro_router_resubmits_total",
            "Jobs transparently re-executed after their node lost them.")
        self._coalesced_c = self.registry.counter(
            "repro_router_coalesced_total",
            "Submissions that rode an identical in-flight upstream job.")
        routed_by_node = self.registry.counter(
            "repro_router_routed_by_node_total",
            "Dispatches per serving node.", labels=("node",))
        #: Pre-touched per-node handles: every node shows a zero sample
        #: on scrape, and `stats()` reports the full node list.
        self._routed_by_node_c = {
            node.name: routed_by_node.labels(node=node.name)
            for node in nodes}
        self._upstream_h = self.registry.histogram(
            "repro_router_upstream_seconds",
            "Latency of upstream job submissions, per node.",
            labels=("node",))
        self._replica_writes_c = self.registry.counter(
            "repro_replica_writes_total",
            "Replica write-through attempts, by outcome "
            "(ok/rejected/miss/error/dropped).", labels=("outcome",))
        self._reprobes_c = self.registry.counter(
            "repro_router_reprobes_total",
            "Cool-off health re-probes of down nodes, by outcome.",
            labels=("outcome",))
        self.registry.gauge(
            "repro_router_replica_pending",
            "Replica write-through passes queued or in progress.",
            fn=lambda: float(self.replica_pending()))
        self.registry.gauge(
            "repro_router_uptime_seconds",
            "Seconds since the router started.",
            fn=lambda: time.perf_counter() - self._started_at)
        self.registry.gauge(
            "repro_router_known_routes",
            "Routed jobs currently resolvable at the router.",
            fn=lambda: len(self._routes))

    # ------------------------------------------------------------ placement

    def fingerprint(self, spec: JobSpec) -> str:
        """The routing key of ``spec`` — its points-content fingerprint."""
        memo_key = None
        if spec.dataset is not None:
            memo_key = spec.dataset.removeprefix("dataset:")
            cached = self._dataset_fp.get(memo_key)
            if cached is not None:
                return cached
        points_fp = fingerprint_spec(spec)
        if memo_key is not None:
            with self._lock:
                if len(self._dataset_fp) >= _MAX_DATASET_MEMO:
                    self._dataset_fp.clear()
                self._dataset_fp[memo_key] = points_fp
        return points_fp

    def _candidates(self, points_fp: str,
                    exclude: Tuple[str, ...] = ()) -> List[Node]:
        """Failover-ordered nodes for a key, shunning recently-down ones.

        A down node is skipped until ``retry_down_after`` seconds have
        passed since its last failure, then *re-probed* (cheap healthz,
        ``probe_timeout``) on its first hit in preference order: success
        flips it healthy fleet-wide — so replica placement and other
        routing calls see the recovery immediately, not merely the one
        dispatch that happened to land on it — while failure restarts the
        cool-off.  If the filter empties the list, every node (minus
        ``exclude``) is returned anyway — a fleet that looks entirely
        down must still try *something* rather than fail without a
        connection attempt.
        """
        preferred = [node for node in self.ring.preference(points_fp)
                     if node.name not in exclude]
        now = time.monotonic()
        live = []
        for node in preferred:
            if node.healthy:
                live.append(node)
            elif now - node.last_failure_at >= self.retry_down_after \
                    and self._reprobe(node):
                live.append(node)
        return live or preferred

    def _reprobe(self, node: Node) -> bool:
        """Health-probe one cooled-off down node; ``True`` if it rejoined.

        Guarded by :attr:`_probing`: while one caller's probe is in
        flight, concurrent callers skip the node instead of stacking
        probes (and blocking) on a possibly-still-dead host.
        """
        with self._probe_guard:
            if node.name in self._probing:
                return False
            self._probing.add(node.name)
        try:
            self.clients[node.name].healthz(timeout=self.probe_timeout)
        except (NodeOverloadedError, NodeHTTPError):
            # Shedding or refusing is proof of life: the node is back.
            node.mark_up()
            self._reprobes_c.inc(outcome="up")
            return True
        except NodeUnavailableError as exc:
            node.mark_down(str(exc))  # restart the cool-off clock
            self._reprobes_c.inc(outcome="down")
            return False
        else:
            node.mark_up()
            self._reprobes_c.inc(outcome="up")
            return True
        finally:
            with self._probe_guard:
                self._probing.discard(node.name)

    # --------------------------------------------------------------- submit

    def submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Validate, route and dispatch one job-spec body.

        Returns the node's 202 body with the router's own job id and the
        serving node's name under ``"node"``.  Raises
        :class:`InvalidInputError` for a bad spec (the caller's 400) and
        :class:`NodeUnavailableError` when the primary *and* the failover
        node both fail (the caller's 503).
        """
        spec = JobSpec.from_dict(body)
        points_fp = self.fingerprint(spec)
        key = (points_fp, spec.params_key())
        with self._lock:
            shared = self._inflight.get(key)
        if shared is not None:
            # Identical spec already in flight: ride its upstream job.
            routed_id = f"job-{next(self._ids):06d}"
            with self._lock:
                self._routes[routed_id] = shared
                while len(self._routes) > self.max_routes:
                    self._routes.popitem(last=False)
            self._submitted_c.inc()
            self._coalesced_c.inc()
            return {"job_id": routed_id, "status": "pending",
                    "node": shared.node_name}
        trace = make_trace() if self.registry.enabled else None
        accepted, node = self._dispatch(spec, points_fp, trace=trace)
        routed_id = f"job-{next(self._ids):06d}"
        route = _Route(spec=spec, points_fp=points_fp,
                       node_name=node.name,
                       upstream_id=accepted["job_id"],
                       coalesce_key=key, trace=trace)
        with self._lock:
            self._routes[routed_id] = route
            if len(self._inflight) >= self.max_routes:  # safety bound
                self._inflight.clear()
            # Insert-if-absent: two submissions racing past the lookup
            # above both dispatched (best-effort coalescing), but the
            # index must keep exactly one of them — overwriting would
            # orphan the first route's terminal-poll cleanup.
            if key in self._inflight:
                route.coalesce_key = None
            else:
                self._inflight[key] = route
            while len(self._routes) > self.max_routes:
                self._routes.popitem(last=False)
        self._submitted_c.inc()
        self._routed_by_node_c[node.name].inc()
        return {**accepted, "job_id": routed_id, "node": node.name}

    def _dispatch(self, spec: JobSpec, points_fp: str,
                  exclude: Tuple[str, ...] = (),
                  trace: Optional[Dict[str, Any]] = None
                  ) -> Tuple[Dict[str, Any], Node]:
        """Send a spec to the first candidate that takes it.

        Bounded retry: the primary plus ``max(2, replicas) - 1``
        failovers — exactly the key's home set when replication is on,
        mirroring the engine's crashed-worker policy otherwise (a job
        that breaks *every* node it touches should fail loudly, not walk
        the whole fleet).

        With ``trace`` set, each attempt appends a ``route`` hop span and
        the whole context travels in the ``X-Repro-Trace`` header — the
        span goes in *before* the send so the accepting node's copy
        includes its own hop; an attempt that fails never delivered the
        header, so its span is amended locally (``outcome:
        "unavailable"``) and rides along to the next attempt.
        """
        body = spec.to_dict()
        last_error: Optional[Exception] = None
        # With replication, any of the k homes may hold the warm copy —
        # walking that many candidates keeps failover reads hitting disk
        # instead of recomputing (k=1 keeps the historical primary+1).
        width = max(2, self.replicas)
        for attempt, node in enumerate(
                self._candidates(points_fp, exclude)[:width]):
            client = self.clients[node.name]
            hop: Optional[Dict[str, Any]] = None
            if trace is not None:
                hop = make_span("route", node=node.name, attempt=attempt,
                                outcome="accepted")
                trace["spans"].append(hop)
            started = time.perf_counter()
            try:
                accepted, _header = client.submit(body, trace=trace)
            except NodeUnavailableError as exc:
                # A shed (429) is failover-eligible but the node is alive:
                # record the hop, try the next candidate, never mark_down.
                overloaded = isinstance(exc, NodeOverloadedError)
                elapsed = time.perf_counter() - started
                self._upstream_h.observe(elapsed, node=node.name)
                if hop is not None:
                    hop["duration_s"] = elapsed
                    hop["meta"]["outcome"] = \
                        "overloaded" if overloaded else "unavailable"
                    hop["meta"]["error"] = str(exc)[:200]
                if not overloaded:
                    node.mark_down(str(exc))
                if last_error is None:
                    self._failovers_c.inc()
                last_error = exc
                continue
            elapsed = time.perf_counter() - started
            self._upstream_h.observe(elapsed, node=node.name)
            if hop is not None:
                hop["duration_s"] = elapsed
            node.mark_up()
            return accepted, node
        if isinstance(last_error, NodeOverloadedError):
            # Every candidate shed: surface the retryable 429 (with its
            # Retry-After hint) so the client backs off and retries the
            # fleet, rather than a 503 that reads as an outage.
            raise NodeOverloadedError(
                f"no node accepted the job (primary and failover "
                f"overloaded): {last_error}",
                retry_after=last_error.retry_after) from last_error
        raise NodeUnavailableError(
            f"no node accepted the job (tried primary and failover): "
            f"{last_error}") from last_error

    # --------------------------------------------------------------- results

    def _route(self, routed_id: str) -> _Route:
        with self._lock:
            route = self._routes.get(routed_id)
        if route is None:
            raise InvalidInputError(f"unknown job id {routed_id!r}")
        return route

    def job(self, routed_id: str,
            wait_s: float = 0.0) -> Tuple[Dict[str, Any], str]:
        """Proxy one job lookup; returns ``(body, serving node name)``.

        If the owning node died, the spec is resubmitted to the next node
        in preference order (transparent recovery) and the lookup
        continues there within the same call.
        """
        route = self._route(routed_id)
        observed_node = route.node_name
        client = self.clients[observed_node]
        node = self.ring.get(observed_node)
        try:
            body, _header = client.job(route.upstream_id, wait_s)
        except NodeOverloadedError:
            # The node is alive and still owns the job — shedding a poll
            # is not job loss, so no mark_down and no recovery
            # resubmission; the client backs off and polls again.
            raise
        except NodeUnavailableError as exc:
            if node is not None:
                node.mark_down(str(exc))
            body = self._recover(route, observed_node, wait_s)
        except NodeHTTPError as exc:
            if exc.code == 404:
                # The node forgot the job (restart, retention eviction):
                # same recovery as node death — the spec re-executes.
                body = self._recover(route, observed_node, wait_s)
            else:
                raise
        else:
            if node is not None:
                node.mark_up()
        status = body.get("status")
        if status in ("done", "failed") \
                and route.coalesce_key is not None:
            # Terminal: later identical submissions should hit the nodes'
            # result caches, not this finished upstream job.
            with self._lock:
                if self._inflight.get(route.coalesce_key) is route:
                    del self._inflight[route.coalesce_key]
            route.coalesce_key = None
        if status == "done" and self.replicas > 1:
            self._queue_replication(route)
        return {**body, "job_id": routed_id, "node": route.node_name}, \
            route.node_name

    def _recover(self, route: _Route, failed_node: str,
                 wait_s: float) -> Dict[str, Any]:
        """Resubmit a lost job elsewhere and look it up once more.

        ``failed_node`` is the assignment the caller *observed* failing.
        One recovery runs at a time per route; a concurrent poller that
        blocked on the lock re-reads the assignment and, finding it
        already moved off the node it saw fail, polls the recovered
        placement instead of re-dispatching (which would double-execute
        the job — or, on a two-node fleet, exclude the only healthy
        node).
        """
        with route.lock:
            if route.node_name == failed_node:
                if route.trace is not None:
                    # The failed hop stays in the context; the recovery
                    # dispatch appends its own hop after this marker, so
                    # the re-executed job's trace shows the whole story.
                    route.trace["spans"].append(make_span(
                        "lost", node=failed_node, outcome="lost",
                        resubmits=route.resubmits + 1))
                accepted, node = self._dispatch(
                    route.spec, route.points_fp, exclude=(failed_node,),
                    trace=route.trace)
                route.node_name = node.name
                route.upstream_id = accepted["job_id"]
                route.resubmits += 1
                self._resubmits_c.inc()
                self._routed_by_node_c[node.name].inc()
            current_node, current_id = route.node_name, route.upstream_id
        body, _header = self.clients[current_node].job(current_id, wait_s)
        return body

    # ------------------------------------------------------- replication

    def _queue_replication(self, route: _Route) -> None:
        """Queue one terminal route's artifacts for replica write-through.

        At most once per route (coalesced riders all observe the same
        terminal poll); a full queue *drops* the pass and counts it —
        replication is cache warming, not durability, so it must never
        backpressure the serving path.
        """
        with route.lock:
            if route.replicated:
                return
            route.replicated = True
        self._ensure_replica_worker()
        try:
            self._replica_q.put_nowait(route)
        except queue.Full:
            self._replica_writes_c.inc(outcome="dropped")

    def _ensure_replica_worker(self) -> None:
        with self._lock:
            if self._closed or (self._replica_worker is not None
                                and self._replica_worker.is_alive()):
                return
            self._replica_worker = threading.Thread(
                target=self._replica_loop, name="repro-replicator",
                daemon=True)
            self._replica_worker.start()

    def _replica_loop(self) -> None:
        while True:
            route = self._replica_q.get()
            if route is None:  # close() sentinel
                return
            with self._lock:
                self._replica_active += 1
            try:
                self._replicate(route)
            except Exception:  # noqa: BLE001 — worker must survive
                self._replica_writes_c.inc(outcome="error")
            finally:
                with self._lock:
                    self._replica_active -= 1

    def replica_pending(self) -> int:
        """Write-through passes not yet finished (queued + in flight)."""
        with self._lock:
            return self._replica_q.qsize() + self._replica_active

    def _replica_keys(self, route: _Route) -> List[Tuple[str, str]]:
        """The ``(tier, key)`` artifacts one finished job produced.

        Derived the same way the engine keys its tiers: content
        fingerprint combined with the spec's per-tier parameter strings
        (core distances exist only for the mutual-reachability
        algorithms).
        """
        spec, points_fp = route.spec, route.points_fp
        keys = [
            ("result", combine_fingerprint(points_fp, spec.params_key())),
            ("tree", combine_fingerprint(points_fp, spec.tree_key())),
        ]
        if spec.algorithm in ("mrd_emst", "hdbscan"):
            keys.append(
                ("core", combine_fingerprint(points_fp, spec.core_key())))
        return keys

    def _replicate(self, route: _Route) -> None:
        """Copy one route's artifacts from its serving node to the other
        home nodes of its key (ring placement, first ``replicas`` healthy
        preferences).

        Pull-then-push through the router: the wire format *is* the store
        format, so the bytes that leave the source are the bytes the
        target validates and renames into place — byte identity for free.
        Per (tier, target) outcome counting: ``ok`` stored, ``rejected``
        refused (oversized / no disk store), ``miss`` source lacks the
        blob (memory-only node), ``error`` transport trouble.
        """
        source_name = route.node_name
        source = self.clients.get(source_name)
        if source is None:
            self._replica_writes_c.inc(outcome="error")
            return
        targets = [node for node
                   in self.ring.homes(route.points_fp, self.replicas)
                   if node.name != source_name]
        if not targets:
            return
        for tier, key in self._replica_keys(route):
            try:
                data = source.artifact(tier, key)
            except NodeHTTPError:
                # The source never spilled this tier to disk; nothing to
                # copy is a per-tier miss, not a failure of the pass.
                self._replica_writes_c.inc(outcome="miss")
                continue
            except ReproError:
                self._replica_writes_c.inc(outcome="error")
                continue
            for target in targets:
                try:
                    receipt = self.clients[target.name].artifact_put(
                        tier, key, data)
                except ReproError:
                    self._replica_writes_c.inc(outcome="error")
                    continue
                self._replica_writes_c.inc(
                    outcome="ok" if receipt.get("stored") else "rejected")

    # --------------------------------------------------------- artifacts

    def artifacts(self) -> Dict[str, Any]:
        """Every reachable node's artifact inventory, by node."""
        nodes: List[Dict[str, Any]] = []
        for node in self.ring.nodes:
            try:
                doc = self.clients[node.name].artifact_list(
                    timeout=self.probe_timeout)
            except NodeUnavailableError as exc:
                if not isinstance(exc, NodeOverloadedError):
                    node.mark_down(str(exc))
                nodes.append({"node": node.name, "error": str(exc)})
                continue
            except NodeHTTPError as exc:
                nodes.append({"node": node.name, "error": str(exc)})
                continue
            nodes.append({"node": node.name,
                          "artifacts": doc.get("artifacts", [])})
        return {"role": "router", "nodes": nodes}

    def artifact(self, tier: str, key: str
                 ) -> Optional[Tuple[bytes, str]]:
        """Find one artifact anywhere in the fleet.

        Returns ``(bytes, holding node name)`` from the first node that
        has it, or ``None``.  A 404 is the expected miss; unreachable
        nodes are skipped so a partial fleet still serves what it holds.
        """
        for node in self.ring.nodes:
            try:
                data = self.clients[node.name].artifact(tier, key)
            except NodeHTTPError as exc:
                if exc.code == 404:
                    continue
                raise
            except NodeUnavailableError as exc:
                if not isinstance(exc, NodeOverloadedError):
                    node.mark_down(str(exc))
                continue
            return data, node.name
        return None

    # ----------------------------------------------------- fleet aggregates

    def healthz(self) -> Dict[str, Any]:
        """Probe every node; fleet status is ``ok`` only if all answer."""
        nodes = []
        up = 0
        for node in self.ring.nodes:
            try:
                health = self.clients[node.name].healthz(
                    timeout=self.probe_timeout)
            except NodeOverloadedError as exc:
                # Shedding load is proof of life, not unreachability.
                nodes.append({**node.as_dict(), "reachable": True,
                              "error": str(exc)})
                continue
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                nodes.append({**node.as_dict(), "reachable": False})
                continue
            except NodeHTTPError as exc:
                # Alive but refusing: reachable, yet not healthy — do not
                # route around it via mark_down, just report it.
                nodes.append({**node.as_dict(), "reachable": True,
                              "error": str(exc)})
                continue
            node.mark_up()
            up += 1
            nodes.append({**node.as_dict(), "reachable": True,
                          "backend": health.get("backend"),
                          "persistent": health.get("persistent")})
        status = "ok" if up == len(nodes) else \
            "degraded" if up else "down"
        return {"status": status, "role": "router",
                "version": repro.__version__,
                "nodes_up": up, "nodes_total": len(nodes), "nodes": nodes}

    def stats(self) -> Dict[str, Any]:
        """Fleet-level statistics: pooled hit rates and throughput.

        Per-node engine stats are fetched live; an unreachable node
        contributes an error entry instead of silently vanishing from the
        denominator (its counters are unknowable, not zero).
        """
        per_node: List[Dict[str, Any]] = []
        reachable: List[Dict[str, Any]] = []
        for node in self.ring.nodes:
            try:
                stats = self.clients[node.name].stats(
                    timeout=self.probe_timeout)
            except NodeOverloadedError as exc:
                per_node.append({"node": node.name, "error": str(exc)})
                continue
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                per_node.append({"node": node.name, "error": str(exc)})
                continue
            except NodeHTTPError as exc:
                per_node.append({"node": node.name, "error": str(exc)})
                continue
            node.mark_up()
            per_node.append({"node": node.name, **stats})
            reachable.append(stats)
        jobs: Dict[str, int] = {}
        for stats in reachable:
            for key, count in stats.get("jobs", {}).items():
                jobs[key] = jobs.get(key, 0) + int(count)
        tiers: Dict[str, Any] = {}
        for tier in ("tree", "result", "core"):
            cache_key = f"{tier}_cache"
            memory = [(s[cache_key]["hits"], s[cache_key]["misses"])
                      for s in reachable if cache_key in s]
            disk = [(s[cache_key]["disk"]["hits"],
                     s[cache_key]["disk"]["misses"])
                    for s in reachable if cache_key in s]
            tiers[cache_key] = {
                "hit_rate": fleet_hit_rate(memory),
                "disk_hit_rate": fleet_hit_rate(disk),
                "entries": sum(s[cache_key]["entries"]
                               for s in reachable if cache_key in s),
            }
        schedulers = [s["scheduler"] for s in reachable if "scheduler" in s]
        router = {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "jobs_routed": int(self._submitted_c.value()),
            "failovers": int(self._failovers_c.value()),
            "resubmits": int(self._resubmits_c.value()),
            "coalesced": int(self._coalesced_c.value()),
            "replicas": self.replicas,
            "replica_pending": self.replica_pending(),
            "known_routes": len(self._routes),
            "routed_by_node": {name: int(handle.value) for name, handle
                               in self._routed_by_node_c.items()},
        }
        return {
            "role": "router",
            "router": router,
            "fleet": {
                "nodes_total": len(per_node),
                "nodes_reachable": len(reachable),
                "jobs": jobs,
                **tiers,
                "mfeatures_per_sec": fleet_mfeatures_per_second(
                    [s.get("features_done", 0) for s in schedulers],
                    [s.get("busy_seconds", 0.0) for s in schedulers]),
                "jobs_per_sec": sum(s.get("jobs_per_sec", 0.0)
                                    for s in schedulers),
                "key_share": self.ring.key_share(1024),
            },
            "nodes": per_node,
        }

    def _scrape_nodes(self) -> Dict[str, Dict[str, Any]]:
        """Each reachable node's JSON metrics document, by node name."""
        docs: Dict[str, Dict[str, Any]] = {}
        for node in self.ring.nodes:
            try:
                docs[node.name] = self.clients[node.name].metrics_json(
                    timeout=self.probe_timeout)
            except NodeOverloadedError as exc:
                docs[node.name] = {"error": str(exc)}
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                docs[node.name] = {"error": str(exc)}
            except NodeHTTPError as exc:
                docs[node.name] = {"error": str(exc)}
        return docs

    def metrics_json(self) -> Dict[str, Any]:
        """Router + per-node metrics documents (``?format=json`` form)."""
        return {"role": "router", "router": self.registry.as_dict(),
                "nodes": self._scrape_nodes()}

    def metrics_prometheus(self) -> str:
        """One fleet-wide Prometheus text page.

        The router's own families come first (unlabeled); every reachable
        node's families are merged in under a ``node=<name>`` label, so
        one scrape of the router sees the whole fleet — and pooled
        quantiles can be computed by merging the per-node histogram
        buckets (never by averaging per-node quantiles).
        """
        documents = [({}, self.registry.as_dict())]
        for name, doc in self._scrape_nodes().items():
            if "error" not in doc:
                documents.append(({"node": name}, doc))
        return render_prometheus(documents)

    # ------------------------------------------------------------ obs query

    def traces(self, query: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """Fan an archived-trace query across the fleet and merge.

        ``query`` uses the validated internal form (``since``,
        ``min_duration_s``, ``outcome``, ``algorithm``, ``limit``).  Each
        node answers with its own retained records; the merge tags every
        record with its serving node, sorts slowest-first across the
        whole fleet and re-applies ``limit`` — so one router request
        answers "show me the slowest traces cluster-wide".  Unreachable
        nodes are reported per-node instead of failing the query.
        """
        query = dict(query or {})
        limit = int(query.pop("limit", DEFAULT_TRACE_LIMIT))
        params: Dict[str, Any] = {"limit": limit}
        if "since" in query:
            params["since"] = query["since"]
        if "min_duration_s" in query:
            params["min_duration_ms"] = query["min_duration_s"] * 1000.0
        for name in ("outcome", "algorithm"):
            if name in query:
                params[name] = query[name]
        merged: List[Dict[str, Any]] = []
        per_node: Dict[str, Any] = {}
        for node in self.ring.nodes:
            try:
                doc = self.clients[node.name].traces(params)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                per_node[node.name] = {"error": str(exc)}
                continue
            except (NodeOverloadedError, NodeHTTPError) as exc:
                per_node[node.name] = {"error": str(exc)}
                continue
            records = doc.get("traces", [])
            for record in records:
                merged.append({**record,
                               "node": record.get("node") or node.name})
            per_node[node.name] = {"returned": len(records),
                                   "stats": doc.get("stats")}
        merged.sort(key=lambda r: (-r.get("duration_s", 0.0),
                                   -r.get("ts", 0.0)))
        return {"traces": merged[:limit], "nodes": per_node}

    def trace(self, trace_id: str
              ) -> Optional[Tuple[Dict[str, Any], str]]:
        """Find one archived trace anywhere in the fleet.

        Returns ``(record, serving node name)`` from the first node that
        has it, or ``None`` — a node not knowing the id (404) is the
        expected miss, not an error; unreachable nodes are skipped the
        same way so a partial fleet still answers for the traces it has.
        """
        for node in self.ring.nodes:
            try:
                record, served_by = self.clients[node.name].trace(trace_id)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                continue
            except NodeOverloadedError:
                continue
            except NodeHTTPError as exc:
                if exc.error_code == ERR_UNKNOWN_TRACE or exc.code == 404:
                    continue
                raise
            return record, served_by or node.name
        return None

    def profile(self, seconds: Optional[float] = None,
                hz: Optional[float] = None) -> Dict[str, Any]:
        """Fan a profile capture across the fleet and merge.

        Every node captures **concurrently** (a sequential fan-out would
        multiply the capture window by the node count), each stack row
        in the merged document is tagged with its serving node, and
        unreachable nodes are reported per-node instead of failing the
        capture — one router request answers "where is the fleet
        spending its cycles right now".
        """
        docs: Dict[str, Dict[str, Any]] = {}
        per_node: Dict[str, Any] = {}

        def _capture(node: Node) -> None:
            try:
                docs[node.name] = self.clients[node.name].profile(
                    seconds=seconds, hz=hz)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                per_node[node.name] = {"error": str(exc)}
            except (NodeOverloadedError, NodeHTTPError) as exc:
                per_node[node.name] = {"error": str(exc)}

        threads = [threading.Thread(target=_capture, args=(node,),
                                    name=f"repro-profile-{node.name}")
                   for node in self.ring.nodes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_profiles(docs)
        for name, doc in docs.items():
            per_node[name] = {"samples": int(doc.get("samples", 0)),
                              "enabled": bool(doc.get("enabled"))}
        merged["role"] = "router"
        merged["nodes"] = per_node
        return merged

    def dump(self) -> Dict[str, Any]:
        """The router's flight-recorder bundle.

        Router-side state only (routing counters, registry, fleet
        health, ring shares) — node dumps are fetched from the nodes
        directly; bundling every node's full dump here would make the
        postmortem endpoint itself an outage amplifier.
        """
        with self._lock:
            known_routes = len(self._routes)
            inflight = len(self._inflight)
        return {
            "ts": time.time(),
            "role": "router",
            "known_routes": known_routes,
            "inflight_coalesce_keys": inflight,
            "metrics": self.registry.as_dict(),
            "healthz": self.healthz(),
            "key_share": self.ring.key_share(1024),
        }

    # ----------------------------------------------------------------- admin

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        """Fan a flush out to every node; collects per-node reports."""
        return self._fan_out("flush", lambda c: c.flush(tier))

    def compact(self) -> Dict[str, Any]:
        """Fan a store compaction out to every node."""
        return self._fan_out("compact", lambda c: c.compact())

    def _fan_out(self, op: str, call) -> Dict[str, Any]:
        nodes = []
        errors = 0
        first_http_error: Optional[NodeHTTPError] = None
        for node in self.ring.nodes:
            try:
                nodes.append({"node": node.name,
                              **call(self.clients[node.name])})
            except NodeHTTPError as exc:
                # A 4xx means the node is alive and rejected the *request*
                # — never a health event, and (when unanimous) the caller
                # deserves the node's own status code, not a 503.
                if first_http_error is None:
                    first_http_error = exc
                nodes.append({"node": node.name, "error": str(exc)})
                errors += 1
            except NodeOverloadedError as exc:
                nodes.append({"node": node.name, "error": str(exc)})
                errors += 1
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                nodes.append({"node": node.name, "error": str(exc)})
                errors += 1
        if errors == len(nodes):
            if first_http_error is not None:
                raise first_http_error
            raise ClusterError(f"{op} failed on every node")
        return {"status": "ok" if not errors else "partial",
                "nodes": nodes}

    def close(self) -> None:
        """Stop the replication worker and drop routing state."""
        with self._lock:
            self._closed = True
            worker = self._replica_worker
            self._routes.clear()
        if worker is not None and worker.is_alive():
            self._replica_q.put(None)  # sentinel: drain then exit
            worker.join(timeout=5.0)
