"""The cluster router: one submit/result façade over N service nodes.

:class:`ClusterRouter` makes a fleet of ``repro.service`` nodes look like
one engine.  Per job it:

1. **validates and fingerprints locally** — the spec is parsed with the
   same :class:`~repro.service.jobs.JobSpec` validation the nodes use (a
   bad spec is rejected at the router, costing no node a request) and its
   point content is hashed with :func:`repro.store.fingerprint_spec`, the
   exact digest the nodes key their cache tiers by;
2. **routes by ring position** — the consistent-hash ring maps the
   points-fingerprint to a node, so repeat submissions of the same point
   set land where the BVH / core-distance / result tiers are already warm
   (content-addressed keys make artifacts location-independent; the ring
   adds location *affinity* on top);
3. **fails over at most once** — on a connection error or 5xx the target
   is marked down and the job goes to the next node in preference order
   (ring primary, then rendezvous-ranked survivors), mirroring the
   engine's crashed-worker retry policy;
4. **recovers results across node death** — the router remembers each
   routed job's spec (bounded, like the engine's retention); if the
   owning node dies before the result is read, the next poll transparently
   *resubmits* to a surviving node.  Jobs are pure functions of their
   spec, so re-execution is safe and byte-identical.

Dataset-spec fingerprints are memoized (the specs are deterministic), so
routing a repeat dataset job costs a dict lookup, not a regeneration —
the same trick the engine itself uses.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.cluster.client import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    NodeClient,
    NodeHTTPError,
)
from repro.cluster.topology import HashRing, Node
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeUnavailableError,
)
from repro.metrics import fleet_hit_rate, fleet_mfeatures_per_second
from repro.service.jobs import JobSpec
from repro.store import fingerprint_spec

#: Routed jobs kept resolvable (and re-submittable) at once; mirrors the
#: engine's own finished-job retention cap.
DEFAULT_MAX_ROUTES = 4096
#: Seconds a node stays skipped after a failure before the router risks a
#: request on it again (half-open probe).
DEFAULT_RETRY_DOWN_AFTER = 5.0
#: Timeout for fleet-wide healthz/stats probes.  Deliberately much shorter
#: than the job timeout: these answer from memory on a healthy node, and a
#: hung node must not stall a whole fleet-status call for the full job
#: timeout times the node count (probes run sequentially).
DEFAULT_PROBE_TIMEOUT = 5.0
#: Memoized dataset-spec fingerprints (tiny entries, safety cap).
_MAX_DATASET_MEMO = 4096


@dataclass
class _Route:
    """Router-side record of one dispatched job.

    Coalesced submissions share one ``_Route`` instance under several
    routed ids, so a recovery (node death, retention eviction) moves
    every rider at once and the upstream executes exactly once.
    """

    spec: JobSpec
    points_fp: str
    node_name: str
    upstream_id: str
    #: ``(points_fp, params_key)`` while the job may still be in flight;
    #: the first terminal poll clears the in-flight index entry.
    coalesce_key: Optional[Tuple[str, str]] = None
    resubmits: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class ClusterRouter:
    """Routes the ``/v1`` job API across a fleet of service nodes."""

    def __init__(self, nodes: List[Node], *,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 max_routes: int = DEFAULT_MAX_ROUTES,
                 retry_down_after: float = DEFAULT_RETRY_DOWN_AFTER,
                 probe_timeout: float = DEFAULT_PROBE_TIMEOUT) -> None:
        if not nodes:
            raise InvalidInputError("a cluster needs at least one node")
        if max_routes < 1:
            raise InvalidInputError(
                f"max_routes must be >= 1, got {max_routes}")
        self.probe_timeout = min(probe_timeout, timeout)
        self.ring = HashRing(nodes)
        self.clients: Dict[str, NodeClient] = {
            node.name: NodeClient(node, timeout=timeout, retries=retries)
            for node in nodes}
        self.max_routes = max_routes
        self.retry_down_after = retry_down_after
        self._routes: "OrderedDict[str, _Route]" = OrderedDict()
        #: In-flight upstream jobs by ``(points_fp, params_key)``:
        #: identical concurrent submissions ride the same upstream job
        #: instead of recomputing (request coalescing).
        self._inflight: Dict[Tuple[str, str], _Route] = {}
        self._dataset_fp: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started_at = time.perf_counter()
        # Router-level counters (guarded by _lock).
        self._submitted = 0
        self._failovers = 0
        self._resubmits = 0
        self._coalesced = 0
        self._routed_by_node: Dict[str, int] = {n.name: 0 for n in nodes}

    # ------------------------------------------------------------ placement

    def fingerprint(self, spec: JobSpec) -> str:
        """The routing key of ``spec`` — its points-content fingerprint."""
        memo_key = None
        if spec.dataset is not None:
            memo_key = spec.dataset.removeprefix("dataset:")
            cached = self._dataset_fp.get(memo_key)
            if cached is not None:
                return cached
        points_fp = fingerprint_spec(spec)
        if memo_key is not None:
            with self._lock:
                if len(self._dataset_fp) >= _MAX_DATASET_MEMO:
                    self._dataset_fp.clear()
                self._dataset_fp[memo_key] = points_fp
        return points_fp

    def _candidates(self, points_fp: str,
                    exclude: Tuple[str, ...] = ()) -> List[Node]:
        """Failover-ordered nodes for a key, shunning recently-down ones.

        A down node is skipped until ``retry_down_after`` seconds have
        passed since its last failure, then tried again (half-open).  If
        that filter empties the list, every node (minus ``exclude``) is
        returned anyway — a fleet that looks entirely down must still try
        *something* rather than fail without a connection attempt.
        """
        preferred = [node for node in self.ring.preference(points_fp)
                     if node.name not in exclude]
        now = time.monotonic()
        live = [node for node in preferred
                if node.healthy
                or now - node.last_failure_at >= self.retry_down_after]
        return live or preferred

    # --------------------------------------------------------------- submit

    def submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Validate, route and dispatch one job-spec body.

        Returns the node's 202 body with the router's own job id and the
        serving node's name under ``"node"``.  Raises
        :class:`InvalidInputError` for a bad spec (the caller's 400) and
        :class:`NodeUnavailableError` when the primary *and* the failover
        node both fail (the caller's 503).
        """
        spec = JobSpec.from_dict(body)
        points_fp = self.fingerprint(spec)
        key = (points_fp, spec.params_key())
        with self._lock:
            shared = self._inflight.get(key)
        if shared is not None:
            # Identical spec already in flight: ride its upstream job.
            routed_id = f"job-{next(self._ids):06d}"
            with self._lock:
                self._routes[routed_id] = shared
                while len(self._routes) > self.max_routes:
                    self._routes.popitem(last=False)
                self._submitted += 1
                self._coalesced += 1
            return {"job_id": routed_id, "status": "pending",
                    "node": shared.node_name}
        accepted, node = self._dispatch(spec, points_fp)
        routed_id = f"job-{next(self._ids):06d}"
        route = _Route(spec=spec, points_fp=points_fp,
                       node_name=node.name,
                       upstream_id=accepted["job_id"],
                       coalesce_key=key)
        with self._lock:
            self._routes[routed_id] = route
            if len(self._inflight) >= self.max_routes:  # safety bound
                self._inflight.clear()
            # Insert-if-absent: two submissions racing past the lookup
            # above both dispatched (best-effort coalescing), but the
            # index must keep exactly one of them — overwriting would
            # orphan the first route's terminal-poll cleanup.
            if key in self._inflight:
                route.coalesce_key = None
            else:
                self._inflight[key] = route
            while len(self._routes) > self.max_routes:
                self._routes.popitem(last=False)
            self._submitted += 1
            self._routed_by_node[node.name] += 1
        return {**accepted, "job_id": routed_id, "node": node.name}

    def _dispatch(self, spec: JobSpec, points_fp: str,
                  exclude: Tuple[str, ...] = ()
                  ) -> Tuple[Dict[str, Any], Node]:
        """Send a spec to the first candidate that takes it.

        At-most-one retry: the primary plus one failover, mirroring the
        engine's crashed-worker policy (a job that breaks *every* node it
        touches should fail loudly, not walk the whole fleet).
        """
        body = spec.to_dict()
        last_error: Optional[Exception] = None
        for node in self._candidates(points_fp, exclude)[:2]:
            client = self.clients[node.name]
            try:
                accepted, _header = client.submit(body)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                if last_error is None:
                    with self._lock:
                        self._failovers += 1
                last_error = exc
                continue
            node.mark_up()
            return accepted, node
        raise NodeUnavailableError(
            f"no node accepted the job (tried primary and failover): "
            f"{last_error}") from last_error

    # --------------------------------------------------------------- results

    def _route(self, routed_id: str) -> _Route:
        with self._lock:
            route = self._routes.get(routed_id)
        if route is None:
            raise InvalidInputError(f"unknown job id {routed_id!r}")
        return route

    def job(self, routed_id: str,
            wait_s: float = 0.0) -> Tuple[Dict[str, Any], str]:
        """Proxy one job lookup; returns ``(body, serving node name)``.

        If the owning node died, the spec is resubmitted to the next node
        in preference order (transparent recovery) and the lookup
        continues there within the same call.
        """
        route = self._route(routed_id)
        observed_node = route.node_name
        client = self.clients[observed_node]
        node = self.ring.get(observed_node)
        try:
            body, _header = client.job(route.upstream_id, wait_s)
        except NodeUnavailableError as exc:
            if node is not None:
                node.mark_down(str(exc))
            body = self._recover(route, observed_node, wait_s)
        except NodeHTTPError as exc:
            if exc.code == 404:
                # The node forgot the job (restart, retention eviction):
                # same recovery as node death — the spec re-executes.
                body = self._recover(route, observed_node, wait_s)
            else:
                raise
        else:
            if node is not None:
                node.mark_up()
        if body.get("status") in ("done", "failed") \
                and route.coalesce_key is not None:
            # Terminal: later identical submissions should hit the nodes'
            # result caches, not this finished upstream job.
            with self._lock:
                if self._inflight.get(route.coalesce_key) is route:
                    del self._inflight[route.coalesce_key]
            route.coalesce_key = None
        return {**body, "job_id": routed_id, "node": route.node_name}, \
            route.node_name

    def _recover(self, route: _Route, failed_node: str,
                 wait_s: float) -> Dict[str, Any]:
        """Resubmit a lost job elsewhere and look it up once more.

        ``failed_node`` is the assignment the caller *observed* failing.
        One recovery runs at a time per route; a concurrent poller that
        blocked on the lock re-reads the assignment and, finding it
        already moved off the node it saw fail, polls the recovered
        placement instead of re-dispatching (which would double-execute
        the job — or, on a two-node fleet, exclude the only healthy
        node).
        """
        with route.lock:
            if route.node_name == failed_node:
                accepted, node = self._dispatch(
                    route.spec, route.points_fp, exclude=(failed_node,))
                route.node_name = node.name
                route.upstream_id = accepted["job_id"]
                route.resubmits += 1
                with self._lock:
                    self._resubmits += 1
                    self._routed_by_node[node.name] += 1
            current_node, current_id = route.node_name, route.upstream_id
        body, _header = self.clients[current_node].job(current_id, wait_s)
        return body

    # ----------------------------------------------------- fleet aggregates

    def healthz(self) -> Dict[str, Any]:
        """Probe every node; fleet status is ``ok`` only if all answer."""
        nodes = []
        up = 0
        for node in self.ring.nodes:
            try:
                health = self.clients[node.name].healthz(
                    timeout=self.probe_timeout)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                nodes.append({**node.as_dict(), "reachable": False})
                continue
            except NodeHTTPError as exc:
                # Alive but refusing: reachable, yet not healthy — do not
                # route around it via mark_down, just report it.
                nodes.append({**node.as_dict(), "reachable": True,
                              "error": str(exc)})
                continue
            node.mark_up()
            up += 1
            nodes.append({**node.as_dict(), "reachable": True,
                          "backend": health.get("backend"),
                          "persistent": health.get("persistent")})
        status = "ok" if up == len(nodes) else \
            "degraded" if up else "down"
        return {"status": status, "role": "router",
                "version": repro.__version__,
                "nodes_up": up, "nodes_total": len(nodes), "nodes": nodes}

    def stats(self) -> Dict[str, Any]:
        """Fleet-level statistics: pooled hit rates and throughput.

        Per-node engine stats are fetched live; an unreachable node
        contributes an error entry instead of silently vanishing from the
        denominator (its counters are unknowable, not zero).
        """
        per_node: List[Dict[str, Any]] = []
        reachable: List[Dict[str, Any]] = []
        for node in self.ring.nodes:
            try:
                stats = self.clients[node.name].stats(
                    timeout=self.probe_timeout)
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                per_node.append({"node": node.name, "error": str(exc)})
                continue
            except NodeHTTPError as exc:
                per_node.append({"node": node.name, "error": str(exc)})
                continue
            node.mark_up()
            per_node.append({"node": node.name, **stats})
            reachable.append(stats)
        jobs: Dict[str, int] = {}
        for stats in reachable:
            for key, count in stats.get("jobs", {}).items():
                jobs[key] = jobs.get(key, 0) + int(count)
        tiers: Dict[str, Any] = {}
        for tier in ("tree", "result", "core"):
            cache_key = f"{tier}_cache"
            memory = [(s[cache_key]["hits"], s[cache_key]["misses"])
                      for s in reachable if cache_key in s]
            disk = [(s[cache_key]["disk"]["hits"],
                     s[cache_key]["disk"]["misses"])
                    for s in reachable if cache_key in s]
            tiers[cache_key] = {
                "hit_rate": fleet_hit_rate(memory),
                "disk_hit_rate": fleet_hit_rate(disk),
                "entries": sum(s[cache_key]["entries"]
                               for s in reachable if cache_key in s),
            }
        schedulers = [s["scheduler"] for s in reachable if "scheduler" in s]
        with self._lock:
            router = {
                "uptime_seconds": time.perf_counter() - self._started_at,
                "jobs_routed": self._submitted,
                "failovers": self._failovers,
                "resubmits": self._resubmits,
                "coalesced": self._coalesced,
                "known_routes": len(self._routes),
                "routed_by_node": dict(self._routed_by_node),
            }
        return {
            "role": "router",
            "router": router,
            "fleet": {
                "nodes_total": len(per_node),
                "nodes_reachable": len(reachable),
                "jobs": jobs,
                **tiers,
                "mfeatures_per_sec": fleet_mfeatures_per_second(
                    [s.get("features_done", 0) for s in schedulers],
                    [s.get("busy_seconds", 0.0) for s in schedulers]),
                "jobs_per_sec": sum(s.get("jobs_per_sec", 0.0)
                                    for s in schedulers),
                "key_share": self.ring.key_share(1024),
            },
            "nodes": per_node,
        }

    # ----------------------------------------------------------------- admin

    def flush(self, tier: Optional[str] = None) -> Dict[str, Any]:
        """Fan a flush out to every node; collects per-node reports."""
        return self._fan_out("flush", lambda c: c.flush(tier))

    def compact(self) -> Dict[str, Any]:
        """Fan a store compaction out to every node."""
        return self._fan_out("compact", lambda c: c.compact())

    def _fan_out(self, op: str, call) -> Dict[str, Any]:
        nodes = []
        errors = 0
        first_http_error: Optional[NodeHTTPError] = None
        for node in self.ring.nodes:
            try:
                nodes.append({"node": node.name,
                              **call(self.clients[node.name])})
            except NodeHTTPError as exc:
                # A 4xx means the node is alive and rejected the *request*
                # — never a health event, and (when unanimous) the caller
                # deserves the node's own status code, not a 503.
                if first_http_error is None:
                    first_http_error = exc
                nodes.append({"node": node.name, "error": str(exc)})
                errors += 1
            except NodeUnavailableError as exc:
                node.mark_down(str(exc))
                nodes.append({"node": node.name, "error": str(exc)})
                errors += 1
        if errors == len(nodes):
            if first_http_error is not None:
                raise first_http_error
            raise ClusterError(f"{op} failed on every node")
        return {"status": "ok" if not errors else "partial",
                "nodes": nodes}

    def close(self) -> None:
        """Drop routing state (no sockets are held open)."""
        with self._lock:
            self._routes.clear()
