"""Ring rebalance: re-home stored artifacts after membership change.

When the fleet's node set changes — a replacement for a dead node, a
capacity add, a reweight — the consistent-hash ring moves a bounded
fraction of the key space, and the artifacts for the moved keys are
suddenly *stranded*: they sit on nodes that are no longer in their home
set, so the new homes would recompute on first touch.  The rebalance
pass walks the fleet's artifact inventories, diffs them against the new
ring's placement, and copies every stranded blob to its missing homes
through the ``/v1`` artifact endpoints — the wire format *is* the store
format, so each copy is a byte-identical, validated store entry at the
target, warm before the first request lands.

Placement here keys on the artifact's own content digest (a pure
function any operator tool can recompute), while the router keys on the
points fingerprint behind a job.  The two agree on movement *bounds*
(both are ring placements) but not necessarily per key — which is fine:
artifacts are content-addressed and location-independent, and the
peer-fetch read-through means any home-set member can serve a blob that
physically landed on a sibling.  Rebalance restores *k-copy coverage*;
it does not promise which of the k homes holds which byte.

The pass is **resumable**: every completed copy is journaled to an
append-only JSONL file (flushed and fsynced per line, the same
crash-safety idiom as the disk store's journal), so a rerun after a
crash or ^C skips finished work and tolerates a torn final line.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.client import NodeClient, NodeHTTPError
from repro.cluster.topology import HashRing, Node
from repro.errors import InvalidInputError, ReproError

#: One copy-journal record per line: ``{"tier", "key", "target"}``.
JOURNAL_SUFFIX = ".journal.jsonl"


def load_journal(path: str) -> Set[Tuple[str, str, str]]:
    """The ``(tier, key, target)`` triples already copied.

    A torn final line (crash mid-append) is skipped, not fatal — the
    copy it described simply re-runs, and a duplicated artifact push is
    idempotent at the target (content-addressed key, validated ingest).
    """
    done: Set[Tuple[str, str, str]] = set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    done.add((record["tier"], record["key"],
                              record["target"]))
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn or foreign line: redo is safe
    except FileNotFoundError:
        pass
    return done


def append_journal(path: str, record: Dict[str, str]) -> None:
    """Append one completed copy, durably (flush + fsync per line)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def plan_rebalance(inventories: Dict[str, List[Dict[str, Any]]],
                   ring: HashRing, replicas: int
                   ) -> List[Dict[str, Any]]:
    """The copies that restore ``replicas``-home coverage on ``ring``.

    ``inventories`` maps node name → that node's artifact listing
    (``[{"tier", "key", ...}, ...]``).  For every artifact the fleet
    holds anywhere, each of its ring homes (placement by the artifact's
    own key, health ignored — a rebalance plans for the membership, not
    the weather) that lacks a copy becomes one planned copy, sourced
    from the nodes that do hold it.  Deterministic order: sorted by
    ``(tier, key, target)``, so resume and tests see a stable plan.
    """
    if replicas < 1:
        raise InvalidInputError(
            f"replicas must be >= 1, got {replicas}")
    holders: Dict[Tuple[str, str], List[str]] = {}
    for name in sorted(inventories):
        for entry in inventories[name]:
            ident = (str(entry["tier"]), str(entry["key"]))
            holders.setdefault(ident, []).append(name)
    plan: List[Dict[str, Any]] = []
    for (tier, key), sources in sorted(holders.items()):
        homes = ring.homes(key, replicas, healthy_only=False)
        for home in homes:
            if home.name not in sources:
                plan.append({"tier": tier, "key": key,
                             "target": home.name, "sources": sources})
    plan.sort(key=lambda c: (c["tier"], c["key"], c["target"]))
    return plan


def run_rebalance(nodes: List[Node], *, replicas: int = 1,
                  journal_path: Optional[str] = None,
                  timeout: float = 30.0,
                  log: Callable[[str], None] = lambda line: None
                  ) -> Dict[str, Any]:
    """Copy every stranded artifact to its missing ring homes.

    ``nodes`` is the *new* membership (the ring after the change); the
    inventories of whichever members answer define what exists.  An
    unreachable node is warned and skipped — its artifacts are invisible
    this pass and its missing copies unfixable, but the rest of the
    fleet still converges; rerun once it returns.  Returns a summary
    ``{"planned", "copied", "skipped", "failed", "unreachable"}``.
    """
    ring = HashRing(list(nodes))
    clients = {node.name: NodeClient(node, timeout=timeout, retries=0)
               for node in ring.nodes}
    inventories: Dict[str, List[Dict[str, Any]]] = {}
    unreachable: List[str] = []
    for node in ring.nodes:
        try:
            doc = clients[node.name].artifact_list()
        except ReproError as exc:
            unreachable.append(node.name)
            log(f"warning: {node.name} unreachable, skipping its "
                f"inventory: {exc}")
            continue
        inventories[node.name] = list(doc.get("artifacts", []))
    plan = plan_rebalance(inventories, ring, replicas)
    done = load_journal(journal_path) if journal_path else set()
    copied = skipped = failed = 0
    for copy in plan:
        tier, key, target = copy["tier"], copy["key"], copy["target"]
        if (tier, key, target) in done:
            skipped += 1
            continue
        if target in unreachable:
            failed += 1
            continue
        data: Optional[bytes] = None
        for source in copy["sources"]:
            if source in unreachable:
                continue
            try:
                data = clients[source].artifact(tier, key)
                break
            except NodeHTTPError:
                continue  # holder evicted it since the listing
            except ReproError as exc:
                log(f"warning: read {tier}/{key[:12]}… from {source} "
                    f"failed: {exc}")
        if data is None:
            failed += 1
            continue
        try:
            receipt = clients[target].artifact_put(
                tier, key, data, reason="rebalance")
        except ReproError as exc:
            log(f"warning: push {tier}/{key[:12]}… to {target} "
                f"failed: {exc}")
            failed += 1
            continue
        if not receipt.get("stored"):
            # The target refused (oversized / memory-only store): not
            # journaled, so a rerun against a fixed target retries it.
            failed += 1
            continue
        copied += 1
        if journal_path:
            append_journal(journal_path,
                           {"tier": tier, "key": key, "target": target})
        log(f"copied {tier}/{key[:12]}… -> {target}")
    return {"planned": len(plan), "copied": copied, "skipped": skipped,
            "failed": failed, "unreachable": unreachable}
