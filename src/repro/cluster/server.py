"""JSON-over-HTTP front end for the cluster router (stdlib only).

Exposes exactly the node API — ``POST /v1/jobs``, ``GET /v1/jobs/<id>``
(with ``wait_s`` long-poll), ``GET /v1/stats``, ``GET /v1/healthz``,
``POST /v1/admin/flush`` and ``POST /v1/admin/compact`` — so a client
cannot tell a router from a single node: same endpoints, same bodies,
same status-code mapping (400 bad spec, 404 unknown job, 429 fleet-wide
shed, 503 nothing available) and the same error envelope
(:mod:`repro.api.contract`).  The differences are additive: stats and
healthz return fleet-level documents, job responses carry a ``"node"``
field, and the ``X-Repro-Node`` header names the *backing* node that
served the job — which is how warm-cache pinning stays observable
through the router.

Built on the shared asyncio host (:class:`repro.api.http.AsyncHTTPHost`).
Upstream node calls are blocking ``urllib`` long-polls (up to a minute
each), so the backend runs them on its own wide thread pool rather than
``asyncio.to_thread``'s default executor — a router relaying hundreds of
long-polls must not serialize them behind a dozen shared threads.  There
is no compute in this process at all.
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

import asyncio

from repro.api.contract import (
    ERR_NOT_FOUND,
    ERR_OVERLOADED,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_TRACE,
    ERR_UPSTREAM,
    ApiError,
    WireAPI,
)
from repro.api.http import AsyncHTTPHost, DEFAULT_MAX_INFLIGHT
from repro.cluster.client import NodeHTTPError
from repro.cluster.router import ClusterRouter
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeOverloadedError,
    NodeUnavailableError,
)
from repro.obs import EventLog
from repro.obs.profiler import PAUSE_BUCKETS

T = TypeVar("T")

#: Upstream-relay threads: each in-flight long-poll occupies one for its
#: full duration, so this bounds the router's concurrent node waits.
RELAY_POOL_SIZE = 64


class RouterAPI(WireAPI):
    """The ``/v1`` contract bound to one :class:`ClusterRouter`."""

    def __init__(self, router: ClusterRouter) -> None:
        self.router = router
        self._pool = ThreadPoolExecutor(
            max_workers=RELAY_POOL_SIZE, thread_name_prefix="repro-relay")
        #: The host's structured-event ring; attached by
        #: ``create_router_server`` so ``GET /v1/admin/events`` serves it.
        self.event_log: Optional[EventLog] = None

    def close(self) -> None:
        """Called by the host on ``server_close()``."""
        self._pool.shutdown(wait=False)

    async def _call(self, fn: Callable[..., T], *args: Any) -> T:
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, lambda: fn(*args))

    async def healthz(self) -> Dict[str, Any]:
        return await self._call(self.router.healthz)

    async def stats(self) -> Dict[str, Any]:
        return await self._call(self.router.stats)

    async def metrics_json(self) -> Dict[str, Any]:
        return await self._call(self.router.metrics_json)

    async def metrics_text(self) -> str:
        return await self._call(self.router.metrics_prometheus)

    async def submit(self, data: Dict[str, Any],
                     trace_header: Optional[str]
                     ) -> Tuple[Dict[str, Any], Optional[str]]:
        try:
            accepted = await self._call(self.router.submit, data)
        except NodeOverloadedError as exc:
            raise self._overloaded(exc)
        return accepted, accepted.get("node")

    async def job(self, job_id: str, wait: float
                  ) -> Tuple[Dict[str, Any], Optional[str]]:
        try:
            body, node = await self._call(
                lambda: self.router.job(job_id, wait_s=wait))
        except InvalidInputError as exc:
            raise ApiError(404, str(exc), code=ERR_UNKNOWN_JOB)
        except NodeOverloadedError as exc:
            raise self._overloaded(exc)
        except NodeHTTPError as exc:
            raise self._upstream(exc)
        return body, node

    async def flush(self, data: Dict[str, Any]) -> Dict[str, Any]:
        try:
            return await self._call(self.router.flush, data.get("tier"))
        except NodeHTTPError as exc:
            raise self._upstream(exc)

    async def compact(self) -> Dict[str, Any]:
        try:
            return await self._call(self.router.compact)
        except NodeHTTPError as exc:
            raise self._upstream(exc)

    async def traces(self, query: Dict[str, Any]) -> Dict[str, Any]:
        return await self._call(self.router.traces, query)

    async def trace(self, trace_id: str
                    ) -> Tuple[Dict[str, Any], Optional[str]]:
        try:
            found = await self._call(self.router.trace, trace_id)
        except NodeHTTPError as exc:
            raise self._upstream(exc)
        if found is None:
            raise ApiError(404, f"unknown trace id {trace_id!r} "
                                f"(no node has it archived)",
                           code=ERR_UNKNOWN_TRACE)
        record, node = found
        return record, node

    async def events(self, limit: Optional[int]) -> Dict[str, Any]:
        # The router's own access ring — node rings are one hop away via
        # each node's /v1/admin/events.
        log = self.event_log
        if log is None:
            return {"events": [], "stats": None}
        return {"events": log.recent(limit), "stats": log.stats()}

    async def profile(self, seconds: Optional[float],
                      hz: Optional[float]) -> Dict[str, Any]:
        # The fleet capture occupies one relay thread per node for the
        # whole window; the router fans out concurrently underneath.
        return await self._call(
            lambda: self.router.profile(seconds, hz))

    async def dump(self) -> Dict[str, Any]:
        bundle = await self._call(self.router.dump)
        if self.event_log is not None:
            bundle["events"] = self.event_log.recent()
            bundle["events_stats"] = self.event_log.stats()
        return bundle

    async def artifact_list(self) -> Dict[str, Any]:
        return await self._call(self.router.artifacts)

    async def artifact_get(self, tier: str, key: str
                           ) -> Tuple[bytes, Optional[str]]:
        found = await self._call(
            lambda: self.router.artifact(tier, key))
        if found is None:
            raise ApiError(404, f"no node holds {tier} artifact "
                                f"{key[:12]}…", code=ERR_NOT_FOUND)
        return found

    async def artifact_put(self, tier: str, key: str, data: bytes,
                           reason: str) -> Dict[str, Any]:
        # Pushes target one node's store; a blind router-placed write
        # would race the placement the pusher already computed.
        raise ApiError(400, "push artifacts to a node directly; "
                            "the router only serves artifact reads")

    @staticmethod
    def _overloaded(exc: NodeOverloadedError) -> ApiError:
        """Relay a fleet-wide shed as the same retryable 429 a node sends."""
        return ApiError(429, str(exc), code=ERR_OVERLOADED, retryable=True,
                        retry_after=exc.retry_after or 1)

    @staticmethod
    def _upstream(exc: NodeHTTPError) -> ApiError:
        """Relay a node's HTTP error, preserving its status and code."""
        return ApiError(exc.code, str(exc),
                        code=exc.error_code or ERR_UPSTREAM,
                        retryable=exc.retryable)


def create_router_server(router: ClusterRouter, host: str = "127.0.0.1",
                         port: int = 0, *, verbose: bool = False,
                         access_log_sample: float = 1.0,
                         max_inflight: int = DEFAULT_MAX_INFLIGHT
                         ) -> AsyncHTTPHost:
    """Bind a router HTTP server (``port=0`` picks a free port).

    The caller owns the lifecycle, exactly like the node server:
    ``serve_forever()`` on a thread, later ``shutdown()`` +
    ``server_close()``, then ``router.close()``.
    """
    api = RouterAPI(router)
    server = AsyncHTTPHost(api, host, port, max_inflight=max_inflight)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.events = EventLog(
        stream=sys.stderr if verbose else None, sample=access_log_sample)
    api.event_log = server.events  # /v1/admin/events serves this ring
    server.http_latency = router.registry.histogram(
        "repro_http_request_seconds",
        "HTTP request handling latency by endpoint.",
        labels=("endpoint",))
    server.http_requests = router.registry.counter(
        "repro_http_requests_total",
        "HTTP requests served, by endpoint and status code.",
        labels=("endpoint", "code"))
    server.shed_total = router.registry.counter(
        "repro_http_shed_total",
        "Requests shed by admission control (429), by endpoint.",
        labels=("endpoint",))
    router.registry.gauge(
        "repro_http_inflight_requests",
        "Requests currently inside the HTTP handler.",
        fn=lambda: float(server.inflight))
    server.loop_lag = router.registry.histogram(
        "repro_event_loop_lag_seconds",
        "Asyncio event-loop scheduling lag measured by a periodic probe.",
        buckets=PAUSE_BUCKETS)
    return server


def run_router_server(server: AsyncHTTPHost,
                      router: ClusterRouter) -> None:
    """Run a bound router server until interrupted."""
    bound_host, bound_port = server.server_address[:2]
    names = ", ".join(node.name for node in router.ring.nodes)
    print(f"repro.cluster router listening on "
          f"http://{bound_host}:{bound_port} over {len(router.ring)} "
          f"node(s): {names}\n"
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        router.close()
