"""JSON-over-HTTP front end for the cluster router (stdlib only).

Exposes exactly the node API — ``POST /v1/jobs``, ``GET /v1/jobs/<id>``
(with ``wait_s`` long-poll), ``GET /v1/stats``, ``GET /v1/healthz``,
``POST /v1/admin/flush`` and ``POST /v1/admin/compact`` — so a client
cannot tell a router from a single node: same endpoints, same bodies,
same status-code mapping (400 bad spec, 404 unknown job, 503 nothing
available).  The differences are additive: stats and healthz return
fleet-level documents, job responses carry a ``"node"`` field, and the
``X-Repro-Node`` header names the *backing* node that served the job —
which is how warm-cache pinning stays observable through the router.

Request threads block on upstream HTTP calls (one per request, bounded by
the node client's timeout); there is no compute in this process at all.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.cluster.client import NodeHTTPError
from repro.cluster.router import ClusterRouter
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeUnavailableError,
)
from repro.obs import EventLog
from repro.service.server import (
    MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    parse_wait_param,
)


class RouterRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the server's :class:`ClusterRouter`."""

    server_version = "repro-router/1"
    protocol_version = "HTTP/1.1"
    timeout = 120  # covers an upstream long-poll plus slack

    @property
    def router(self) -> ClusterRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        events = getattr(self.server, "events", None)
        if events is None:
            return
        try:
            status = int(code)
        except (TypeError, ValueError):
            status = str(code)
        events.emit("http_access", method=self.command, path=self.path,
                    code=status, client=self.address_string())

    def log_message(self, format: str, *args: Any) -> None:
        events = getattr(self.server, "events", None)
        if events is None:
            if getattr(self.server, "verbose", False):
                super().log_message(format, *args)
            return
        events.emit("http_message", message=format % args,
                    client=self.address_string())

    def _instrumented_endpoint(self, path: str) -> str:
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return "/v1/jobs/{id}"
        return "/" + "/".join(parts) if parts else "/"

    def _begin_request(self, path: str) -> None:
        self._obs_started: Optional[float] = time.perf_counter()
        self._obs_endpoint = self._instrumented_endpoint(path)

    def _finish_request(self, code: int) -> None:
        started = getattr(self, "_obs_started", None)
        if started is None:
            return
        self._obs_started = None
        latency_h = getattr(self.server, "http_latency", None)
        if latency_h is not None:
            latency_h.observe(time.perf_counter() - started,
                              endpoint=self._obs_endpoint)
            self.server.http_requests.inc(  # type: ignore[attr-defined]
                endpoint=self._obs_endpoint, code=str(code))

    def _send_body(self, code: int, body: bytes, content_type: str,
                   node: Optional[str] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if node:
            self.send_header("X-Repro-Node", node)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self._finish_request(code)

    def _send_json(self, code: int, obj: Any,
                   node: Optional[str] = None) -> None:
        self._send_body(code, json.dumps(obj).encode(), "application/json",
                        node=node)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    # ------------------------------------------------------------------- GET

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        self._begin_request(url.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            self._send_json(200, self.router.healthz())
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.router.stats())
        elif parts == ["v1", "metrics"]:
            self._get_metrics(url.query)
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], url.query)
        else:
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _get_metrics(self, query: str) -> None:
        """``GET /v1/metrics`` — the fleet-wide scrape surface: the
        router's own series plus every reachable node's, re-exported
        under ``node=`` labels (or the JSON documents, ``?format=json``)."""
        fmt = parse_qs(query).get("format", ["prometheus"])[0]
        if fmt == "json":
            self._send_json(200, self.router.metrics_json())
        elif fmt == "prometheus":
            self._send_body(200, self.router.metrics_prometheus().encode(),
                            PROMETHEUS_CONTENT_TYPE)
        else:
            self._send_error_json(
                400, f"unknown metrics format {fmt!r}; "
                     f"use 'prometheus' or 'json'")

    def _get_job(self, job_id: str, query: str) -> None:
        try:
            wait = parse_wait_param(query)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            body, node = self.router.job(job_id, wait_s=wait)
        except InvalidInputError as exc:
            self._send_error_json(404, str(exc))
        except NodeHTTPError as exc:
            self._send_error_json(exc.code, str(exc))
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
        else:
            self._send_json(200, body, node=node)

    # ------------------------------------------------------------------ POST

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        self._begin_request(url.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "jobs"]:
            self._post_job()
        elif parts == ["v1", "admin", "flush"]:
            self._post_admin("flush")
        elif parts == ["v1", "admin", "compact"]:
            self._post_admin("compact")
        else:
            # Replying without consuming the body would leave its bytes to
            # be parsed as the next request on this keep-alive connection.
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _read_json_body(self, *, required: bool) -> Optional[Any]:
        """Decode the request body; replies and returns ``None`` on error."""
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES or (required and not length):
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw.strip():
            return {}
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return None

    def _post_job(self) -> None:
        data = self._read_json_body(required=True)
        if data is None:
            return
        try:
            accepted = self.router.submit(data)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, accepted, node=accepted.get("node"))

    def _post_admin(self, op: str) -> None:
        data = self._read_json_body(required=False)
        if data is None:
            return
        if not isinstance(data, dict):
            self._send_error_json(400, "admin body must be a JSON object")
            return
        try:
            if op == "flush":
                tier = data.get("tier")
                report = self.router.flush(tier)
            else:
                report = self.router.compact()
        except NodeHTTPError as exc:
            self._send_error_json(exc.code, str(exc))
            return
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
            return
        self._send_json(200, report)


def create_router_server(router: ClusterRouter, host: str = "127.0.0.1",
                         port: int = 0, *, verbose: bool = False,
                         access_log_sample: float = 1.0
                         ) -> ThreadingHTTPServer:
    """Bind a router HTTP server (``port=0`` picks a free port).

    The caller owns the lifecycle, exactly like the node server:
    ``serve_forever()`` on a thread, later ``shutdown()`` +
    ``server_close()``, then ``router.close()``.
    """
    server = ThreadingHTTPServer((host, port), RouterRequestHandler)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.events = EventLog(  # type: ignore[attr-defined]
        stream=sys.stderr if verbose else None, sample=access_log_sample)
    server.http_latency = router.registry.histogram(  # type: ignore[attr-defined]
        "repro_http_request_seconds",
        "HTTP request handling latency by endpoint.",
        labels=("endpoint",))
    server.http_requests = router.registry.counter(  # type: ignore[attr-defined]
        "repro_http_requests_total",
        "HTTP requests served, by endpoint and status code.",
        labels=("endpoint", "code"))
    server.daemon_threads = True
    return server


def run_router_server(server: ThreadingHTTPServer,
                      router: ClusterRouter) -> None:
    """Run a bound router server until interrupted."""
    bound_host, bound_port = server.server_address[:2]
    names = ", ".join(node.name for node in router.ring.nodes)
    print(f"repro.cluster router listening on "
          f"http://{bound_host}:{bound_port} over {len(router.ring)} "
          f"node(s): {names}\n"
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        router.close()
