"""JSON-over-HTTP front end for the cluster router (stdlib only).

Exposes exactly the node API — ``POST /v1/jobs``, ``GET /v1/jobs/<id>``
(with ``wait_s`` long-poll), ``GET /v1/stats``, ``GET /v1/healthz``,
``POST /v1/admin/flush`` and ``POST /v1/admin/compact`` — so a client
cannot tell a router from a single node: same endpoints, same bodies,
same status-code mapping (400 bad spec, 404 unknown job, 503 nothing
available).  The differences are additive: stats and healthz return
fleet-level documents, job responses carry a ``"node"`` field, and the
``X-Repro-Node`` header names the *backing* node that served the job —
which is how warm-cache pinning stays observable through the router.

Request threads block on upstream HTTP calls (one per request, bounded by
the node client's timeout); there is no compute in this process at all.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import urlparse

from repro.cluster.client import NodeHTTPError
from repro.cluster.router import ClusterRouter
from repro.errors import (
    ClusterError,
    InvalidInputError,
    NodeUnavailableError,
)
from repro.service.server import MAX_BODY_BYTES, parse_wait_param


class RouterRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the server's :class:`ClusterRouter`."""

    server_version = "repro-router/1"
    protocol_version = "HTTP/1.1"
    timeout = 120  # covers an upstream long-poll plus slack

    @property
    def router(self) -> ClusterRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, code: int, obj: Any,
                   node: Optional[str] = None) -> None:
        body = json.dumps(obj).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if node:
            self.send_header("X-Repro-Node", node)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    # ------------------------------------------------------------------- GET

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            self._send_json(200, self.router.healthz())
        elif parts == ["v1", "stats"]:
            self._send_json(200, self.router.stats())
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], url.query)
        else:
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _get_job(self, job_id: str, query: str) -> None:
        try:
            wait = parse_wait_param(query)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            body, node = self.router.job(job_id, wait_s=wait)
        except InvalidInputError as exc:
            self._send_error_json(404, str(exc))
        except NodeHTTPError as exc:
            self._send_error_json(exc.code, str(exc))
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
        else:
            self._send_json(200, body, node=node)

    # ------------------------------------------------------------------ POST

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["v1", "jobs"]:
            self._post_job()
        elif parts == ["v1", "admin", "flush"]:
            self._post_admin("flush")
        elif parts == ["v1", "admin", "compact"]:
            self._post_admin("compact")
        else:
            # Replying without consuming the body would leave its bytes to
            # be parsed as the next request on this keep-alive connection.
            self.close_connection = True
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def _read_json_body(self, *, required: bool) -> Optional[Any]:
        """Decode the request body; replies and returns ``None`` on error."""
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES or (required and not length):
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw.strip():
            return {}
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return None

    def _post_job(self) -> None:
        data = self._read_json_body(required=True)
        if data is None:
            return
        try:
            accepted = self.router.submit(data)
        except InvalidInputError as exc:
            self._send_error_json(400, str(exc))
            return
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, accepted, node=accepted.get("node"))

    def _post_admin(self, op: str) -> None:
        data = self._read_json_body(required=False)
        if data is None:
            return
        if not isinstance(data, dict):
            self._send_error_json(400, "admin body must be a JSON object")
            return
        try:
            if op == "flush":
                tier = data.get("tier")
                report = self.router.flush(tier)
            else:
                report = self.router.compact()
        except NodeHTTPError as exc:
            self._send_error_json(exc.code, str(exc))
            return
        except (NodeUnavailableError, ClusterError) as exc:
            self._send_error_json(503, str(exc))
            return
        self._send_json(200, report)


def create_router_server(router: ClusterRouter, host: str = "127.0.0.1",
                         port: int = 0, *,
                         verbose: bool = False) -> ThreadingHTTPServer:
    """Bind a router HTTP server (``port=0`` picks a free port).

    The caller owns the lifecycle, exactly like the node server:
    ``serve_forever()`` on a thread, later ``shutdown()`` +
    ``server_close()``, then ``router.close()``.
    """
    server = ThreadingHTTPServer((host, port), RouterRequestHandler)
    server.router = router  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def run_router_server(server: ThreadingHTTPServer,
                      router: ClusterRouter) -> None:
    """Run a bound router server until interrupted."""
    bound_host, bound_port = server.server_address[:2]
    names = ", ".join(node.name for node in router.ring.nodes)
    print(f"repro.cluster router listening on "
          f"http://{bound_host}:{bound_port} over {len(router.ring)} "
          f"node(s): {names}\n"
          f"(POST /v1/jobs, GET /v1/jobs/<id>, /v1/stats, /v1/healthz)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        router.close()
