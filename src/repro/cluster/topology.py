"""Cluster topology: node descriptors and the placement hash ring.

Placement must satisfy two pulls that fight each other:

* **Affinity** — a repeat submission of the same point set should land on
  the node whose cache tiers (memory and disk) are already warm for it.
  Content fingerprints make that trivial *if* placement is a pure
  function of the fingerprint, which is what the consistent-hash ring
  provides: ``node_for(points_fp)`` depends only on the fingerprint and
  the node set, never on request order or process identity.
* **Stability under churn** — adding or removing a node must move as few
  fingerprints as possible (each moved key is a cold cache somewhere).
  The ring bounds movement to roughly ``1/N`` of the key space per node
  change; a modulo scheme would reshuffle nearly everything.

For **failover order** beyond the primary the ring's clockwise walk has a
known flaw: every key owned by a dead node falls to the *same* clockwise
successor, doubling that one node's load.  The preference list therefore
ranks the remaining nodes by weighted rendezvous (highest-random-weight)
score instead, which spreads a dead node's keys evenly across the
survivors — the "rendezvous-hash fallback" of the design note.

All hashing is SHA-256-based and deliberately independent of Python's
randomized ``hash()``, so placement agrees across processes, restarts and
machines — the same property the content fingerprints themselves have.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidInputError

#: Ring points per unit of node weight.  Enough that key shares track
#: weights within a few percent; small enough that rebuilds are free.
DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """A 64-bit integer hash that is stable across processes and runs.

    SHA-256-based (truncated), unlike builtin ``hash()`` whose per-process
    randomization would make every restart a full reshuffle.
    """
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class Node:
    """One ``repro.service`` node the router can dispatch to.

    ``name`` identifies the node in routing decisions, stats and the
    ``X-Repro-Node`` header; it must be stable across node restarts for
    placement to be (the ring hashes names, not sockets).  ``weight``
    scales the share of the key space the node owns (2.0 = twice the
    keys).  Health state is the router's *local* view — marked down on
    connection errors or 5xx responses, up again on any success — and
    never removes the node from the ring: a flapping node keeps its keys,
    it just gets skipped while down.
    """

    base_url: str
    name: Optional[str] = None
    weight: float = 1.0
    healthy: bool = True
    failures: int = 0
    successes: int = 0
    last_error: Optional[str] = None
    #: ``time.monotonic()`` of the latest failure; lets the router re-probe
    #: a down node after a cool-off instead of shunning it forever.
    last_failure_at: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        self.base_url = self.base_url.rstrip("/")
        if not self.base_url.startswith(("http://", "https://")):
            raise InvalidInputError(
                f"node URL must be http(s)://, got {self.base_url!r}")
        if self.name is None:
            # host:port is the natural default identity (matches what the
            # node itself reports when started without --name).
            self.name = self.base_url.split("://", 1)[1]
        if "@" in self.name:
            # "@" separates the upstream job id from the node name in
            # routed job ids; a name containing it would be unparseable.
            raise InvalidInputError(
                f"node name must not contain '@': {self.name!r}")
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise InvalidInputError(
                f"node weight must be positive and finite, "
                f"got {self.weight!r}")

    def mark_up(self) -> None:
        with self._lock:
            self.healthy = True
            self.successes += 1
            self.last_error = None

    def mark_down(self, error: str) -> None:
        with self._lock:
            self.healthy = False
            self.failures += 1
            self.last_error = error
            self.last_failure_at = time.monotonic()

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe descriptor for stats/health documents."""
        with self._lock:
            return {
                "name": self.name,
                "base_url": self.base_url,
                "weight": self.weight,
                "healthy": self.healthy,
                "failures": self.failures,
                "successes": self.successes,
                "last_error": self.last_error,
            }


class HashRing:
    """Consistent-hash placement with rendezvous-ordered failover.

    The primary owner of a key is the first ring point clockwise from the
    key's hash (``replicas`` points per unit weight keep shares balanced).
    :meth:`preference` extends that to a full failover order: primary
    first, then the remaining nodes by weighted rendezvous score, so a
    downed primary's keys spread across all survivors instead of piling
    onto one clockwise neighbor.

    All methods are thread-safe; mutation rebuilds the (tiny) point list.
    """

    def __init__(self, nodes: Optional[List[Node]] = None, *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise InvalidInputError(
                f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: Dict[str, Node] = {}
        self._points: List[Tuple[int, str]] = []  # (hash, node name), sorted
        self._hashes: List[int] = []
        self._lock = threading.Lock()
        for node in nodes or []:
            self.add(node)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        """The member nodes (stable name order)."""
        with self._lock:
            return [self._nodes[name] for name in sorted(self._nodes)]

    def get(self, name: str) -> Optional[Node]:
        with self._lock:
            return self._nodes.get(name)

    def add(self, node: Node) -> None:
        """Add a node (its share of keys moves from the others to it)."""
        with self._lock:
            if node.name in self._nodes:
                raise InvalidInputError(
                    f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
            self._rebuild()

    def remove(self, name: str) -> Node:
        """Remove a node by name; its keys redistribute to the rest."""
        with self._lock:
            node = self._nodes.pop(name, None)
            if node is None:
                raise InvalidInputError(f"unknown node {name!r}")
            self._rebuild()
            return node

    def _rebuild(self) -> None:
        points: List[Tuple[int, str]] = []
        for name, node in self._nodes.items():
            # ceil() so a fractional weight still gets at least one point.
            for replica in range(math.ceil(self.replicas * node.weight)):
                points.append((stable_hash(f"{name}#{replica}"), name))
        points.sort()
        self._points = points
        self._hashes = [h for h, _name in points]

    def node_for(self, key: str) -> Node:
        """The primary owner of ``key`` (health is not consulted here —
        failover is the :meth:`preference` caller's concern)."""
        with self._lock:
            if not self._points:
                raise InvalidInputError("hash ring has no nodes")
            index = bisect.bisect_right(self._hashes, stable_hash(key))
            if index == len(self._points):
                index = 0  # wrap: the ring is circular
            return self._nodes[self._points[index][1]]

    def preference(self, key: str) -> List[Node]:
        """All nodes in failover order for ``key``: ring primary first,
        then the rest by descending weighted rendezvous score."""
        primary = self.node_for(key)
        with self._lock:
            rest = [node for name, node in self._nodes.items()
                    if name != primary.name]
            rest.sort(key=lambda n: self._rendezvous_score(key, n),
                      reverse=True)
            return [primary] + rest

    def homes(self, key: str, k: int = 1, *,
              healthy_only: bool = True) -> List[Node]:
        """The ``k`` home nodes of ``key``: its replica set.

        The first ``k`` entries of :meth:`preference` — the primary plus
        the ``k-1`` best rendezvous-ranked followers — so the replica set
        is a pure function of ``(key, node set)``, moves minimally under
        churn (rendezvous ranks are per-node independent), and the
        failover order *is* the replica order: on primary death, reads
        land exactly on the nearest surviving home.

        ``healthy_only`` (the default) skips down nodes, so write-through
        targets the nodes that can actually take the copy; pass ``False``
        for the pure placement function (rebalance planning).  Returns
        fewer than ``k`` nodes when the (healthy) membership is smaller.
        """
        if k < 1:
            raise InvalidInputError(f"k must be >= 1, got {k}")
        order = self.preference(key)
        if healthy_only:
            order = [node for node in order if node.healthy]
        return order[:k]

    @staticmethod
    def _rendezvous_score(key: str, node: Node) -> float:
        """Weighted highest-random-weight score of (key, node).

        The standard logarithmic form: with ``u`` uniform in (0, 1) from
        the hash, ``-weight / ln(u)`` gives each node a probability of
        winning proportional to its weight.
        """
        u = (stable_hash(f"{key}|{node.name}") + 0.5) / 2.0**64
        return -node.weight / math.log(u)

    def key_share(self, samples: int = 4096) -> Dict[str, float]:
        """Approximate fraction of the key space each node owns.

        Diagnostic (used by stats and tests): samples deterministic probe
        keys and counts primaries.
        """
        counts: Dict[str, int] = {}
        for i in range(samples):
            owner = self.node_for(f"probe-{i}")
            counts[owner.name] = counts.get(owner.name, 0) + 1
        return {name: count / samples for name, count in counts.items()}
