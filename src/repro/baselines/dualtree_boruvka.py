"""Dual-tree Borůvka EMST (March, Ram & Gray 2010) — the MLPACK baseline.

Instead of one traversal per query point, each Borůvka round runs a single
*dual* depth-first traversal over pairs of kd-tree nodes, maintaining

* per-component best candidate edges (tie-broken, as everywhere),
* per-node *component uniformity* — a node fully inside one component
  prunes against an equally uniform node of the same component (the
  dual-tree ancestor of the paper's subtree skipping, cf. McInnes & Healy
  2017), and
* per-node traversal bounds ``B(Q)`` = the worst current candidate among
  components under ``Q``; a node pair farther apart than both sides'
  bounds cannot improve any candidate and is pruned.

Under mild distribution assumptions this has the best known worst case,
but — as the paper argues — the recursive pair traversal resists GPU
parallelization; it is reproduced here as the sequential/multithreaded
reference ("MLPACK" in the figures).
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidInputError
from repro.geometry.distance import box_box_sq
from repro.kokkos.counters import CostCounters
from repro.mst.union_find import UnionFind
from repro.spatial.kdtree import KDTree, build_kdtree

_UNIFORM_INVALID = -1


def _node_uniform_components(tree: KDTree, labels: np.ndarray) -> np.ndarray:
    """Component of each node's subtree, or -1 when mixed.

    Children always have larger ids than their parent (construction order),
    so one reverse pass is a bottom-up traversal.
    """
    uniform = np.empty(tree.n_nodes, dtype=np.int64)
    for node in range(tree.n_nodes - 1, -1, -1):
        if tree.is_leaf(node):
            node_labels = labels[tree.node_indices(node)]
            first = node_labels[0]
            uniform[node] = first if np.all(node_labels == first) else _UNIFORM_INVALID
        else:
            ul = uniform[tree.left[node]]
            ur = uniform[tree.right[node]]
            uniform[node] = ul if (ul == ur and ul != _UNIFORM_INVALID) else _UNIFORM_INVALID
    return uniform


def dual_tree_emst(
    points: np.ndarray,
    *,
    leaf_size: int = 16,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """EMST via dual-tree Borůvka; returns ``(u, v, w)`` with ``u < v``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    n = points.shape[0]
    if n == 1:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))

    tree = build_kdtree(points, leaf_size=leaf_size, counters=counters)
    uf = UnionFind(n)
    mu_list, mv_list, mw_list = [], [], []

    # The recursion depth is ~ two tree depths; raise the limit defensively
    # for skewed data.
    depth_guess = 4 * int(np.ceil(np.log2(max(n, 2)))) + 64
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, depth_guess * 8 + 1000))
    try:
        max_rounds = int(np.ceil(np.log2(max(n, 2)))) + 2
        for _ in range(max_rounds):
            if uf.n_components == 1:
                break
            labels = uf.component_labels()
            uniform = _node_uniform_components(tree, labels)

            best_d = np.full(n, np.inf)
            best_key_lo = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            best_key_hi = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            best_u = np.full(n, -1, dtype=np.int64)
            best_v = np.full(n, -1, dtype=np.int64)
            bound = np.full(tree.n_nodes, np.inf)

            def update_candidate(comp: int, i: int, j: int, d2: float) -> None:
                klo, khi = (i, j) if i < j else (j, i)
                if (d2 < best_d[comp]
                        or (d2 == best_d[comp]
                            and (klo, khi) < (best_key_lo[comp],
                                              best_key_hi[comp]))):
                    best_d[comp] = d2
                    best_key_lo[comp] = klo
                    best_key_hi[comp] = khi
                    best_u[comp] = i
                    best_v[comp] = j

            def leaf_bound(node: int) -> float:
                return float(np.max(best_d[labels[tree.node_indices(node)]]))

            def base_case(a: int, b: int) -> None:
                ia = tree.node_indices(a)
                ib = tree.node_indices(b) if b != a else ia
                pa = tree.points[ia]
                pb = tree.points[ib]
                # Direct differences so rounding (and therefore distance
                # ties) matches the rest of the library bit for bit.
                diff = pa[:, None, :] - pb[None, :, :]
                d2 = np.sum(diff * diff, axis=2)
                la = labels[ia]
                lb = labels[ib]
                cross = la[:, None] != lb[None, :]
                if counters is not None:
                    counters.distance_evals += int(np.count_nonzero(cross))
                    counters.leaf_visits += 1
                rows, cols = np.nonzero(cross)
                if rows.size:
                    # Candidates for both directions, reduced per component
                    # under (d, klo, khi) with one vectorized group-min.
                    pu = ia[rows]
                    pv = ib[cols]
                    dd = d2[rows, cols]
                    comp = np.concatenate([la[rows], lb[cols]])
                    cu = np.concatenate([pu, pv])
                    cv = np.concatenate([pv, pu])
                    cd = np.concatenate([dd, dd])
                    klo = np.minimum(cu, cv)
                    khi = np.maximum(cu, cv)
                    order = np.lexsort((khi, klo, cd, comp))
                    comp_sorted = comp[order]
                    heads = np.ones(comp_sorted.size, dtype=bool)
                    heads[1:] = comp_sorted[1:] != comp_sorted[:-1]
                    for idx in order[heads]:
                        update_candidate(int(comp[idx]), int(cu[idx]),
                                         int(cv[idx]), float(cd[idx]))
                bound[a] = leaf_bound(a)
                if b != a:
                    bound[b] = leaf_bound(b)

            def recurse(a: int, b: int) -> None:
                if counters is not None:
                    counters.nodes_visited += 1
                ua = uniform[a]
                if ua != _UNIFORM_INVALID and ua == uniform[b]:
                    return  # both subtrees in one component: skip
                gap = float(box_box_sq(tree.lo[a], tree.hi[a],
                                       tree.lo[b], tree.hi[b]))
                if counters is not None:
                    counters.box_distance_evals += 1
                if gap > bound[a] and gap > bound[b]:
                    return
                a_leaf = tree.is_leaf(a)
                b_leaf = tree.is_leaf(b)
                if a_leaf and b_leaf:
                    base_case(a, b)
                    return
                if a == b:
                    l, r = int(tree.left[a]), int(tree.right[a])
                    recurse(l, l)
                    recurse(l, r)
                    recurse(r, r)
                    bound[a] = max(bound[l], bound[r])
                    return
                if b_leaf or (not a_leaf
                              and tree.node_size(a) >= tree.node_size(b)):
                    l, r = int(tree.left[a]), int(tree.right[a])
                    dl = box_box_sq(tree.lo[l], tree.hi[l],
                                    tree.lo[b], tree.hi[b])
                    dr = box_box_sq(tree.lo[r], tree.hi[r],
                                    tree.lo[b], tree.hi[b])
                    first, second = (l, r) if dl <= dr else (r, l)
                    recurse(first, b)
                    recurse(second, b)
                    bound[a] = max(bound[l], bound[r])
                else:
                    l, r = int(tree.left[b]), int(tree.right[b])
                    dl = box_box_sq(tree.lo[a], tree.hi[a],
                                    tree.lo[l], tree.hi[l])
                    dr = box_box_sq(tree.lo[a], tree.hi[a],
                                    tree.lo[r], tree.hi[r])
                    first, second = (l, r) if dl <= dr else (r, l)
                    recurse(a, first)
                    recurse(a, second)
                    bound[b] = max(bound[l], bound[r])

            recurse(0, 0)

            merged = False
            comps = np.nonzero(best_u >= 0)[0]
            order = np.lexsort((best_key_hi[comps], best_key_lo[comps],
                                best_d[comps]))
            for comp in comps[order]:
                i, j = int(best_u[comp]), int(best_v[comp])
                if uf.union(i, j):
                    mu_list.append(min(i, j))
                    mv_list.append(max(i, j))
                    mw_list.append(float(np.sqrt(best_d[comp])))
                    merged = True
            if not merged:
                raise ConvergenceError("dual-tree round merged no components")
        else:
            if uf.n_components != 1:
                raise ConvergenceError("dual-tree Borůvka did not converge")
    finally:
        sys.setrecursionlimit(old_limit)

    if counters is not None:
        counters.record_bulk(n, ops_per_item=2.0)
        counters.max_batch = max(counters.max_batch, n)
    return (np.asarray(mu_list, dtype=np.int64),
            np.asarray(mv_list, dtype=np.int64),
            np.asarray(mw_list, dtype=np.float64))
