"""Brute-force EMST oracles (dense Prim over the full distance matrix).

``O(n^2)`` time and memory — exactly the cost the paper explains makes
materializing the distance graph hopeless at scale (Section 2).  Small-n
only, used as the ground truth in the test suite and as the "no spatial
index" point of reference in the ablation benchmarks.

Tie-breaking matches the library-wide total order ``(w, min, max)`` so the
oracle's edge set is comparable edge-for-edge, not only by total weight.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.distance import all_pairs_sq
from repro.kokkos.counters import CostCounters


def _dense_prim(d2: np.ndarray,
                counters: Optional[CostCounters] = None
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Prim on a dense squared-distance matrix with index tie-breaking."""
    n = d2.shape[0]
    in_tree = np.zeros(n, dtype=bool)
    best_sq = np.full(n, np.inf)
    best_from = np.full(n, -1, dtype=np.int64)
    in_tree[0] = True
    best_sq[:] = d2[0]
    best_from[:] = 0
    best_sq[0] = np.inf

    mu = np.empty(n - 1, dtype=np.int64)
    mv = np.empty(n - 1, dtype=np.int64)
    mw = np.empty(n - 1, dtype=np.float64)
    for it in range(n - 1):
        # Among minimum-weight frontier vertices, break ties by edge
        # (min, max) pair to match the library's total order.
        m = np.min(best_sq)
        cand = np.nonzero(best_sq == m)[0]
        pair_lo = np.minimum(cand, best_from[cand])
        pair_hi = np.maximum(cand, best_from[cand])
        pick = cand[np.lexsort((pair_hi, pair_lo))[0]]
        src = best_from[pick]
        mu[it] = min(pick, src)
        mv[it] = max(pick, src)
        mw[it] = np.sqrt(m)
        in_tree[pick] = True
        best_sq[pick] = np.inf
        row = d2[pick]
        verts = np.arange(n)
        new_lo = np.minimum(verts, pick)
        new_hi = np.maximum(verts, pick)
        old_lo = np.minimum(verts, best_from)
        old_hi = np.maximum(verts, best_from)
        key_smaller = (new_lo < old_lo) | ((new_lo == old_lo)
                                           & (new_hi < old_hi))
        better = (~in_tree) & ((row < best_sq)
                               | ((row == best_sq) & key_smaller))
        best_sq[better] = row[better]
        best_from[better] = pick
    if counters is not None:
        counters.record_bulk(n * n, ops_per_item=1.0, bytes_per_item=8.0)
        counters.distance_evals += n * (n - 1) // 2
    return mu, mv, mw


def brute_force_emst(points: np.ndarray,
                     counters: Optional[CostCounters] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact EMST by dense Prim; returns ``(u, v, w)`` with ``u < v``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    n = points.shape[0]
    if n == 1:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))
    return _dense_prim(all_pairs_sq(points), counters)


def brute_force_mrd_emst(points: np.ndarray, k_pts: int,
                         counters: Optional[CostCounters] = None
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact mutual-reachability MST by dense Prim (HDBSCAN* oracle).

    Core distance of a point is the distance to its ``k_pts``-th nearest
    neighbor including itself, mirroring Section 4.5.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    n = points.shape[0]
    if k_pts < 1 or k_pts > n:
        raise InvalidInputError(f"k_pts={k_pts} out of range for n={n}")
    if n == 1:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))
    d2 = all_pairs_sq(points)
    core_sq = np.sort(d2, axis=1)[:, k_pts - 1]  # row includes self (0)
    m = np.maximum(d2, core_sq[:, None])
    m = np.maximum(m, core_sq[None, :])
    np.fill_diagonal(m, 0.0)
    return _dense_prim(m, counters)
