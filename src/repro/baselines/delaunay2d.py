"""2D EMST via Delaunay triangulation + Kruskal.

Section 2 notes that in the plane the EMST is a subgraph of the Delaunay
triangulation (O(n) edges), making this the classical planar special case —
and that the approach collapses in higher dimensions where the
triangulation can have Θ(n²) simplices.  Included as a 2D cross-check and
as a baseline in the 2D benchmark tables.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import Delaunay

from repro.errors import DimensionError, InvalidInputError
from repro.geometry.distance import gather_pair_sq
from repro.kokkos.counters import CostCounters
from repro.mst.kruskal import kruskal


def delaunay_emst_2d(
    points: np.ndarray,
    *,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """EMST of 2D points via Delaunay edges; ``(u, v, w)`` with ``u < v``.

    Degenerate inputs (all points collinear or coincident, where Delaunay
    is undefined) fall back to sorting along the spanning direction, which
    yields the exact EMST for collinear data.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    if points.shape[1] != 2:
        raise DimensionError("delaunay_emst_2d requires 2D input")
    n = points.shape[0]
    if n == 1:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))

    try:
        tri = Delaunay(points)
        simplices = tri.simplices
        edges = np.concatenate([
            simplices[:, [0, 1]],
            simplices[:, [1, 2]],
            simplices[:, [0, 2]],
        ])
    except Exception:
        # Collinear/coincident degeneracy: chain along the widest axis.
        axis = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
        order = np.lexsort((np.arange(n), points[:, 1 - axis],
                            points[:, axis]))
        edges = np.stack([order[:-1], order[1:]], axis=1)

    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    uniq = np.unique(np.stack([lo, hi], axis=1), axis=0)
    u, v = uniq[:, 0], uniq[:, 1]
    w = np.sqrt(gather_pair_sq(points, u, v))
    if counters is not None:
        counters.record_bulk(n, ops_per_item=30.0, bytes_per_item=48.0)
        counters.distance_evals += u.size
    return kruskal(n, u, v, w, counters=counters)
