"""Bentley & Friedman (1978): Prim's algorithm + kd-tree nearest neighbor.

The first tree-accelerated EMST algorithm and the historical starting point
of the paper's introduction.  Prim grows one component; each step finds the
closest non-tree point to any tree point via kd-tree NN queries with lazy
re-validation (a stale candidate triggers a fresh query).  Its weakness —
repeated redundant NN queries in late iterations — is exactly the
observation that motivated the WSPD/dual-tree/single-tree pruning lines of
work, and the ablation benchmarks show it.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.distance import point_box_sq
from repro.kokkos.counters import CostCounters
from repro.spatial.kdtree import KDTree, build_kdtree


def _nn_excluding(tree: KDTree, q: np.ndarray, q_idx: int,
                  excluded: np.ndarray,
                  counters: Optional[CostCounters]) -> Tuple[int, float]:
    """Nearest indexed point to ``q`` with ``excluded[point]`` False.

    Returns ``(-1, inf)`` when every point is excluded.  Ties break by
    smaller ``(min, max)`` pair against ``q_idx`` for determinism.
    """
    best = [np.inf, -1]
    points = tree.points
    lo, hi = tree.lo, tree.hi

    def recurse(node: int) -> None:
        gap = float(point_box_sq(q, lo[node], hi[node]))
        if counters is not None:
            counters.nodes_visited += 1
            counters.box_distance_evals += 1
        if gap > best[0]:
            return
        if tree.is_leaf(node):
            idx = tree.node_indices(node)
            keep = ~excluded[idx]
            if not np.any(keep):
                return
            idx = idx[keep]
            diff = points[idx] - q
            d2 = np.sum(diff * diff, axis=1)
            if counters is not None:
                counters.distance_evals += idx.size
                counters.leaf_visits += 1
            order = np.lexsort((np.maximum(idx, q_idx),
                                np.minimum(idx, q_idx), d2))
            j = order[0]
            if d2[j] < best[0]:
                best[0] = float(d2[j])
                best[1] = int(idx[j])
            return
        l, r = int(tree.left[node]), int(tree.right[node])
        dl = float(point_box_sq(q, lo[l], hi[l]))
        dr = float(point_box_sq(q, lo[r], hi[r]))
        first, second = (l, r) if dl <= dr else (r, l)
        recurse(first)
        recurse(second)

    recurse(0)
    return best[1], best[0]


def bentley_friedman_emst(
    points: np.ndarray,
    *,
    leaf_size: int = 16,
    counters: Optional[CostCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """EMST via Prim + kd-tree NN; returns ``(u, v, w)`` with ``u < v``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    n = points.shape[0]
    if n == 1:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))

    tree = build_kdtree(points, leaf_size=leaf_size, counters=counters)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True

    heap: list = []

    def push_query(src: int) -> None:
        cand, d2 = _nn_excluding(tree, points[src], src, in_tree, counters)
        if cand >= 0:
            heapq.heappush(heap, (d2, min(src, cand), max(src, cand),
                                  src, cand))

    push_query(0)
    mu = np.empty(n - 1, dtype=np.int64)
    mv = np.empty(n - 1, dtype=np.int64)
    mw = np.empty(n - 1, dtype=np.float64)
    count = 0
    while count < n - 1:
        if not heap:
            raise InvalidInputError("disconnected input (non-finite data?)")
        d2, _, _, src, cand = heapq.heappop(heap)
        if in_tree[cand]:
            push_query(src)  # stale candidate: re-query this tree point
            continue
        in_tree[cand] = True
        mu[count] = min(src, cand)
        mv[count] = max(src, cand)
        mw[count] = np.sqrt(d2)
        count += 1
        push_query(src)
        push_query(cand)
    if counters is not None:
        counters.max_batch = max(counters.max_batch, n)
    return mu, mv, mw
