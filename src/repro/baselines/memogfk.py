"""WSPD-based EMST in the GeoMST2 lineage — the "MemoGFK" baseline.

Wang, Yu, Gu & Shun (2021) hold the fastest CPU EMST the paper compares
against.  Their algorithm descends from Narasimhan's GeoMST2:

1. build a fair-split tree                          (phase ``tree``),
2. compute the WSPD with separation ``s = 2``      (phase ``wspd``),
3. Kruskal over the pairs' bichromatic closest pairs, computing BCPs
   *lazily*: pairs enter a heap keyed by their separation gap (a lower
   bound); a popped pair whose two sides already lie in one component is
   discarded without ever computing its BCP (the "memo" optimization)
   (phases ``mst`` for BCP+Kruskal and ``mark`` for the component
   bookkeeping that enables the discard).

With ``s >= 2`` the BCP of a well-separated pair is the only possible MST
edge between its sides (Agarwal et al. 1991 / Callahan–Kosaraju), so the
lazy Kruskal is exact.  An eager variant (all BCPs upfront — GeoMST) is
provided for the ablation benchmarks.

The phase split mirrors Figure 8a (``T_tree``, ``T_wspd``, ``T_mst``,
``T_mark``), which the benchmark harness reprices per device.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConvergenceError, InvalidInputError
from repro.kokkos.counters import CostCounters
from repro.mst.union_find import UnionFind
from repro.spatial.bcp import bichromatic_closest_pair
from repro.spatial.fairsplit import build_fair_split_tree
from repro.spatial.wspd import well_separated_pairs
from repro.timing import PhaseTimer

_LOWER, _EXACT = 0, 1


@dataclass
class MemoGFKResult:
    """MST edges plus the four-phase breakdown and work counters."""

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    phases: Dict[str, float]
    counters: Dict[str, CostCounters]
    n_pairs: int
    n_bcp_computed: int

    @property
    def total_weight(self) -> float:
        """Sum of edge weights."""
        return float(np.sum(self.w))

    @property
    def total_counters(self) -> CostCounters:
        """All phases' counters merged."""
        total = CostCounters()
        for c in self.counters.values():
            total.add(c)
        return total

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock seconds across phases."""
        return float(sum(self.phases.values()))


def _all_same_component(uf: UnionFind, idx: np.ndarray) -> bool:
    """Sound (never falsely positive) same-component test for a node.

    Samples first — one differing pair proves 'mixed' cheaply — then
    verifies exactly.
    """
    if idx.size == 1:
        return True
    sample = idx[:: max(idx.size // 8, 1)]
    roots = uf.find_many(sample)
    if np.any(roots != roots[0]):
        return False
    roots = uf.find_many(idx)
    return bool(np.all(roots == roots[0]))


def memogfk_emst(
    points: np.ndarray,
    *,
    separation: float = 2.0,
    lazy: bool = True,
    k_pts: int = 1,
) -> MemoGFKResult:
    """EMST via WSPD + lazy-BCP Kruskal; see the module docstring.

    ``lazy=False`` computes every pair's BCP upfront (eager GeoMST), which
    the ablation benchmark contrasts with the memoized variant.

    ``k_pts > 1`` switches to the mutual-reachability metric (the paper's
    Section 4.5 comparison): a ``core`` phase computes core distances, and
    every BCP evaluates m.r.d. instead of Euclidean distances.  Wang et
    al. (2021) show the WSPD framework remains exact for m.r.d.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    if separation < 2.0:
        raise InvalidInputError(
            f"separation must be >= 2 for MST correctness, got {separation}")
    if k_pts < 1:
        raise InvalidInputError(f"k_pts must be >= 1, got {k_pts}")
    n = points.shape[0]
    timer = PhaseTimer()
    counters = {name: CostCounters()
                for name in ("tree", "wspd", "mst", "mark", "core")}

    if n == 1:
        return MemoGFKResult(
            u=np.empty(0, dtype=np.int64), v=np.empty(0, dtype=np.int64),
            w=np.empty(0, dtype=np.float64), phases=timer.as_dict(),
            counters=counters, n_pairs=0, n_bcp_computed=0)

    core_sq = None
    if k_pts > 1:
        # Deferred import: hdbscan.core_distance sits above this module.
        from repro.hdbscan.core_distance import core_distances
        with timer.phase("core"):
            core = core_distances(points, k_pts, counters=counters["core"])
            core_sq = core * core

    with timer.phase("tree"):
        tree = build_fair_split_tree(points, counters=counters["tree"])
    with timer.phase("wspd"):
        pairs = well_separated_pairs(tree, separation,
                                     counters=counters["wspd"])

    mu = np.empty(n - 1, dtype=np.int64)
    mv = np.empty(n - 1, dtype=np.int64)
    mw = np.empty(n - 1, dtype=np.float64)
    count = 0
    uf = UnionFind(n)
    n_bcp = 0

    # Duplicate points collapse into multi-point fair-split leaves whose
    # internal (zero-distance) pairs the WSPD cannot cover; chain them
    # directly.  Under the Euclidean metric the chain edges weigh zero
    # (the global minimum, so prepending preserves Kruskal's order); under
    # m.r.d. a coincident pair weighs max(core_a, core_b), which is still
    # the minimum weight of any edge incident to the larger-core endpoint
    # — an exchange argument shows such an edge always belongs to some
    # MST, so forcing it keeps the total weight minimal.
    with timer.phase("mark"):
        for node in range(tree.n_nodes):
            if tree.is_leaf(node) and tree.node_size(node) > 1:
                idx = np.sort(tree.node_indices(node))
                for a, b in zip(idx[:-1], idx[1:]):
                    if uf.union(int(a), int(b)):
                        mu[count] = min(a, b)
                        mv[count] = max(a, b)
                        if core_sq is None:
                            mw[count] = 0.0
                        else:
                            mw[count] = float(np.sqrt(
                                max(core_sq[a], core_sq[b])))
                        count += 1

    if lazy:
        with timer.phase("mst"):
            heap = []
            for pid, pair in enumerate(pairs):
                gap_sq = pair.gap * pair.gap
                heapq.heappush(heap, (gap_sq, -1, -1, _LOWER, pid, -1, -1))
            counters["mst"].record_sort(len(pairs), bytes_per_item=32.0)
        with timer.phase("mst"):
            while heap and count < n - 1:
                d_sq, klo, khi, state, pid, u, v = heapq.heappop(heap)
                pair = pairs[pid]
                if state == _LOWER:
                    ia = tree.node_indices(pair.a)
                    ib = tree.node_indices(pair.b)
                    # Bookkeeping work, not a device dispatch: bump the op
                    # counter without charging a kernel launch.
                    counters["mark"].scalar_ops += 2 * min(
                        ia.size + ib.size, 64)
                    if (_all_same_component(uf, ia)
                            and _all_same_component(uf, ib)
                            and uf.connected(int(ia[0]), int(ib[0]))):
                        continue  # memo discard: no BCP needed
                    bu, bv, bd = bichromatic_closest_pair(
                        tree, pair.a, pair.b, core_sq=core_sq,
                        counters=counters["mst"])
                    n_bcp += 1
                    heapq.heappush(heap, (bd, min(bu, bv), max(bu, bv),
                                          _EXACT, pid, bu, bv))
                else:
                    if uf.union(u, v):
                        mu[count] = min(u, v)
                        mv[count] = max(u, v)
                        mw[count] = np.sqrt(d_sq)
                        count += 1
    else:
        with timer.phase("mst"):
            bcps = []
            for pair in pairs:
                bu, bv, bd = bichromatic_closest_pair(
                    tree, pair.a, pair.b, core_sq=core_sq,
                    counters=counters["mst"])
                n_bcp += 1
                bcps.append((bd, min(bu, bv), max(bu, bv)))
            bcps.sort()
            counters["mst"].record_sort(len(bcps), bytes_per_item=24.0)
            for bd, u, v in bcps:
                if count == n - 1:
                    break
                if uf.union(u, v):
                    mu[count] = u
                    mv[count] = v
                    mw[count] = np.sqrt(bd)
                    count += 1

    if count != n - 1:
        raise ConvergenceError(
            f"WSPD Kruskal produced {count} edges for n={n}")
    # The parallel width of every phase is the point/pair count (Wang et
    # al. parallelize over points and pairs); record it so the saturation
    # model prices the phases at the correct batch width.
    for c in counters.values():
        c.max_batch = max(c.max_batch, n)
    return MemoGFKResult(u=mu, v=mv, w=mw, phases=timer.as_dict(),
                         counters=counters, n_pairs=len(pairs),
                         n_bcp_computed=n_bcp)
