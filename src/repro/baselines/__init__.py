"""EMST baselines the paper compares against (all reimplemented here).

* :mod:`repro.baselines.naive` — dense ``O(n^2)`` Prim on the distance
  matrix; the correctness oracle for everything else.
* :mod:`repro.baselines.bentley_friedman` — the original 1978 single-tree
  Prim with kd-tree nearest-neighbor queries (the historical baseline the
  paper's introduction starts from).
* :mod:`repro.baselines.dualtree_boruvka` — March et al. 2010's dual-tree
  Borůvka, the algorithm behind MLPACK's ``emst``.
* :mod:`repro.baselines.memogfk` — Wang et al. 2021's WSPD-based EMST
  (GeoMST2 lineage), the paper's fastest CPU competitor ("MemoGFK").
* :mod:`repro.baselines.delaunay2d` — 2D-only Delaunay+Kruskal, the
  classical planar special case mentioned in Section 2.
"""

from repro.baselines.naive import brute_force_emst, brute_force_mrd_emst
from repro.baselines.bentley_friedman import bentley_friedman_emst
from repro.baselines.dualtree_boruvka import dual_tree_emst
from repro.baselines.memogfk import memogfk_emst
from repro.baselines.delaunay2d import delaunay_emst_2d

__all__ = [
    "brute_force_emst",
    "brute_force_mrd_emst",
    "bentley_friedman_emst",
    "dual_tree_emst",
    "memogfk_emst",
    "delaunay_emst_2d",
]
