"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``emst``      compute an EMST of a ``.npy`` point file or named dataset
``hdbscan``   cluster points with HDBSCAN*
``bench``     regenerate a paper figure (fig1/fig5/fig6/fig7/fig8/fig9/
              ablation) or ``all``
``datasets``  list the available dataset generators

Point inputs are either a path to an ``(n, d)`` ``.npy`` file or a spec
``dataset:NAME:N[:SEED]`` using the generators of :mod:`repro.data`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.data import DATASETS, dataset_dimension, generate
from repro.errors import InvalidInputError
from repro.metrics import mfeatures_per_second


def load_points(spec: str) -> np.ndarray:
    """Resolve a CLI point-source spec to an array."""
    if spec.startswith("dataset:"):
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise InvalidInputError(
                f"bad dataset spec {spec!r}; use dataset:NAME:N[:SEED]")
        name = parts[1]
        n = int(parts[2])
        seed = int(parts[3]) if len(parts) == 4 else 0
        return generate(name, n, seed=seed)
    points = np.load(spec)
    if points.ndim != 2:
        raise InvalidInputError(
            f"{spec}: expected an (n, d) array, got shape {points.shape}")
    return points


def _config_from_args(args: argparse.Namespace) -> SingleTreeConfig:
    return SingleTreeConfig(
        subtree_skipping=not args.no_subtree_skipping,
        component_bounds=not args.no_component_bounds,
        high_resolution=args.high_resolution,
        tree_type=args.tree,
    )


def cmd_emst(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    config = _config_from_args(args)
    if args.mrd > 1:
        result = mutual_reachability_emst(points, args.mrd, config=config)
        metric = f"mutual reachability (k_pts={args.mrd})"
    else:
        result = emst(points, config=config)
        metric = "Euclidean"
    rate = mfeatures_per_second(result.n_points, result.dimension,
                                max(result.wall_seconds, 1e-12))
    print(f"{metric} MST of {result.n_points} {result.dimension}D points")
    print(f"  total weight   : {result.total_weight:.6g}")
    print(f"  Boruvka rounds : {result.n_iterations}")
    print(f"  wall time      : {result.wall_seconds:.3f}s "
          f"({rate:.2f} MFeatures/s)")
    for name, seconds in result.phases.items():
        print(f"  T_{name:5s}        : {seconds:.3f}s")
    if args.out:
        out = np.concatenate([result.edges.astype(np.float64),
                              result.weights[:, None]], axis=1)
        np.save(args.out, out)
        print(f"  edges written  : {args.out} (u, v, weight rows)")
    return 0


def cmd_hdbscan(args: argparse.Namespace) -> int:
    from repro.hdbscan import hdbscan

    points = load_points(args.points)
    result = hdbscan(points, min_cluster_size=args.min_cluster_size,
                     k_pts=args.k_pts)
    print(f"HDBSCAN* on {points.shape[0]} points: "
          f"{result.n_clusters} clusters, "
          f"{result.noise_fraction:.1%} noise")
    if result.n_clusters:
        sizes = np.bincount(result.labels[result.labels >= 0])
        print("  cluster sizes:", ", ".join(map(str, sorted(sizes)[::-1])))
    if args.out:
        np.save(args.out, result.labels)
        print(f"  labels written: {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures

    drivers = {
        "fig1": figures.fig1, "fig5": figures.fig5, "fig6": figures.fig6,
        "fig7": figures.fig7, "fig8": figures.fig8, "fig9": figures.fig9,
        "ablation": figures.ablation,
    }
    names = list(drivers) if args.figure == "all" else [args.figure]
    for name in names:
        _, table = drivers[name].run(quick=args.quick)
        print(table)
        print()
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':18s} dim")
    for name in sorted(DATASETS):
        print(f"{name:18s} {dataset_dimension(name)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-tree Boruvka EMST (ICPP 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_emst = sub.add_parser("emst", help="compute an EMST")
    p_emst.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_emst.add_argument("--mrd", type=int, default=1, metavar="K",
                        help="mutual-reachability metric with k_pts=K")
    p_emst.add_argument("--tree", choices=("bvh", "kdtree"), default="bvh")
    p_emst.add_argument("--high-resolution", action="store_true",
                        help="128-bit Morton codes (GeoLife fix)")
    p_emst.add_argument("--no-subtree-skipping", action="store_true")
    p_emst.add_argument("--no-component-bounds", action="store_true")
    p_emst.add_argument("--out", help="write (u, v, w) edge rows to .npy")
    p_emst.set_defaults(func=cmd_emst)

    p_hdb = sub.add_parser("hdbscan", help="HDBSCAN* clustering")
    p_hdb.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_hdb.add_argument("--min-cluster-size", type=int, default=5)
    p_hdb.add_argument("--k-pts", type=int, default=5)
    p_hdb.add_argument("--out", help="write labels to .npy")
    p_hdb.set_defaults(func=cmd_hdbscan)

    p_bench = sub.add_parser("bench", help="regenerate a paper figure")
    p_bench.add_argument("figure",
                         choices=("fig1", "fig5", "fig6", "fig7", "fig8",
                                  "fig9", "ablation", "all"))
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced sizes for a fast smoke run")
    p_bench.set_defaults(func=cmd_bench)

    p_data = sub.add_parser("datasets", help="list dataset generators")
    p_data.set_defaults(func=cmd_datasets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except InvalidInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
