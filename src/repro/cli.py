"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``emst``      compute an EMST of a ``.npy`` point file or named dataset
``hdbscan``   cluster points with HDBSCAN*
``bench``     regenerate a paper figure (fig1/fig5/fig6/fig7/fig8/fig9/
              ablation) or ``all``
``datasets``  list the available dataset generators
``serve``     run the batch-serving JSON-over-HTTP engine (repro.service)
``submit``    submit one job to a running server and await the result

Point inputs are either a path to an ``(n, d)`` ``.npy`` file or a spec
``dataset:NAME:N[:SEED]`` using the generators of :mod:`repro.data`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.data import DATASETS, dataset_dimension, generate_from_spec
from repro.errors import InvalidInputError
from repro.metrics import mfeatures_per_second


def load_points(spec: str) -> np.ndarray:
    """Resolve a CLI point-source spec to an array.

    Raises :class:`InvalidInputError` (exit code 2 from :func:`main`) for a
    malformed spec, a missing or unreadable ``.npy`` file, or an array that
    is not a numeric ``(n, d)`` matrix — never a raw traceback.
    """
    if spec.startswith("dataset:"):
        return generate_from_spec(spec)
    try:
        points = np.load(spec)
    except FileNotFoundError:
        raise InvalidInputError(f"{spec}: no such file")
    except (OSError, ValueError, EOFError) as exc:
        raise InvalidInputError(f"{spec}: not a readable .npy file ({exc})")
    # Kinds b/i/u/f only: complex would silently drop imaginary parts.
    if not isinstance(points, np.ndarray) or points.dtype.kind not in "biuf":
        kind = getattr(points, "dtype", type(points).__name__)
        raise InvalidInputError(
            f"{spec}: expected a real numeric array, got dtype {kind}")
    if points.ndim != 2:
        raise InvalidInputError(
            f"{spec}: expected an (n, d) array, got shape {points.shape}")
    return points


def _config_from_args(args: argparse.Namespace) -> SingleTreeConfig:
    return SingleTreeConfig(
        subtree_skipping=not args.no_subtree_skipping,
        component_bounds=not args.no_component_bounds,
        high_resolution=args.high_resolution,
        tree_type=args.tree,
    )


def cmd_emst(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    config = _config_from_args(args)
    if args.mrd > 1:
        result = mutual_reachability_emst(points, args.mrd, config=config)
        metric = f"mutual reachability (k_pts={args.mrd})"
    else:
        result = emst(points, config=config)
        metric = "Euclidean"
    rate = mfeatures_per_second(result.n_points, result.dimension,
                                max(result.wall_seconds, 1e-12))
    print(f"{metric} MST of {result.n_points} {result.dimension}D points")
    print(f"  total weight   : {result.total_weight:.6g}")
    print(f"  Boruvka rounds : {result.n_iterations}")
    print(f"  wall time      : {result.wall_seconds:.3f}s "
          f"({rate:.2f} MFeatures/s)")
    for name, seconds in result.phases.items():
        print(f"  T_{name:5s}        : {seconds:.3f}s")
    if args.out:
        out = np.concatenate([result.edges.astype(np.float64),
                              result.weights[:, None]], axis=1)
        np.save(args.out, out)
        print(f"  edges written  : {args.out} (u, v, weight rows)")
    return 0


def cmd_hdbscan(args: argparse.Namespace) -> int:
    from repro.hdbscan import hdbscan

    points = load_points(args.points)
    result = hdbscan(points, min_cluster_size=args.min_cluster_size,
                     k_pts=args.k_pts)
    print(f"HDBSCAN* on {points.shape[0]} points: "
          f"{result.n_clusters} clusters, "
          f"{result.noise_fraction:.1%} noise")
    if result.n_clusters:
        sizes = np.bincount(result.labels[result.labels >= 0])
        print("  cluster sizes:", ", ".join(map(str, sorted(sizes)[::-1])))
    if args.out:
        np.save(args.out, result.labels)
        print(f"  labels written: {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures

    drivers = {
        "fig1": figures.fig1, "fig5": figures.fig5, "fig6": figures.fig6,
        "fig7": figures.fig7, "fig8": figures.fig8, "fig9": figures.fig9,
        "ablation": figures.ablation,
    }
    names = list(drivers) if args.figure == "all" else [args.figure]
    for name in names:
        _, table = drivers[name].run(quick=args.quick)
        print(table)
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Engine
    from repro.service.server import create_server, run_server

    try:
        engine = Engine(max_workers=args.workers,
                        max_batch=args.batch_size,
                        batch_window=args.batch_window,
                        backend=args.backend,
                        tree_cache_bytes=args.cache_mb << 20,
                        result_cache_bytes=args.result_cache_mb << 20,
                        store_dir=args.store_dir,
                        store_bytes=args.store_mb << 20)
    except (ValueError, OSError) as exc:
        # An unusable --store-dir (permissions, a file in the way) is a
        # user-input error like any other bad flag value.
        raise InvalidInputError(str(exc))
    # Only the bind is a user-input error; runtime OSErrors (e.g. a closed
    # stdout pipe) must not be misreported as bind failures.
    try:
        server = create_server(engine, args.host, args.port,
                               verbose=args.verbose)
    except OSError as exc:
        engine.close()
        raise InvalidInputError(
            f"cannot bind http://{args.host}:{args.port}: {exc}")
    run_server(server, engine)
    return 0


def _print_job_result(result_dict: dict) -> None:
    payload = result_dict.get("payload") or {}
    timings = result_dict.get("timings", {})
    cache = result_dict.get("cache", {})
    print(f"job {result_dict['job_id']}: {result_dict['status']} "
          f"({result_dict['algorithm']})")
    if result_dict["status"] == "failed":
        print(f"  error          : {result_dict.get('error')}")
        return
    if result_dict["algorithm"] in ("emst", "mrd_emst"):
        print(f"  points         : {payload['n_points']} "
              f"({payload['dimension']}D)")
        print(f"  total weight   : {payload['total_weight']:.6g}")
        print(f"  Boruvka rounds : {payload['n_iterations']}")
    else:
        print(f"  points         : {payload['emst']['n_points']} "
              f"({payload['emst']['dimension']}D)")
        print(f"  clusters       : {payload['n_clusters']} "
              f"({payload['noise_fraction']:.1%} noise)")
    print(f"  queue / run    : {timings.get('queue', 0.0):.3f}s / "
          f"{timings.get('run', 0.0):.3f}s "
          f"({result_dict.get('mfeatures_per_sec', 0.0):.2f} MFeatures/s)")
    line = (f"  cache          : result_hit={cache.get('result_hit')} "
            f"tree_hit={cache.get('tree_hit')} "
            f"core_hit={cache.get('core_hit')}")
    disk = [name for name in ("result", "tree", "core")
            if cache.get(f"{name}_disk_hit")]
    if disk:
        line += f" (from disk: {', '.join(disk)})"
    print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    if args.points.startswith("dataset:"):
        body: dict = {"dataset": args.points}
    else:
        body = {"points": load_points(args.points).tolist()}
    body.update(algorithm=args.algorithm, k_pts=args.k_pts,
                min_cluster_size=args.min_cluster_size,
                priority=args.priority)
    base = args.url.rstrip("/")

    def request(url: str, data: Optional[bytes] = None) -> dict:
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {})
        with urllib.request.urlopen(req, timeout=90) as resp:
            return json.loads(resp.read())

    try:
        submitted = request(f"{base}/v1/jobs", json.dumps(body).encode())
        job_id = submitted["job_id"]
        # The server caps a single long-poll at 60s; poll in chunks until
        # the job finishes or the local --timeout deadline passes.
        deadline = time.monotonic() + args.timeout
        while True:
            remaining = deadline - time.monotonic()
            chunk = max(0.0, min(remaining, 30.0))
            result = request(f"{base}/v1/jobs/{job_id}?wait={chunk:.1f}")
            if result.get("status") in ("done", "failed") or remaining <= 0:
                break
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        print(f"error: server rejected the request ({exc.code}): {detail}",
              file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach {base}: {exc}\n"
              f"       is `python -m repro serve` running?", file=sys.stderr)
        return 1
    if result.get("status") not in ("done", "failed"):
        print(f"error: job {job_id} still {result.get('status')} after "
              f"{args.timeout}s", file=sys.stderr)
        return 1
    _print_job_result(result)
    return 0 if result["status"] == "done" else 1


def cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':18s} dim")
    for name in sorted(DATASETS):
        print(f"{name:18s} {dataset_dimension(name)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-tree Boruvka EMST (ICPP 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_emst = sub.add_parser("emst", help="compute an EMST")
    p_emst.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_emst.add_argument("--mrd", type=int, default=1, metavar="K",
                        help="mutual-reachability metric with k_pts=K")
    p_emst.add_argument("--tree", choices=("bvh", "kdtree"), default="bvh")
    p_emst.add_argument("--high-resolution", action="store_true",
                        help="128-bit Morton codes (GeoLife fix)")
    p_emst.add_argument("--no-subtree-skipping", action="store_true")
    p_emst.add_argument("--no-component-bounds", action="store_true")
    p_emst.add_argument("--out", help="write (u, v, w) edge rows to .npy")
    p_emst.set_defaults(func=cmd_emst)

    p_hdb = sub.add_parser("hdbscan", help="HDBSCAN* clustering")
    p_hdb.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_hdb.add_argument("--min-cluster-size", type=int, default=5)
    p_hdb.add_argument("--k-pts", type=int, default=5)
    p_hdb.add_argument("--out", help="write labels to .npy")
    p_hdb.set_defaults(func=cmd_hdbscan)

    p_bench = sub.add_parser("bench", help="regenerate a paper figure")
    p_bench.add_argument("figure",
                         choices=("fig1", "fig5", "fig6", "fig7", "fig8",
                                  "fig9", "ablation", "all"))
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced sizes for a fast smoke run")
    p_bench.set_defaults(func=cmd_bench)

    p_data = sub.add_parser("datasets", help="list dataset generators")
    p_data.set_defaults(func=cmd_datasets)

    p_serve = sub.add_parser("serve", help="run the batch-serving HTTP API")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker pool size")
    p_serve.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="execution backend: 'process' runs jobs in a "
                              "process pool so CPU-bound batches use real "
                              "cores instead of serializing on the GIL")
    p_serve.add_argument("--batch-size", type=int, default=8,
                         help="max jobs dispatched per batch")
    p_serve.add_argument("--batch-window", type=float, default=0.002,
                         help="seconds a batch stays open for more jobs")
    p_serve.add_argument("--cache-mb", type=int, default=256,
                         help="tree-cache budget in MiB")
    p_serve.add_argument("--result-cache-mb", type=int, default=64,
                         help="result-cache budget in MiB")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="persist cached artifacts under DIR; a "
                              "restarted server warms its tiers from it "
                              "instead of recomputing")
    p_serve.add_argument("--store-mb", type=int, default=1024,
                         help="disk-store budget in MiB (with --store-dir)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running server")
    p_submit.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_submit.add_argument("--url", default="http://127.0.0.1:8321",
                          help="server base URL")
    p_submit.add_argument("--algorithm",
                          choices=("emst", "mrd_emst", "hdbscan"),
                          default="emst")
    p_submit.add_argument("--k-pts", type=int, default=5,
                          help="core-distance k (mrd_emst / hdbscan)")
    p_submit.add_argument("--min-cluster-size", type=int, default=5,
                          help="condensation threshold (hdbscan)")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier")
    p_submit.add_argument("--timeout", type=float, default=60.0,
                          help="seconds to wait for completion")
    p_submit.set_defaults(func=cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code = args.func(args)
        # Flush inside the try so a broken pipe surfaces here, where it is
        # handled, instead of at the interpreter's exit-time flush.
        sys.stdout.flush()
        return code
    except InvalidInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the broken pipe cannot fail (which would exit 120).
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
