"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``emst``      compute an EMST of a ``.npy`` point file or named dataset
``hdbscan``   cluster points with HDBSCAN*
``bench``     regenerate a paper figure (fig1/fig5/fig6/fig7/fig8/fig9/
              ablation) or ``all``
``datasets``  list the available dataset generators
``serve``     run the batch-serving JSON-over-HTTP engine (repro.service)
``submit``    submit one job to a running server and await the result
``route``     front N running nodes with a cluster router (repro.cluster)
``rebalance`` copy stranded store artifacts to their ring homes after a
              fleet membership change (resumable)
``cluster-demo``  boot a whole K-node fleet + router locally and drive it
``top``       live metrics dashboard for a node or router (/v1/metrics)
``slo``       SLO compliance table for a node or fleet
``trace``     print the span tree of one finished job
``profile``   capture a sampling CPU profile of a node or fleet
              (/v1/profile; writes collapsed stacks for flamegraphs)

Point inputs are either a path to an ``(n, d)`` ``.npy`` file or a spec
``dataset:NAME:N[:SEED]`` using the generators of :mod:`repro.data`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import emst, mutual_reachability_emst
from repro.data import DATASETS, dataset_dimension, generate_from_spec
from repro.errors import InvalidInputError
from repro.metrics import mfeatures_per_second


def load_points(spec: str) -> np.ndarray:
    """Resolve a CLI point-source spec to an array.

    Raises :class:`InvalidInputError` (exit code 2 from :func:`main`) for a
    malformed spec, a missing or unreadable ``.npy`` file, or an array that
    is not a numeric ``(n, d)`` matrix — never a raw traceback.
    """
    if spec.startswith("dataset:"):
        return generate_from_spec(spec)
    try:
        points = np.load(spec)
    except FileNotFoundError:
        raise InvalidInputError(f"{spec}: no such file")
    except (OSError, ValueError, EOFError) as exc:
        raise InvalidInputError(f"{spec}: not a readable .npy file ({exc})")
    # Kinds b/i/u/f only: complex would silently drop imaginary parts.
    if not isinstance(points, np.ndarray) or points.dtype.kind not in "biuf":
        kind = getattr(points, "dtype", type(points).__name__)
        raise InvalidInputError(
            f"{spec}: expected a real numeric array, got dtype {kind}")
    if points.ndim != 2:
        raise InvalidInputError(
            f"{spec}: expected an (n, d) array, got shape {points.shape}")
    return points


def _config_from_args(args: argparse.Namespace) -> SingleTreeConfig:
    return SingleTreeConfig(
        subtree_skipping=not args.no_subtree_skipping,
        component_bounds=not args.no_component_bounds,
        high_resolution=args.high_resolution,
        tree_type=args.tree,
    )


def cmd_emst(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    config = _config_from_args(args)
    if args.mrd > 1:
        result = mutual_reachability_emst(points, args.mrd, config=config)
        metric = f"mutual reachability (k_pts={args.mrd})"
    else:
        result = emst(points, config=config)
        metric = "Euclidean"
    rate = mfeatures_per_second(result.n_points, result.dimension,
                                max(result.wall_seconds, 1e-12))
    print(f"{metric} MST of {result.n_points} {result.dimension}D points")
    print(f"  total weight   : {result.total_weight:.6g}")
    print(f"  Boruvka rounds : {result.n_iterations}")
    print(f"  wall time      : {result.wall_seconds:.3f}s "
          f"({rate:.2f} MFeatures/s)")
    for name, seconds in result.phases.items():
        print(f"  T_{name:5s}        : {seconds:.3f}s")
    if args.out:
        out = np.concatenate([result.edges.astype(np.float64),
                              result.weights[:, None]], axis=1)
        np.save(args.out, out)
        print(f"  edges written  : {args.out} (u, v, weight rows)")
    return 0


def cmd_hdbscan(args: argparse.Namespace) -> int:
    from repro.hdbscan import hdbscan

    points = load_points(args.points)
    result = hdbscan(points, min_cluster_size=args.min_cluster_size,
                     k_pts=args.k_pts)
    print(f"HDBSCAN* on {points.shape[0]} points: "
          f"{result.n_clusters} clusters, "
          f"{result.noise_fraction:.1%} noise")
    if result.n_clusters:
        sizes = np.bincount(result.labels[result.labels >= 0])
        print("  cluster sizes:", ", ".join(map(str, sorted(sizes)[::-1])))
    if args.out:
        np.save(args.out, result.labels)
        print(f"  labels written: {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures

    drivers = {
        "fig1": figures.fig1, "fig5": figures.fig5, "fig6": figures.fig6,
        "fig7": figures.fig7, "fig8": figures.fig8, "fig9": figures.fig9,
        "ablation": figures.ablation,
    }
    names = list(drivers) if args.figure == "all" else [args.figure]
    for name in names:
        _, table = drivers[name].run(quick=args.quick)
        print(table)
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Engine
    from repro.service.server import create_server, run_server

    try:
        engine = Engine(max_workers=args.workers,
                        max_batch=args.batch_size,
                        batch_window=args.batch_window,
                        backend=args.backend,
                        tree_cache_bytes=args.cache_mb << 20,
                        result_cache_bytes=args.result_cache_mb << 20,
                        store_dir=args.store_dir,
                        store_bytes=args.store_mb << 20,
                        trace_archive_bytes=args.trace_archive_mb << 20,
                        trace_slow_threshold=args.trace_slow_ms / 1000.0,
                        trace_sample=args.trace_sample,
                        peers=args.peer)
    except (ValueError, OSError) as exc:
        # An unusable --store-dir (permissions, a file in the way) is a
        # user-input error like any other bad flag value.
        raise InvalidInputError(str(exc))
    # Only the bind is a user-input error; runtime OSErrors (e.g. a closed
    # stdout pipe) must not be misreported as bind failures.
    try:
        server = create_server(engine, args.host, args.port,
                               verbose=args.verbose, node_name=args.name,
                               access_log_sample=args.access_log_sample,
                               max_inflight=args.max_inflight,
                               max_queue_depth=args.queue_depth)
    except OSError as exc:
        engine.close()
        raise InvalidInputError(
            f"cannot bind http://{args.host}:{args.port}: {exc}")
    run_server(server, engine)
    return 0


def _print_job_result(result_dict: dict) -> None:
    payload = result_dict.get("payload") or {}
    timings = result_dict.get("timings", {})
    cache = result_dict.get("cache", {})
    print(f"job {result_dict['job_id']}: {result_dict['status']} "
          f"({result_dict['algorithm']})")
    if result_dict["status"] == "failed":
        print(f"  error          : {result_dict.get('error')}")
        return
    if result_dict["algorithm"] in ("emst", "mrd_emst"):
        print(f"  points         : {payload['n_points']} "
              f"({payload['dimension']}D)")
        print(f"  total weight   : {payload['total_weight']:.6g}")
        print(f"  Boruvka rounds : {payload['n_iterations']}")
    else:
        print(f"  points         : {payload['emst']['n_points']} "
              f"({payload['emst']['dimension']}D)")
        print(f"  clusters       : {payload['n_clusters']} "
              f"({payload['noise_fraction']:.1%} noise)")
    print(f"  queue / run    : {timings.get('queue', 0.0):.3f}s / "
          f"{timings.get('run', 0.0):.3f}s "
          f"({result_dict.get('mfeatures_per_sec', 0.0):.2f} MFeatures/s)")
    line = (f"  cache          : result_hit={cache.get('result_hit')} "
            f"tree_hit={cache.get('tree_hit')} "
            f"core_hit={cache.get('core_hit')}")
    disk = [name for name in ("result", "tree", "core")
            if cache.get(f"{name}_disk_hit")]
    if disk:
        line += f" (from disk: {', '.join(disk)})"
    print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.client import Client
    from repro.cluster import NodeHTTPError, NodeOverloadedError
    from repro.errors import NodeUnavailableError

    if args.points.startswith("dataset:"):
        body: dict = {"dataset": args.points}
    else:
        body = {"points": load_points(args.points).tolist()}
    body.update(algorithm=args.algorithm, k_pts=args.k_pts,
                min_cluster_size=args.min_cluster_size,
                priority=args.priority)
    client = Client(args.url, timeout=90.0)
    try:
        result = client.submit_and_wait(body, timeout=args.timeout)
    except NodeHTTPError as exc:
        print(f"error: server rejected the request ({exc.code}): {exc}",
              file=sys.stderr)
        return 1
    except NodeOverloadedError as exc:
        retry = f" (retry after {exc.retry_after:g}s)" \
            if exc.retry_after else ""
        print(f"error: server is shedding load (429): {exc}{retry}",
              file=sys.stderr)
        return 1
    except NodeUnavailableError as exc:
        print(f"error: cannot reach {client.url}: {exc}\n"
              f"       is `python -m repro serve` running?", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_job_result(result)
    return 0 if result["status"] == "done" else 1


def _parse_node(arg: str):
    """``[NAME=]URL`` → a cluster :class:`~repro.cluster.topology.Node`.

    "NAME=URL" names the node explicitly; a bare URL is named by its
    host:port (matching the node's own default identity).
    """
    from repro.cluster import Node

    if "=" in arg and not arg.startswith(("http://", "https://")):
        name, _, url = arg.partition("=")
        return Node(url, name=name)
    return Node(arg)


def cmd_route(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterRouter, create_router_server
    from repro.cluster.server import run_router_server

    try:
        nodes = [_parse_node(arg) for arg in args.node]
        router = ClusterRouter(nodes, timeout=args.node_timeout,
                               retries=args.retries,
                               replicas=args.replicas)
    except InvalidInputError:
        raise
    except ValueError as exc:
        raise InvalidInputError(str(exc))
    health = router.healthz()
    print(f"fleet: {health['nodes_up']}/{health['nodes_total']} node(s) "
          f"reachable ({health['status']})")
    for entry in health["nodes"]:
        state = "up" if entry.get("reachable") else \
            f"DOWN ({entry.get('last_error')})"
        print(f"  {entry['name']:24s} {entry['base_url']:32s} {state}")
    try:
        server = create_router_server(router, args.host, args.port,
                                      verbose=args.verbose,
                                      access_log_sample=args.access_log_sample,
                                      max_inflight=args.max_inflight)
    except OSError as exc:
        raise InvalidInputError(
            f"cannot bind http://{args.host}:{args.port}: {exc}")
    run_router_server(server, router)
    return 0


def cmd_rebalance(args: argparse.Namespace) -> int:
    from repro.cluster import run_rebalance

    try:
        nodes = [_parse_node(arg) for arg in args.node]
    except ValueError as exc:
        raise InvalidInputError(str(exc))
    summary = run_rebalance(nodes, replicas=args.replicas,
                            journal_path=args.journal,
                            timeout=args.node_timeout,
                            log=print if args.verbose else lambda line: None)
    print(f"rebalance over {len(nodes)} node(s) at replicas="
          f"{args.replicas}: {summary['planned']} copies planned, "
          f"{summary['copied']} copied, {summary['skipped']} already "
          f"journaled, {summary['failed']} failed")
    if summary["unreachable"]:
        print("  unreachable: " + ", ".join(summary["unreachable"]))
    if args.journal:
        print(f"  journal: {args.journal} (rerun resumes)")
    return 0 if not summary["failed"] and not summary["unreachable"] else 1


def cmd_cluster_demo(args: argparse.Namespace) -> int:
    """Boot K nodes + a router locally and drive traffic through them.

    Each node persists its shard of the fleet's artifacts under its own
    subdirectory of ``--store-dir`` (nodes never share one journal — the
    ring, not the filesystem, is what makes a point set's artifacts land
    together).  The same job set is driven through the router twice: the
    second pass must be answered entirely from the warm tiers of the
    nodes the ring pinned each point set to.
    """
    import json
    import shutil
    import tempfile
    import threading
    import time
    import urllib.request

    from repro.cluster import ClusterRouter, Node, create_router_server
    from repro.service import Engine
    from repro.service.server import create_server

    if args.nodes < 1:
        raise InvalidInputError(f"--nodes must be >= 1, got {args.nodes}")
    store_root = args.store_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    cleanup_store = args.store_dir is None
    engines, servers = [], []
    try:
        for i in range(args.nodes):
            engine = Engine(max_workers=1, batch_window=0.0,
                            store_dir=f"{store_root}/node-{i}")
            server = create_server(engine, node_name=f"node-{i}")
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
            engines.append(engine)
            servers.append(server)
        nodes = [Node(f"http://127.0.0.1:{srv.server_address[1]}",
                      name=f"node-{i}")
                 for i, srv in enumerate(servers)]
        router = ClusterRouter(nodes)
        router_server = create_router_server(router)
        threading.Thread(target=router_server.serve_forever,
                         daemon=True).start()
        servers.append(router_server)
        base = f"http://127.0.0.1:{router_server.server_address[1]}"
        print(f"{args.nodes} node(s) + router up at {base} "
              f"(stores under {store_root})")

        def request(url, body=None):
            req = urllib.request.Request(
                url, data=json.dumps(body).encode() if body else None,
                headers={"Content-Type": "application/json"} if body
                else {})
            with urllib.request.urlopen(req, timeout=120) as resp:
                return json.loads(resp.read())

        specs = []
        for j in range(args.jobs):
            dataset = f"Uniform100M2:{args.points + 100 * j}"
            algorithm = ("emst", "mrd_emst", "hdbscan")[j % 3]
            specs.append({"dataset": dataset, "algorithm": algorithm,
                          "k_pts": 4})
        for label in ("cold", "warm"):
            started = time.perf_counter()
            accepted = [request(f"{base}/v1/jobs", spec) for spec in specs]
            results = [request(f"{base}/v1/jobs/{a['job_id']}?wait_s=60")
                       for a in accepted]
            wall = time.perf_counter() - started
            done = sum(r["status"] == "done" for r in results)
            hits = sum(r.get("cache", {}).get("result_hit", False)
                       for r in results)
            print(f"{label:4s}: {done}/{len(specs)} done in {wall:.2f}s, "
                  f"{hits} result-cache hit(s)")
            for spec, result in zip(specs, results):
                print(f"    {spec['dataset']:24s} {spec['algorithm']:8s} "
                      f"-> {result.get('node')} "
                      f"(result_hit={result['cache']['result_hit']})")
        stats = request(f"{base}/v1/stats")
        fleet = stats["fleet"]
        print(f"fleet: {fleet['jobs']['done']} jobs done, result tier "
              f"hit rate {fleet['result_cache']['hit_rate']:.0%}, "
              f"{fleet['mfeatures_per_sec']:.2f} MFeatures/s pooled")
        print("routed by node:",
              stats["router"]["routed_by_node"])
        return 0
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()
        for engine in engines:
            engine.close()
        if cleanup_store:
            shutil.rmtree(store_root, ignore_errors=True)


def _window_seconds(label: str) -> float:
    """``"5m" -> 300.0`` — sorts window labels chronologically."""
    try:
        unit = label[-1]
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0}.get(unit)
        if scale is None:
            return float(label)
        return float(label[:-1]) * scale
    except (ValueError, IndexError):
        return float("inf")


def _slo_rows(doc: dict) -> list:
    """``(slo, target, {window: burn}, budget)`` rows from one registry
    document (empty when the server exports no SLO gauges).

    Reads every field defensively: a node running ``REPRO_OBS=off`` or an
    older server exports a sparser document, and that must degrade to an
    empty table, never a raw ``KeyError``.
    """
    targets: dict = {}
    burns: dict = {}
    budgets: dict = {}
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    for metric in metrics or []:
        name = metric.get("name")
        samples = metric.get("samples") or []
        if name == "repro_slo_target":
            for sample in samples:
                targets[(sample.get("labels") or {}).get("slo", "?")] = \
                    sample.get("value", 0.0)
        elif name == "repro_slo_burn_rate":
            for sample in samples:
                labels = sample.get("labels") or {}
                burns.setdefault(labels.get("slo", "?"), {})[
                    labels.get("window", "?")] = sample.get("value", 0.0)
        elif name == "repro_slo_budget_remaining":
            for sample in samples:
                budgets[(sample.get("labels") or {}).get("slo", "?")] = \
                    sample.get("value", 1.0)
    return [(slo, targets[slo], burns.get(slo, {}), budgets.get(slo, 1.0))
            for slo in sorted(targets)]


#: Resource-telemetry gauges rendered as ``repro top``'s resources block.
_RESOURCE_SERIES = {"repro_process_rss_bytes": "rss",
                    "repro_process_cpu_seconds": "cpu"}


def _render_metrics_doc(title: str, doc: dict) -> None:
    """Print one registry document as a counters + latency-table block.

    Tolerates sparse documents (``REPRO_OBS=off`` nodes export skeleton
    families; older servers may omit series entirely) — missing fields
    skip their block instead of raising.
    """
    from repro.obs import histogram_from_sample

    counters = []
    latency_rows = []
    cache: dict = {}
    resources: dict = {}
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    for metric in metrics or []:
        name = metric.get("name", "?")
        samples = metric.get("samples") or []
        if metric.get("type") == "histogram":
            for sample in samples:
                try:
                    hist = histogram_from_sample(sample)
                except (KeyError, TypeError, ValueError):
                    continue  # malformed/legacy sample; skip the row
                if not hist.count:
                    continue
                labels = ",".join(
                    f"{k}={v}"
                    for k, v in sorted((sample.get("labels") or {}).items()))
                full = name + (f"{{{labels}}}" if labels else "")
                latency_rows.append((full, hist))
        elif name == "repro_cache_lookups_total":
            for sample in samples:
                labels = sample.get("labels") or {}
                key = f"{labels.get('tier', '?')}/{labels.get('level', '?')}"
                cache.setdefault(key, {})[labels.get("outcome", "?")] = \
                    sample.get("value", 0.0)
        elif name in _RESOURCE_SERIES:
            field = _RESOURCE_SERIES[name]
            for sample in samples:
                role = (sample.get("labels") or {}).get("role", "?")
                resources.setdefault(role, {})[field] = \
                    sample.get("value", 0.0)
        elif metric.get("type") == "counter":
            total = sum(s.get("value", 0.0) for s in samples)
            if total:
                counters.append((name, total))
    print(f"-- {title} " + "-" * max(0, 64 - len(title)))
    slo_rows = _slo_rows(doc)
    if slo_rows:
        print("  slo (burn rate per window; >1 = spending budget too fast):")
        for slo, target, burn, budget in slo_rows:
            winds = "  ".join(
                f"{window} {burn[window]:.2f}" for window in
                sorted(burn, key=_window_seconds))
            status = "BURNING" if any(rate >= 1.0
                                      for rate in burn.values()) else "ok"
            print(f"    {slo:16s} target {target:7.2%}  {winds}  "
                  f"budget {budget:7.1%}  {status}")
    if counters:
        width = max(len(name) for name, _ in counters)
        for name, total in counters:
            print(f"  {name:{width}s} {total:>12g}")
    if cache:
        print("  cache lookups (tier/level: hits/total, hit rate):")
        for key in sorted(cache):
            hits = cache[key].get("hit", 0)
            total = hits + cache[key].get("miss", 0)
            rate = hits / total if total else 0.0
            print(f"    {key:16s} {hits:>8g}/{total:<8g} {rate:6.1%}")
    if resources:
        print("  resources (role: rss, cpu):")
        for role in sorted(resources):
            rss = resources[role].get("rss")
            cpu = resources[role].get("cpu")
            rss_text = f"{rss / (1 << 20):8.1f} MiB" if rss else \
                "     n/a    "
            cpu_text = f"{cpu:8.1f}s cpu" if cpu is not None else ""
            print(f"    {role:16s} {rss_text}  {cpu_text}")
    if latency_rows:
        width = max(len(name) for name, _ in latency_rows)
        print(f"  {'latency':{width}s} {'count':>8s} {'mean':>9s} "
              f"{'p50':>9s} {'p95':>9s} {'p99':>9s}")
        for name, hist in latency_rows:
            print(f"  {name:{width}s} {hist.count:>8d} "
                  f"{hist.mean * 1e3:>7.2f}ms "
                  f"{hist.quantile(0.5) * 1e3:>7.2f}ms "
                  f"{hist.quantile(0.95) * 1e3:>7.2f}ms "
                  f"{hist.quantile(0.99) * 1e3:>7.2f}ms")


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.client import Client
    from repro.cluster import NodeHTTPError
    from repro.errors import NodeUnavailableError

    client = Client(args.url)
    base = client.url
    iteration = 0
    while True:
        try:
            doc = client.metrics_json()
        except NodeHTTPError as exc:
            print(f"error: {base} answered {exc.code} — is it a repro "
                  f"node/router with observability enabled?",
                  file=sys.stderr)
            return 1
        except NodeUnavailableError as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        if not isinstance(doc, dict):
            print(f"error: {base} answered /v1/metrics with "
                  f"{type(doc).__name__}, not a registry document — is it "
                  f"a repro node/router?", file=sys.stderr)
            return 1
        if iteration and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        if doc.get("role") == "router":
            sections = [("router", doc.get("router") or {})]
            sections += [(f"node {name}", node_doc or {}) for name, node_doc
                         in sorted((doc.get("nodes") or {}).items())]
            if not any(isinstance(sec.get("metrics"), list)
                       for _, sec in sections):
                print(f"error: the fleet behind {base} exports no metrics "
                      f"series — the servers may run with REPRO_OBS=off or "
                      f"predate /v1/metrics", file=sys.stderr)
                return 1
            print(f"repro top — router at {base}")
            for title, sec in sections:
                if "error" in sec:
                    print(f"-- {title} " + "-" * max(0, 64 - len(title)))
                    print(f"  UNREACHABLE: {sec['error']}")
                else:
                    _render_metrics_doc(title, sec)
        else:
            if not isinstance(doc.get("metrics"), list):
                print(f"error: {base} exports no metrics series — it may "
                      f"run with REPRO_OBS=off or predate /v1/metrics",
                      file=sys.stderr)
                return 1
            print(f"repro top — node at {base}")
            _render_metrics_doc("node", doc)
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.client import Client
    from repro.cluster import NodeHTTPError
    from repro.errors import NodeUnavailableError

    client = Client(args.url)
    base = client.url
    try:
        doc = client.metrics_json()
    except NodeHTTPError as exc:
        print(f"error: {base} answered {exc.code}: {exc}", file=sys.stderr)
        return 1
    except NodeUnavailableError as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"error: {base} answered /v1/metrics with "
              f"{type(doc).__name__}, not a registry document — is it a "
              f"repro node/router?", file=sys.stderr)
        return 1
    if doc.get("role") == "router":
        print(f"repro slo — fleet behind {base}")
        sources = sorted((doc.get("nodes") or {}).items())
    else:
        print(f"repro slo — node at {base}")
        sources = [("node", doc)]
    rows = []
    unreachable = []
    for name, node_doc in sources:
        if not isinstance(node_doc, dict):
            continue
        if "error" in node_doc:
            unreachable.append((name, node_doc["error"]))
            continue
        for slo, target, burn, budget in _slo_rows(node_doc):
            rows.append((name, slo, target, burn, budget))
    if not rows and not unreachable:
        print("error: no SLO series exported — the server may run with "
              "REPRO_OBS=off or predate the SLO engine", file=sys.stderr)
        return 1
    windows = sorted({window for _, _, _, burn, _ in rows
                      for window in burn}, key=_window_seconds)
    name_w = max([len(name) for name, *_ in rows] + [4])
    slo_w = max([len(slo) for _, slo, *_ in rows] + [3])
    header = (f"{'node':{name_w}s}  {'slo':{slo_w}s}  {'target':>8s}  "
              + "  ".join(f"{'burn ' + w:>9s}" for w in windows)
              + f"  {'budget':>8s}  status")
    print(header)
    for name, slo, target, burn, budget in rows:
        cells = "  ".join(f"{burn.get(window, 0.0):>9.2f}"
                          for window in windows)
        status = "BURNING" if any(rate >= 1.0 for rate in burn.values()) \
            else "ok"
        print(f"{name:{name_w}s}  {slo:{slo_w}s}  {target:>8.2%}  "
              f"{cells}  {budget:>8.1%}  {status}")
    for name, error in unreachable:
        print(f"{name:{name_w}s}  UNREACHABLE: {error}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.client import Client
    from repro.cluster import NodeHTTPError
    from repro.errors import NodeUnavailableError
    from repro.obs import format_trace

    client = Client(args.url)
    base = client.url
    try:
        body = client.poll(args.job_id)
    except NodeHTTPError as exc:
        print(f"error: {exc.code}: {exc}", file=sys.stderr)
        return 1
    except NodeUnavailableError as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    trace = body.get("trace")
    if not trace:
        status = body.get("status", "unknown")
        print(f"error: job {args.job_id} ({status}) carries no trace — "
              f"it may predate tracing, still be running, or the server "
              f"may run with REPRO_OBS=off", file=sys.stderr)
        return 1
    print(format_trace(trace))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.client import Client
    from repro.cluster import NodeHTTPError, NodeOverloadedError
    from repro.errors import NodeUnavailableError
    from repro.obs import render_collapsed

    if args.seconds < 0:
        raise InvalidInputError(
            f"--seconds must be >= 0, got {args.seconds:g}")
    client = Client(args.url)
    base = client.url
    if args.seconds:
        print(f"sampling {base} for {args.seconds:g}s ...", flush=True)
    try:
        doc = client.profile(seconds=args.seconds or None, hz=args.hz)
    except NodeHTTPError as exc:
        if exc.code == 404:
            print(f"error: {base} has no /v1/profile endpoint — the "
                  f"server predates the sampling profiler",
                  file=sys.stderr)
        else:
            print(f"error: {base} answered {exc.code}: {exc}",
                  file=sys.stderr)
        return 1
    except NodeOverloadedError as exc:
        print(f"error: server is shedding load (429): {exc}",
              file=sys.stderr)
        return 1
    except NodeUnavailableError as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    if not doc.get("enabled"):
        print(f"error: the profiler is disabled on {base} — the server "
              f"runs with REPRO_OBS=off", file=sys.stderr)
        return 1
    samples = int(doc.get("samples") or 0)
    in_phase = int(doc.get("in_phase_samples") or 0)
    fleet = " (fleet)" if doc.get("role") == "router" else ""
    print(f"profile of {base}{fleet}: {samples} samples at "
          f"{doc.get('hz', 0.0):g} Hz over {doc.get('duration_s', 0.0):.1f}s"
          + (f", {in_phase / samples:.0%} inside engine phases"
             if samples else ""))
    phases = doc.get("phases") or {}
    if phases and samples:
        print("  by engine phase:")
        for name, count in phases.items():
            print(f"    {name:12s} {count:>8d}  ({count / samples:6.1%})")
    # Hot functions: pool sample counts by the innermost (leaf) frame.
    hot: dict = {}
    for row in doc.get("stacks") or []:
        stack = row.get("stack") or []
        if stack:
            hot[stack[-1]] = hot.get(stack[-1], 0) \
                + int(row.get("count") or 0)
    top = sorted(hot.items(), key=lambda item: -item[1])[:args.top]
    if top and samples:
        width = max(len(frame) for frame, _ in top)
        print(f"  hot functions (top {len(top)} by leaf samples):")
        for frame, count in top:
            print(f"    {frame:{width}s} {count:>8d}  "
                  f"({count / samples:6.1%})")
    if args.out:
        text = render_collapsed(doc)
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            raise InvalidInputError(f"cannot write {args.out}: {exc}")
        print(f"  collapsed stacks written: {args.out} "
              f"({len(text.splitlines())} rows) — render with "
              f"flamegraph.pl or speedscope")
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':18s} dim")
    for name in sorted(DATASETS):
        print(f"{name:18s} {dataset_dimension(name)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-tree Boruvka EMST (ICPP 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_emst = sub.add_parser("emst", help="compute an EMST")
    p_emst.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_emst.add_argument("--mrd", type=int, default=1, metavar="K",
                        help="mutual-reachability metric with k_pts=K")
    p_emst.add_argument("--tree", choices=("bvh", "kdtree"), default="bvh")
    p_emst.add_argument("--high-resolution", action="store_true",
                        help="128-bit Morton codes (GeoLife fix)")
    p_emst.add_argument("--no-subtree-skipping", action="store_true")
    p_emst.add_argument("--no-component-bounds", action="store_true")
    p_emst.add_argument("--out", help="write (u, v, w) edge rows to .npy")
    p_emst.set_defaults(func=cmd_emst)

    p_hdb = sub.add_parser("hdbscan", help="HDBSCAN* clustering")
    p_hdb.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_hdb.add_argument("--min-cluster-size", type=int, default=5)
    p_hdb.add_argument("--k-pts", type=int, default=5)
    p_hdb.add_argument("--out", help="write labels to .npy")
    p_hdb.set_defaults(func=cmd_hdbscan)

    p_bench = sub.add_parser("bench", help="regenerate a paper figure")
    p_bench.add_argument("figure",
                         choices=("fig1", "fig5", "fig6", "fig7", "fig8",
                                  "fig9", "ablation", "all"))
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced sizes for a fast smoke run")
    p_bench.set_defaults(func=cmd_bench)

    p_data = sub.add_parser("datasets", help="list dataset generators")
    p_data.set_defaults(func=cmd_datasets)

    p_serve = sub.add_parser("serve", help="run the batch-serving HTTP API")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker pool size")
    p_serve.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="execution backend: 'process' runs jobs in a "
                              "process pool so CPU-bound batches use real "
                              "cores instead of serializing on the GIL")
    p_serve.add_argument("--batch-size", type=int, default=8,
                         help="max jobs dispatched per batch")
    p_serve.add_argument("--batch-window", type=float, default=0.002,
                         help="seconds a batch stays open for more jobs")
    p_serve.add_argument("--cache-mb", type=int, default=256,
                         help="tree-cache budget in MiB")
    p_serve.add_argument("--result-cache-mb", type=int, default=64,
                         help="result-cache budget in MiB")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="persist cached artifacts under DIR; a "
                              "restarted server warms its tiers from it "
                              "instead of recomputing")
    p_serve.add_argument("--store-mb", type=int, default=1024,
                         help="disk-store budget in MiB (with --store-dir)")
    p_serve.add_argument("--name", default=None, metavar="NAME",
                         help="node identity reported in X-Repro-Node and "
                              "healthz (default: host:port); must be "
                              "stable for cluster routing to be")
    p_serve.add_argument("--peer", action="append", default=None,
                         metavar="URL",
                         help="base URL of a sibling node whose artifact "
                              "endpoint is consulted on a local cache "
                              "miss before recomputing (repeatable)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.add_argument("--access-log-sample", type=float, default=1.0,
                         metavar="FRAC",
                         help="fraction of HTTP access events kept in the "
                              "structured event log (deterministic, 0..1)")
    p_serve.add_argument("--max-inflight", type=int, default=1024,
                         help="concurrent HTTP requests before shedding "
                              "with 429 (healthz/metrics exempt)")
    p_serve.add_argument("--queue-depth", type=int, default=512,
                         help="unfinished engine jobs before submissions "
                              "shed with 429 + Retry-After")
    p_serve.add_argument("--trace-archive-mb", type=int, default=16,
                         help="trace-archive ring budget in MiB (persists "
                              "under --store-dir/traces when a store is "
                              "configured)")
    p_serve.add_argument("--trace-slow-ms", type=float, default=250.0,
                         help="jobs at or over this runtime always keep "
                              "their trace")
    p_serve.add_argument("--trace-sample", type=float, default=0.05,
                         metavar="FRAC",
                         help="fraction of fast, successful traces kept "
                              "(deterministic; failures, slow jobs and "
                              "failover traces are always kept)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running server")
    p_submit.add_argument("points", help=".npy file or dataset:NAME:N[:SEED]")
    p_submit.add_argument("--url", default="http://127.0.0.1:8321",
                          help="server base URL")
    p_submit.add_argument("--algorithm",
                          choices=("emst", "mrd_emst", "hdbscan"),
                          default="emst")
    p_submit.add_argument("--k-pts", type=int, default=5,
                          help="core-distance k (mrd_emst / hdbscan)")
    p_submit.add_argument("--min-cluster-size", type=int, default=5,
                          help="condensation threshold (hdbscan)")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier")
    p_submit.add_argument("--timeout", type=float, default=60.0,
                          help="seconds to wait for completion")
    p_submit.set_defaults(func=cmd_submit)

    p_route = sub.add_parser(
        "route", help="front running nodes with a cluster router")
    p_route.add_argument("--node", action="append", required=True,
                         metavar="[NAME=]URL",
                         help="base URL of a repro.service node, "
                              "optionally named (repeatable)")
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=8320)
    p_route.add_argument("--node-timeout", type=float, default=30.0,
                         help="per-request timeout against a node")
    p_route.add_argument("--retries", type=int, default=1,
                         help="extra attempts for idempotent node GETs")
    p_route.add_argument("--replicas", type=int, default=1, metavar="K",
                         help="home nodes per key: finished jobs' "
                              "artifacts are copied to the key's K-1 "
                              "other ring homes in the background, so a "
                              "node death costs zero recomputation "
                              "(default 1 = no replication)")
    p_route.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_route.add_argument("--access-log-sample", type=float, default=1.0,
                         metavar="FRAC",
                         help="fraction of HTTP access events kept in the "
                              "structured event log (deterministic, 0..1)")
    p_route.add_argument("--max-inflight", type=int, default=1024,
                         help="concurrent HTTP requests before shedding "
                              "with 429 (healthz/metrics exempt)")
    p_route.set_defaults(func=cmd_route)

    p_rebal = sub.add_parser(
        "rebalance",
        help="copy stranded artifacts to their ring homes after a "
             "membership change")
    p_rebal.add_argument("--node", action="append", required=True,
                         metavar="[NAME=]URL",
                         help="a member of the NEW fleet membership "
                              "(repeatable; names must match the ones "
                              "the router will use)")
    p_rebal.add_argument("--replicas", type=int, default=1, metavar="K",
                         help="home nodes per artifact to guarantee")
    p_rebal.add_argument("--journal", default=None, metavar="FILE",
                         help="append-only JSONL progress journal; a "
                              "rerun with the same FILE skips completed "
                              "copies (resumable)")
    p_rebal.add_argument("--node-timeout", type=float, default=30.0,
                         help="per-request timeout against a node")
    p_rebal.add_argument("--verbose", action="store_true",
                         help="log every copy")
    p_rebal.set_defaults(func=cmd_rebalance)

    p_demo = sub.add_parser(
        "cluster-demo",
        help="boot a local K-node fleet + router and drive traffic")
    p_demo.add_argument("--nodes", type=int, default=3, metavar="K",
                        help="how many service nodes to boot")
    p_demo.add_argument("--jobs", type=int, default=6,
                        help="jobs per traffic pass")
    p_demo.add_argument("--points", type=int, default=2000,
                        help="points in the smallest job")
    p_demo.add_argument("--store-dir", default=None, metavar="DIR",
                        help="root for the per-node persistent stores "
                             "(default: a temp dir, removed afterwards)")
    p_demo.set_defaults(func=cmd_cluster_demo)

    p_top = sub.add_parser(
        "top", help="live metrics dashboard for a node or router")
    p_top.add_argument("url", nargs="?", default="http://127.0.0.1:8321",
                       help="base URL of a node or router")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N refreshes (0 = run until ^C)")
    p_top.set_defaults(func=cmd_top)

    p_trace = sub.add_parser(
        "trace", help="print the span tree of one finished job")
    p_trace.add_argument("url", help="base URL of the node or router "
                                     "that served the job")
    p_trace.add_argument("job_id", help="job id returned at submit time")
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile", help="capture a sampling CPU profile of a node or fleet")
    p_prof.add_argument("url", nargs="?", default="http://127.0.0.1:8321",
                        help="base URL of a node or router")
    p_prof.add_argument("--seconds", type=float, default=5.0,
                        help="burst-capture window in seconds "
                             "(0 = answer instantly from the always-on "
                             "sample ring)")
    p_prof.add_argument("--hz", type=float, default=None,
                        help="burst sampling rate (default: server-side, "
                             ">= 50 Hz)")
    p_prof.add_argument("--top", type=int, default=15, metavar="N",
                        help="hot-function rows to print")
    p_prof.add_argument("--out", default=None, metavar="FILE",
                        help="write collapsed stacks to FILE for "
                             "flamegraph.pl / speedscope")
    p_prof.set_defaults(func=cmd_profile)

    p_slo = sub.add_parser(
        "slo", help="SLO compliance table for a node or fleet")
    p_slo.add_argument("url", nargs="?", default="http://127.0.0.1:8321",
                       help="base URL of a node or router")
    p_slo.set_defaults(func=cmd_slo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code = args.func(args)
        # Flush inside the try so a broken pipe surfaces here, where it is
        # handled, instead of at the interpreter's exit-time flush.
        sys.stdout.flush()
        return code
    except InvalidInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the broken pipe cannot fail (which would exit 120).
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
