"""Rate metrics used throughout the paper's evaluation.

The paper measures throughput in *features per second*: ``n * d / t`` where
``n`` is the number of points, ``d`` the dimension and ``t`` the time in
seconds (Section 4).  ``MFeatures/sec`` is that rate divided by 1e6.  The
dimension factor makes 2D and 3D datasets comparable on one axis, which the
paper uses to argue dimension-agnostic performance.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple


def features(n_points: int, dimension: int) -> int:
    """Number of *features* in a dataset: ``n * d``.

    >>> features(1000, 3)
    3000
    """
    if n_points < 0:
        raise ValueError(f"negative number of points: {n_points}")
    if dimension <= 0:
        raise ValueError(f"non-positive dimension: {dimension}")
    return n_points * dimension


def features_per_second(n_points: int, dimension: int, seconds: float) -> float:
    """The paper's throughput metric ``n * d / t`` in features/second."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds}")
    return features(n_points, dimension) / seconds


def mfeatures_per_second(n_points: int, dimension: int, seconds: float) -> float:
    """Throughput in millions of features per second (MFeatures/sec).

    >>> mfeatures_per_second(1_000_000, 3, 3.0)
    1.0
    """
    return features_per_second(n_points, dimension, seconds) / 1e6


def hit_rate(hits: int, misses: int) -> float:
    """Cache hit rate ``hits / (hits + misses)``, 0.0 for an untouched cache.

    The service-layer caches (:mod:`repro.service.cache`) report their
    effectiveness through this helper so cache numbers use one convention
    everywhere.

    >>> hit_rate(3, 1)
    0.75
    >>> hit_rate(0, 0)
    0.0
    """
    if hits < 0 or misses < 0:
        raise ValueError(f"negative counter: hits={hits} misses={misses}")
    total = hits + misses
    return hits / total if total else 0.0


def fleet_hit_rate(counts: Iterable[Tuple[int, int]]) -> float:
    """Pooled cache hit rate over several nodes' ``(hits, misses)`` pairs.

    Pooling (sum of hits over sum of lookups) weights every lookup equally,
    so a busy node counts for more than an idle one — averaging the
    per-node rates instead would let one cold, idle node drag the fleet
    number down.  An untouched fleet reports 0.0 like :func:`hit_rate`.

    >>> fleet_hit_rate([(3, 1), (0, 0), (5, 3)])
    0.6666666666666666
    >>> fleet_hit_rate([])
    0.0
    """
    total_hits = total_misses = 0
    for hits, misses in counts:
        if hits < 0 or misses < 0:
            raise ValueError(f"negative counter: hits={hits} misses={misses}")
        total_hits += hits
        total_misses += misses
    return hit_rate(total_hits, total_misses)


def fleet_mfeatures_per_second(features: Iterable[int],
                               busy_seconds: Iterable[float]) -> float:
    """Pooled compute throughput over per-node feature and busy-time sums.

    Total features processed across the fleet divided by total worker-busy
    seconds, in MFeatures/sec — the fleet-level analogue of the per-node
    scheduler stat.  Returns 0.0 for an idle fleet (no busy time or no
    features), mirroring how the scheduler reports an idle node.

    >>> fleet_mfeatures_per_second([2_000_000, 1_000_000], [2.0, 1.0])
    1.0
    >>> fleet_mfeatures_per_second([], [])
    0.0
    """
    total_features = 0
    for count in features:
        if count < 0:
            raise ValueError(f"negative feature count: {count}")
        total_features += count
    total_busy = 0.0
    for seconds in busy_seconds:
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        total_busy += seconds
    if total_busy <= 0 or total_features == 0:
        return 0.0
    return mfeatures_per_second(total_features, 1, total_busy)


def jobs_per_second(n_jobs: int, seconds: float) -> float:
    """Service throughput in completed jobs per second.

    >>> jobs_per_second(10, 2.0)
    5.0
    """
    if n_jobs < 0:
        raise ValueError(f"negative job count: {n_jobs}")
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds}")
    return n_jobs / seconds


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Ratio ``baseline / improved`` — how many times faster the latter is."""
    if baseline_seconds <= 0 or improved_seconds <= 0:
        raise ValueError("durations must be positive")
    return baseline_seconds / improved_seconds


def format_rate(rate_mfeatures: float) -> str:
    """Human-readable MFeatures/sec with sensible precision.

    Matches the display convention of the paper's bar charts: one decimal
    below 10, integers above.

    >>> format_rate(0.74)
    '0.7'
    >>> format_rate(270.66)
    '271'
    """
    if not math.isfinite(rate_mfeatures):
        return "nan"
    if rate_mfeatures < 10:
        return f"{rate_mfeatures:.1f}"
    return f"{rate_mfeatures:.0f}"
