"""Rate metrics used throughout the paper's evaluation.

The paper measures throughput in *features per second*: ``n * d / t`` where
``n`` is the number of points, ``d`` the dimension and ``t`` the time in
seconds (Section 4).  ``MFeatures/sec`` is that rate divided by 1e6.  The
dimension factor makes 2D and 3D datasets comparable on one axis, which the
paper uses to argue dimension-agnostic performance.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds, in seconds.  Geometric-ish 1-2.5-5
#: spacing from 0.5 ms to 30 s: tight enough at the bottom that a warm
#: result-cache hit (~1 ms) and a cold 20k-point job (~100 ms+) land many
#: buckets apart, wide enough at the top to catch long-poll tails.  An
#: implicit +Inf overflow bucket always exists on top.
DEFAULT_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                           0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def features(n_points: int, dimension: int) -> int:
    """Number of *features* in a dataset: ``n * d``.

    >>> features(1000, 3)
    3000
    """
    if n_points < 0:
        raise ValueError(f"negative number of points: {n_points}")
    if dimension <= 0:
        raise ValueError(f"non-positive dimension: {dimension}")
    return n_points * dimension


def features_per_second(n_points: int, dimension: int, seconds: float) -> float:
    """The paper's throughput metric ``n * d / t`` in features/second."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds}")
    return features(n_points, dimension) / seconds


def mfeatures_per_second(n_points: int, dimension: int, seconds: float) -> float:
    """Throughput in millions of features per second (MFeatures/sec).

    >>> mfeatures_per_second(1_000_000, 3, 3.0)
    1.0
    """
    return features_per_second(n_points, dimension, seconds) / 1e6


def hit_rate(hits: int, misses: int) -> float:
    """Cache hit rate ``hits / (hits + misses)``, 0.0 for an untouched cache.

    The service-layer caches (:mod:`repro.service.cache`) report their
    effectiveness through this helper so cache numbers use one convention
    everywhere.

    >>> hit_rate(3, 1)
    0.75
    >>> hit_rate(0, 0)
    0.0
    """
    if hits < 0 or misses < 0:
        raise ValueError(f"negative counter: hits={hits} misses={misses}")
    total = hits + misses
    return hits / total if total else 0.0


def fleet_hit_rate(counts: Iterable[Tuple[int, int]]) -> float:
    """Pooled cache hit rate over several nodes' ``(hits, misses)`` pairs.

    Pooling (sum of hits over sum of lookups) weights every lookup equally,
    so a busy node counts for more than an idle one — averaging the
    per-node rates instead would let one cold, idle node drag the fleet
    number down.  An untouched fleet reports 0.0 like :func:`hit_rate`.

    >>> fleet_hit_rate([(3, 1), (0, 0), (5, 3)])
    0.6666666666666666
    >>> fleet_hit_rate([])
    0.0
    """
    total_hits = total_misses = 0
    for hits, misses in counts:
        if hits < 0 or misses < 0:
            raise ValueError(f"negative counter: hits={hits} misses={misses}")
        total_hits += hits
        total_misses += misses
    return hit_rate(total_hits, total_misses)


def fleet_mfeatures_per_second(features: Iterable[int],
                               busy_seconds: Iterable[float]) -> float:
    """Pooled compute throughput over per-node feature and busy-time sums.

    Total features processed across the fleet divided by total worker-busy
    seconds, in MFeatures/sec — the fleet-level analogue of the per-node
    scheduler stat.  Returns 0.0 for an idle fleet (no busy time or no
    features), mirroring how the scheduler reports an idle node.

    >>> fleet_mfeatures_per_second([2_000_000, 1_000_000], [2.0, 1.0])
    1.0
    >>> fleet_mfeatures_per_second([], [])
    0.0
    """
    total_features = 0
    for count in features:
        if count < 0:
            raise ValueError(f"negative feature count: {count}")
        total_features += count
    total_busy = 0.0
    for seconds in busy_seconds:
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        total_busy += seconds
    if total_busy <= 0 or total_features == 0:
        return 0.0
    return mfeatures_per_second(total_features, 1, total_busy)


class Histogram:
    """A fixed-bucket latency histogram: mergeable, quantile-computable.

    Observations are counted into buckets bounded above by ``bounds`` (a
    strictly increasing sequence) plus an implicit ``+Inf`` overflow
    bucket, alongside a running ``sum`` and ``count`` — exactly the
    Prometheus histogram data model, so the registry can expose it
    verbatim.  Instances with equal bounds :meth:`merge` by adding their
    buckets, which is how fleet aggregation must work: **pool buckets,
    never average quantiles** (a p99 of per-node p99s is meaningless; the
    p99 of the pooled buckets weights every observation equally, the same
    argument as :func:`fleet_hit_rate`).

    >>> h = Histogram(bounds=(1.0, 2.0, 4.0))
    >>> for value in (0.5, 1.5, 3.0, 3.5):
    ...     h.observe(value)
    >>> h.count, h.sum
    (4, 8.5)
    >>> h.quantile(0.5)
    2.0
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must strictly increase: {bounds}")
        self.bounds = bounds
        #: Per-bucket observation counts; the last entry is the +Inf
        #: overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Count one observation (bucket semantics: ``value <= bound``)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Pool ``other``'s buckets into ``self`` (in place); returns self.

        >>> a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        >>> a.observe(0.5); b.observe(1.5)
        >>> a.merge(b).count
        2
        >>> a.counts
        [1, 1, 0]
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count
        return self

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated by linear bucket interpolation.

        The rank ``q * count`` is located in the cumulative bucket counts
        and interpolated linearly inside its bucket (lower edge 0.0 for
        the first bucket — latencies are non-negative).  Observations in
        the overflow bucket clamp to the largest finite bound, and an
        empty histogram reports 0.0.

        >>> h = Histogram(bounds=(1.0, 2.0, 4.0))
        >>> for value in (0.5, 1.5, 3.0, 3.5):
        ...     h.observe(value)
        >>> h.quantile(0.25)
        1.0
        >>> h.quantile(1.0)
        4.0
        >>> Histogram(bounds=(1.0,)).quantile(0.99)
        0.0
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            previous = cumulative
            cumulative += self.counts[i]
            if cumulative >= rank:
                if self.counts[i] == 0:
                    return lower
                fraction = (rank - previous) / self.counts[i]
                return lower + fraction * (bound - lower)
            lower = bound
        return self.bounds[-1]  # rank fell in the +Inf overflow bucket

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.sum, "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`as_dict` form."""
        out = cls(bounds=data["bounds"])
        counts = [int(n) for n in data["counts"]]
        if len(counts) != len(out.counts):
            raise ValueError(
                f"expected {len(out.counts)} bucket counts, "
                f"got {len(counts)}")
        if any(n < 0 for n in counts):
            raise ValueError(f"negative bucket count in {counts}")
        out.counts = counts
        out.sum = float(data["sum"])
        out.count = int(data["count"])
        return out


def fleet_histogram(histograms: Iterable[Histogram],
                    bounds: Optional[Sequence[float]] = None) -> Histogram:
    """Pooled latency distribution over several nodes' histograms.

    The fleet analogue of :func:`fleet_hit_rate`: buckets are summed so
    every observation weighs equally, and quantiles are computed on the
    pooled result — never by averaging per-node quantiles, which would
    let an idle node's distribution distort the fleet tail.  ``bounds``
    seeds the bucket scheme when ``histograms`` is empty (defaults to
    :data:`DEFAULT_LATENCY_BUCKETS`).

    >>> a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
    >>> for value in (0.5, 0.6, 0.7):
    ...     a.observe(value)
    >>> b.observe(1.5)
    >>> pooled = fleet_histogram([a, b])
    >>> pooled.count
    4
    >>> pooled.quantile(1.0)
    2.0
    """
    pooled: Optional[Histogram] = None
    for histogram in histograms:
        if pooled is None:
            pooled = Histogram(bounds=histogram.bounds)
        pooled.merge(histogram)
    if pooled is None:
        pooled = Histogram(bounds=bounds if bounds is not None
                           else DEFAULT_LATENCY_BUCKETS)
    return pooled


def jobs_per_second(n_jobs: int, seconds: float) -> float:
    """Service throughput in completed jobs per second.

    >>> jobs_per_second(10, 2.0)
    5.0
    """
    if n_jobs < 0:
        raise ValueError(f"negative job count: {n_jobs}")
    if seconds <= 0:
        raise ValueError(f"non-positive duration: {seconds}")
    return n_jobs / seconds


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Ratio ``baseline / improved`` — how many times faster the latter is."""
    if baseline_seconds <= 0 or improved_seconds <= 0:
        raise ValueError("durations must be positive")
    return baseline_seconds / improved_seconds


def format_rate(rate_mfeatures: float) -> str:
    """Human-readable MFeatures/sec with sensible precision.

    Matches the display convention of the paper's bar charts: one decimal
    below 10, integers above.

    >>> format_rate(0.74)
    '0.7'
    >>> format_rate(270.66)
    '271'
    """
    if not math.isfinite(rate_mfeatures):
        return "nan"
    if rate_mfeatures < 10:
        return f"{rate_mfeatures:.1f}"
    return f"{rate_mfeatures:.0f}"
