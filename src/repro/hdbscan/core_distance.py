"""Core distances: distance to the k-th nearest neighbor (self included).

This is the paper's ``T_core`` phase (Section 4.5): a bulk k-NN over the
same BVH the EMST uses.  The paper observes that on GPUs this kernel's cost
grows faster with ``k_pts`` than on CPUs because maintaining a per-thread
priority queue diverges — our batched k-NN reproduces that through the
measured warp-step counters (the k-list insertion path lengthens and
desynchronizes lanes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH, build_bvh
from repro.bvh.traversal import batched_knn
from repro.bvh.workspace import TraversalWorkspace
from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


def core_distances_sq(points: np.ndarray, k_pts: int, *,
                      bvh: Optional[BVH] = None,
                      counters: Optional[CostCounters] = None,
                      workspace: Optional[TraversalWorkspace] = None
                      ) -> np.ndarray:
    """*Squared* core distance of every point, in the caller's point order.

    This is the cacheable form of ``T_core``: the values depend only on
    ``(points, k_pts)`` — not on the spatial index used to find them — and
    the caller-order layout keeps the artifact valid across different tree
    configurations.  The serving engine's core-distance tier persists
    exactly this array and injects it back through the ``core_sq=``
    parameter of :func:`repro.core.emst.mutual_reachability_emst`.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got {points.shape}")
    n = points.shape[0]
    if not 1 <= k_pts <= n:
        raise InvalidInputError(f"k_pts={k_pts} out of range for n={n}")
    if bvh is None:
        bvh = build_bvh(points, counters=counters)
    result = batched_knn(bvh, bvh.points, k_pts, counters=counters,
                         workspace=workspace, self_queries=True)
    out = np.empty(n, dtype=np.float64)
    out[bvh.order] = result.kth_distance_sq
    return out


def core_distances(points: np.ndarray, k_pts: int, *,
                   bvh: Optional[BVH] = None,
                   counters: Optional[CostCounters] = None) -> np.ndarray:
    """Core distance of every point (in the caller's point order).

    ``k_pts = 1`` gives all zeros (the distance of a point to itself),
    making the mutual-reachability distance collapse to Euclidean — the
    identity the paper uses to sanity-check the integration.
    """
    return np.sqrt(core_distances_sq(points, k_pts, bvh=bvh,
                                     counters=counters))
