"""HDBSCAN* on top of the mutual-reachability EMST (paper Section 4.5).

The paper demonstrates that its single-tree EMST handles the
mutual-reachability distance, the metric of the HDBSCAN* clustering
algorithm [Campello et al. 2015; McInnes et al. 2017].  This package
completes the pipeline so the claim is exercised end to end:

1. core distances — k-NN over the BVH (:mod:`repro.hdbscan.core_distance`);
2. m.r.d. minimum spanning tree — :func:`repro.core.emst.mutual_reachability_emst`;
3. single-linkage dendrogram from the MST edges
   (:mod:`repro.hdbscan.single_linkage`);
4. condensed tree under a minimum cluster size
   (:mod:`repro.hdbscan.condense`);
5. stability-based cluster extraction (:mod:`repro.hdbscan.stability`).

:func:`repro.hdbscan.hdbscan.hdbscan` runs all five.
"""

from repro.hdbscan.core_distance import core_distances, core_distances_sq
from repro.hdbscan.single_linkage import single_linkage_tree
from repro.hdbscan.condense import CondensedTree, condense_tree
from repro.hdbscan.stability import cluster_stabilities, extract_clusters
from repro.hdbscan.hdbscan import HDBSCANResult, hdbscan

__all__ = [
    "core_distances",
    "core_distances_sq",
    "single_linkage_tree",
    "condense_tree",
    "CondensedTree",
    "cluster_stabilities",
    "extract_clusters",
    "hdbscan",
    "HDBSCANResult",
]
