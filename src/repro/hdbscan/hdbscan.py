"""End-to-end HDBSCAN* driver built on the single-tree m.r.d. EMST."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.workspace import TraversalWorkspace
from repro.core.boruvka_emst import SingleTreeConfig
from repro.core.emst import EMSTResult, mutual_reachability_emst
from repro.errors import InvalidInputError
from repro.hdbscan.condense import CondensedTree, condense_tree
from repro.hdbscan.single_linkage import single_linkage_tree
from repro.hdbscan.stability import extract_clusters


@dataclass
class HDBSCANResult:
    """Clustering output plus every intermediate artifact.

    ``labels`` are 0-based cluster ids with -1 for noise; ``probabilities``
    in [0, 1]; ``emst`` is the mutual-reachability spanning tree result
    (with its phase counters, so HDBSCAN* runs can be repriced on the
    simulated devices like any EMST run).
    """

    labels: np.ndarray
    probabilities: np.ndarray
    emst: EMSTResult
    linkage: np.ndarray
    condensed: CondensedTree
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        """Number of extracted clusters."""
        return int(self.labels.max()) + 1 if self.labels.size else 0

    @property
    def noise_fraction(self) -> float:
        """Fraction of points labelled noise."""
        if self.labels.size == 0:
            return 0.0
        return float(np.mean(self.labels < 0))


def hdbscan(
    points: np.ndarray,
    *,
    min_cluster_size: int = 5,
    k_pts: int = 5,
    config: SingleTreeConfig = SingleTreeConfig(),
    bvh: Optional[BVH] = None,
    check_tree: bool = True,
    core_sq: Optional[np.ndarray] = None,
    workspace: Optional[TraversalWorkspace] = None,
) -> HDBSCANResult:
    """HDBSCAN* clustering (Campello et al. 2015; McInnes et al. 2017).

    ``k_pts`` is the core-distance neighbor count (the paper's Section 4.5
    sweep parameter); ``min_cluster_size`` the condensation threshold.
    ``bvh`` injects a precomputed spatial index (see
    :func:`repro.core.emst.build_tree`), skipping the tree phase;
    ``core_sq`` injects precomputed squared core distances in the caller's
    point order (must match ``points`` and ``k_pts``), skipping the
    ``core`` phase the same way.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise InvalidInputError(
            f"clustering needs at least 2 points, got shape {points.shape}")
    n = points.shape[0]
    if min_cluster_size < 2:
        raise InvalidInputError(
            f"min_cluster_size must be >= 2, got {min_cluster_size}")

    result = mutual_reachability_emst(points, k_pts, config=config, bvh=bvh,
                                      check_tree=check_tree, core_sq=core_sq,
                                      workspace=workspace)
    linkage = single_linkage_tree(n, result.edges[:, 0], result.edges[:, 1],
                                  result.weights)
    condensed = condense_tree(linkage, min_cluster_size)
    labels, probabilities = extract_clusters(condensed)
    return HDBSCANResult(
        labels=labels,
        probabilities=probabilities,
        emst=result,
        linkage=linkage,
        condensed=condensed,
        phases=dict(result.phases),
    )
