"""Condensed cluster tree (Campello et al. 2015).

Walking the single-linkage dendrogram top-down at decreasing distance
(increasing density ``lambda = 1/distance``): a split where both sides hold
at least ``min_cluster_size`` points creates two new clusters; otherwise the
undersized side's points *fall out* of the surviving cluster at that
lambda.  The result is a small tree over clusters and point-exits, the input
to stability-based extraction.

Representation (column arrays, one row per event):

* ``parent`` — condensed cluster id (root is ``n``),
* ``child`` — point id (< n) or new condensed cluster id (>= n),
* ``lambda_val`` — density at which the child separated from the parent,
* ``child_size`` — 1 for points, subtree point count for clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidInputError


@dataclass
class CondensedTree:
    """Flat condensed tree; see the module docstring for the columns."""

    parent: np.ndarray
    child: np.ndarray
    lambda_val: np.ndarray
    child_size: np.ndarray
    n_points: int

    @property
    def root(self) -> int:
        """Condensed id of the root cluster."""
        return self.n_points

    def cluster_ids(self) -> np.ndarray:
        """All condensed cluster ids (root first, ascending)."""
        ids = np.unique(self.parent)
        kids = np.unique(self.child[self.child >= self.n_points])
        return np.unique(np.concatenate([ids, kids]))


def _leaves_of(linkage: np.ndarray, n: int, node: int) -> list:
    """Point ids under dendrogram ``node`` (iterative DFS)."""
    out = []
    stack = [node]
    while stack:
        x = stack.pop()
        if x < n:
            out.append(x)
        else:
            row = x - n
            stack.append(int(linkage[row, 0]))
            stack.append(int(linkage[row, 1]))
    return out


def condense_tree(linkage: np.ndarray, min_cluster_size: int) -> CondensedTree:
    """Condense a SciPy-convention linkage under ``min_cluster_size``."""
    if min_cluster_size < 2:
        raise InvalidInputError(
            f"min_cluster_size must be >= 2, got {min_cluster_size}")
    linkage = np.asarray(linkage, dtype=np.float64)
    if linkage.ndim != 2 or linkage.shape[1] != 4:
        raise InvalidInputError("linkage must be an (n-1, 4) matrix")
    n = linkage.shape[0] + 1

    parents, children, lambdas, sizes = [], [], [], []
    next_cluster = n + 1  # n is the root's condensed id
    root_dendro = 2 * n - 2  # dendrogram id of the top merge

    def size_of(node: int) -> int:
        return 1 if node < n else int(linkage[node - n, 3])

    def lam_of(row: int) -> float:
        d = linkage[row, 2]
        return 1.0 / d if d > 0.0 else np.inf

    # Stack of (dendrogram node, condensed cluster it belongs to).
    stack = [(root_dendro, n)]
    while stack:
        node, cluster = stack.pop()
        if node < n:
            # A singleton reached the top of its cluster: it exits when its
            # parent merge dissolves; handled by the caller pushing it with
            # the right lambda below, so a bare leaf here means n == 1.
            continue
        row = node - n
        left = int(linkage[row, 0])
        right = int(linkage[row, 1])
        lam = lam_of(row)
        big_l = size_of(left) >= min_cluster_size
        big_r = size_of(right) >= min_cluster_size
        if big_l and big_r:
            # True split: two new condensed clusters are born.
            for side in (left, right):
                nonlocal_id = next_cluster
                next_cluster += 1
                parents.append(cluster)
                children.append(nonlocal_id)
                lambdas.append(lam)
                sizes.append(size_of(side))
                stack.append((side, nonlocal_id))
        else:
            # Undersized side(s) fall out as points at this lambda; a
            # surviving big side continues as the same condensed cluster.
            for side, big in ((left, big_l), (right, big_r)):
                if big:
                    stack.append((side, cluster))
                else:
                    for p in _leaves_of(linkage, n, side):
                        parents.append(cluster)
                        children.append(p)
                        lambdas.append(lam)
                        sizes.append(1)

    return CondensedTree(
        parent=np.asarray(parents, dtype=np.int64),
        child=np.asarray(children, dtype=np.int64),
        lambda_val=np.asarray(lambdas, dtype=np.float64),
        child_size=np.asarray(sizes, dtype=np.int64),
        n_points=n,
    )
