"""Cluster stability and excess-of-mass extraction (Campello et al. 2015).

Stability of a condensed cluster ``c``:

.. code-block:: none

    sigma(c) = sum over children records (lambda_child - lambda_birth(c)) * size

where ``lambda_birth(c)`` is the density at which ``c`` appeared.  A cluster
is selected when it is more stable than the sum of its descendants'
stabilities; otherwise its children's stability propagates upward.  The
root is never selected (matching ``allow_single_cluster=False`` in the
reference implementation).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.hdbscan.condense import CondensedTree


def cluster_stabilities(tree: CondensedTree) -> Dict[int, float]:
    """Stability sigma(c) for every condensed cluster id."""
    births: Dict[int, float] = {tree.root: 0.0}
    cluster_children = tree.child >= tree.n_points
    for child, lam in zip(tree.child[cluster_children],
                          tree.lambda_val[cluster_children]):
        births[int(child)] = float(lam)

    stabilities: Dict[int, float] = {cid: 0.0 for cid in births}
    finite_lambda = tree.lambda_val[np.isfinite(tree.lambda_val)]
    lam_cap = float(finite_lambda.max()) if finite_lambda.size else 0.0
    for parent, lam, size in zip(tree.parent, tree.lambda_val,
                                 tree.child_size):
        lam_eff = float(lam) if np.isfinite(lam) else lam_cap
        birth = births[int(parent)]
        birth_eff = birth if np.isfinite(birth) else lam_cap
        stabilities[int(parent)] += (lam_eff - birth_eff) * float(size)
    return stabilities


def extract_clusters(tree: CondensedTree) -> Tuple[np.ndarray, np.ndarray]:
    """Point labels and membership probabilities by excess of mass.

    Returns ``(labels, probabilities)``: labels are 0-based cluster indices
    (ordered by condensed id) with -1 for noise; probability is the point's
    exit lambda over its cluster's maximum (1.0 for the densest members).
    """
    n = tree.n_points
    stabilities = cluster_stabilities(tree)

    # Children clusters per parent.
    kids: Dict[int, list] = {cid: [] for cid in stabilities}
    cluster_rows = tree.child >= n
    for parent, child in zip(tree.parent[cluster_rows],
                             tree.child[cluster_rows]):
        kids[int(parent)].append(int(child))

    # Bottom-up (descending id = children first): excess of mass.
    selected: Dict[int, bool] = {}
    subtree_value: Dict[int, float] = {}
    for cid in sorted(stabilities, reverse=True):
        child_sum = sum(subtree_value[k] for k in kids[cid])
        if cid == tree.root:
            selected[cid] = False
            subtree_value[cid] = child_sum
        elif stabilities[cid] >= child_sum and not kids[cid] == []:
            # An internal cluster beating its children absorbs them.
            selected[cid] = True
            subtree_value[cid] = stabilities[cid]
        elif not kids[cid]:
            selected[cid] = True  # leaves of the condensed tree
            subtree_value[cid] = stabilities[cid]
        else:
            selected[cid] = False
            subtree_value[cid] = child_sum

    # Deselect descendants of selected clusters (top-down).
    for cid in sorted(stabilities):
        if not selected.get(cid, False):
            continue
        stack = list(kids[cid])
        while stack:
            k = stack.pop()
            selected[k] = False
            stack.extend(kids[k])

    chosen = sorted(cid for cid, sel in selected.items() if sel)
    index_of = {cid: i for i, cid in enumerate(chosen)}

    # Map every condensed cluster to its owning selected ancestor (if any).
    owner: Dict[int, int] = {}
    for cid in sorted(stabilities):
        if cid in index_of:
            owner[cid] = cid
        else:
            parent_owner = owner.get(_parent_of(tree, cid), None) \
                if cid != tree.root else None
            if parent_owner is not None and not selected.get(cid, False):
                # Inside a selected ancestor only if that ancestor is
                # selected; otherwise unowned.
                owner[cid] = parent_owner

    labels = np.full(n, -1, dtype=np.int64)
    probabilities = np.zeros(n, dtype=np.float64)
    point_rows = tree.child < n
    parents = tree.parent[point_rows]
    points = tree.child[point_rows]
    lams = tree.lambda_val[point_rows]

    # Per-cluster max lambda for probability normalization.
    max_lam: Dict[int, float] = {}
    for parent, lam in zip(parents, lams):
        own = owner.get(int(parent))
        if own is None:
            continue
        lam_eff = float(lam) if np.isfinite(lam) else 1.0
        max_lam[own] = max(max_lam.get(own, 0.0), lam_eff)

    for parent, point, lam in zip(parents, points, lams):
        own = owner.get(int(parent))
        if own is None:
            continue
        labels[int(point)] = index_of[own]
        denom = max_lam.get(own, 0.0)
        if denom <= 0.0 or not np.isfinite(lam):
            probabilities[int(point)] = 1.0
        else:
            probabilities[int(point)] = min(float(lam) / denom, 1.0)
    return labels, probabilities


def _parent_of(tree: CondensedTree, cid: int) -> int:
    """Condensed parent of cluster ``cid`` (root returns itself)."""
    rows = np.nonzero(tree.child == cid)[0]
    if rows.size == 0:
        return cid
    return int(tree.parent[rows[0]])
