"""Single-linkage dendrogram from MST edges.

Sorting the MST edges by weight and merging with union-find yields exactly
the single-linkage hierarchy of the underlying metric (here: mutual
reachability).  Output follows the SciPy linkage convention: row ``i``
merges clusters ``Z[i,0]`` and ``Z[i,1]`` at distance ``Z[i,2]`` into a new
cluster with id ``n + i`` and size ``Z[i,3]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInputError
from repro.mst.union_find import UnionFind


def single_linkage_tree(n: int, u: np.ndarray, v: np.ndarray,
                        w: np.ndarray) -> np.ndarray:
    """SciPy-convention linkage matrix from a spanning tree's edges."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if u.shape != v.shape or u.shape != w.shape:
        raise InvalidInputError("edge arrays must have matching shapes")
    if u.size != n - 1:
        raise InvalidInputError(
            f"spanning tree of {n} points needs {n - 1} edges, got {u.size}")

    order = np.argsort(w, kind="stable")
    uf = UnionFind(n)
    # cluster id of each union-find root; starts as the point itself.
    cluster_of_root = np.arange(n, dtype=np.int64)
    sizes = np.ones(2 * n - 1, dtype=np.int64)
    Z = np.empty((n - 1, 4), dtype=np.float64)
    for row, e in enumerate(order):
        a, b = int(u[e]), int(v[e])
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            raise InvalidInputError("edges contain a cycle")
        ca, cb = int(cluster_of_root[ra]), int(cluster_of_root[rb])
        new_id = n + row
        Z[row, 0] = min(ca, cb)
        Z[row, 1] = max(ca, cb)
        Z[row, 2] = w[e]
        Z[row, 3] = sizes[ca] + sizes[cb]
        sizes[new_id] = sizes[ca] + sizes[cb]
        uf.union(ra, rb)
        cluster_of_root[uf.find(ra)] = new_id
    return Z
