"""repro — single-tree Borůvka EMST on GPUs, reproduced in Python.

Reproduction of A. Prokopenko, P. Sao, D. Lebrun-Grandié, *"A single-tree
algorithm to compute the Euclidean minimum spanning tree on GPUs"*
(ICPP 2022, arXiv:2207.00514).

Quickstart
----------
>>> import numpy as np
>>> from repro import emst
>>> points = np.random.default_rng(0).random((1000, 3))
>>> tree = emst(points)
>>> tree.edges.shape
(999, 2)

Package map
-----------
``repro.core``      the paper's single-tree Borůvka EMST (+ m.r.d. metric)
``repro.bvh``       linear BVH substrate (ArborX analogue)
``repro.kokkos``    execution-space layer with simulated device cost models
``repro.baselines`` MLPACK dual-tree, MemoGFK/WSPD, Bentley–Friedman, oracles
``repro.hdbscan``   HDBSCAN* on the mutual-reachability EMST
``repro.data``      generators mirroring the paper's 12 datasets
``repro.bench``     harness regenerating every figure of the evaluation
``repro.service``   batch-serving engine: job scheduling, content-addressed
                    tree/result/core caching, JSON-over-HTTP API
                    (``repro serve``)
``repro.store``     persistent content-addressed artifact store: disk
                    spill, warm restart, crash-safe blobs (``--store-dir``)

Serving quickstart
------------------
>>> from repro.service import Engine, JobSpec  # doctest: +SKIP
>>> with Engine() as engine:  # doctest: +SKIP
...     job_id = engine.submit(JobSpec(dataset="Uniform100M2:10000"))
...     tree = engine.result(job_id).emst()
"""

from repro.core.emst import EMSTResult, emst, mutual_reachability_emst
from repro.core.boruvka_emst import SingleTreeConfig
from repro.bvh.bvh import BVH, build_bvh
from repro.hdbscan.hdbscan import HDBSCANResult, hdbscan
from repro.metrics import mfeatures_per_second
from repro.errors import (
    ConvergenceError,
    DimensionError,
    InvalidInputError,
    ReproError,
)

__version__ = "1.1.0"


def __getattr__(name):
    # ``repro.service`` is imported lazily: it drags in the HTTP/threading
    # machinery (and ``repro.service.server`` reads ``repro.__version__``),
    # which plain library users computing one tree never need.
    if name == "service":
        import repro.service
        return repro.service
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "service",
    "emst",
    "mutual_reachability_emst",
    "EMSTResult",
    "SingleTreeConfig",
    "BVH",
    "build_bvh",
    "hdbscan",
    "HDBSCANResult",
    "mfeatures_per_second",
    "ReproError",
    "InvalidInputError",
    "DimensionError",
    "ConvergenceError",
    "__version__",
]
