"""kd-tree backend for the single-tree EMST.

The paper notes its algorithms "are general and are applicable to other
tree structures such as k-d tree" (Section 1).  This module makes that
claim executable: a median-split kd-tree is built directly in the BVH
node layout (``m`` leaves, internal nodes ``0..m-2``, leaf ``j`` at
``m-1+j``), so the *entire* Borůvka machinery — label reduction, bound
seeding, batched Algorithm-2 traversal, merge — runs on it unchanged.

The leaf order is the kd-tree's left-to-right (in-order) sequence, which
is itself a space-filling order; the Z-curve-adjacency bound seeding of
Optimization 2 therefore still finds close cross-component pairs.  Like
the LBVH, leaves may be *blocked*: splitting stops once a segment has at
most ``leaf_size`` points, and the block becomes one leaf.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bvh.bvh import BVH
from repro.bvh.refit import bottom_up_schedule, refit_bounds
from repro.errors import InvalidInputError
from repro.kokkos.counters import CostCounters


def kdtree_as_bvh(points: np.ndarray, *,
                  leaf_size: int = 1,
                  counters: Optional[CostCounters] = None) -> BVH:
    """Median-split kd-tree over ``points`` in the BVH node layout.

    Splits the widest box side at the point median down to leaves of at
    most ``leaf_size`` points.  Returns a :class:`~repro.bvh.bvh.BVH`, so
    every consumer of the LBVH (traversals, the Borůvka loop) works on it
    without change.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidInputError(
            f"expected non-empty (n, d) points, got shape {points.shape}")
    if not np.all(np.isfinite(points)):
        raise InvalidInputError("points contain non-finite coordinates")
    if leaf_size < 1:
        raise InvalidInputError(f"leaf_size must be >= 1, got {leaf_size}")
    n, dim = points.shape

    if n <= leaf_size:
        # Single-leaf tree: node 0 is the leaf and the root.
        return BVH(
            points=points.copy(),
            order=np.arange(n, dtype=np.int64),
            codes=np.arange(n, dtype=np.uint64),
            left=np.empty(0, dtype=np.int64),
            right=np.empty(0, dtype=np.int64),
            parent=np.array([-1], dtype=np.int64),
            lo=points.min(axis=0, keepdims=True),
            hi=points.max(axis=0, keepdims=True),
            schedule=[],
            leaf_start=np.zeros(1, dtype=np.int64),
            leaf_count=np.array([n], dtype=np.int64),
            leaf_size=leaf_size,
        )

    perm = np.arange(n, dtype=np.int64)
    left_list = []
    right_list = []
    #: (start, end) of each discovered leaf block, in discovery order.
    blocks = []

    # Iterative construction.  Internal ids are assigned in discovery
    # order (root = 0); a child that is a leaf block is temporarily
    # encoded as ``-(block_index) - 1`` and renumbered once the in-order
    # block sequence is known.
    def alloc_internal() -> int:
        left_list.append(-1)
        right_list.append(-1)
        return len(left_list) - 1

    root = alloc_internal()
    # Stack entries: (node_id, start, end) with end - start > leaf_size.
    stack = [(root, 0, n)]
    while stack:
        node, s, e = stack.pop()
        seg = perm[s:e]
        seg_pts = points[seg]
        widths = seg_pts.max(axis=0) - seg_pts.min(axis=0)
        axis = int(np.argmax(widths))
        mid = (e - s) // 2
        part = np.argpartition(seg_pts[:, axis], mid)
        perm[s:e] = seg[part]

        for child_slot, (cs, ce) in enumerate(((s, s + mid), (s + mid, e))):
            if ce - cs <= leaf_size:
                child = -len(blocks) - 1
                blocks.append((cs, ce))
            else:
                child = alloc_internal()
                stack.append((child, cs, ce))
            if child_slot == 0:
                left_list[node] = child
            else:
                right_list[node] = child

    m = len(blocks)
    n_internal = len(left_list)
    assert n_internal == m - 1, "kd-tree must be a full binary tree"
    leaf_base = m - 1
    # Renumber leaf blocks into in-order (sorted-by-start) sequence.
    starts = np.array([b[0] for b in blocks], dtype=np.int64)
    ends = np.array([b[1] for b in blocks], dtype=np.int64)
    in_order = np.argsort(starts, kind="stable")
    rank_of = np.empty(m, dtype=np.int64)
    rank_of[in_order] = np.arange(m, dtype=np.int64)

    def resolve(children) -> np.ndarray:
        arr = np.asarray(children, dtype=np.int64)
        is_block = arr < 0
        block_idx = -(arr + 1)
        return np.where(is_block, leaf_base + rank_of[np.maximum(block_idx, 0)],
                        arr)

    left = resolve(left_list)
    right = resolve(right_list)
    parent = np.full(2 * m - 1, -1, dtype=np.int64)
    internal_ids = np.arange(n_internal, dtype=np.int64)
    parent[left] = internal_ids
    parent[right] = internal_ids

    leaf_start = starts[in_order]
    leaf_count = (ends - starts)[in_order]
    sorted_points = points[perm]
    schedule = bottom_up_schedule(left, right, m)
    lo, hi = refit_bounds(sorted_points, left, right, schedule, counters,
                          leaf_start=leaf_start)
    if counters is not None:
        depth = max(int(np.ceil(np.log2(n))), 1)
        counters.record_bulk(n, ops_per_item=6.0 * depth,
                             bytes_per_item=16.0)
        counters.record_sort(n, bytes_per_item=16.0)
    return BVH(
        points=sorted_points,
        order=perm,
        codes=np.arange(n, dtype=np.uint64),  # synthetic, strictly sorted
        left=left,
        right=right,
        parent=parent,
        lo=lo,
        hi=hi,
        schedule=schedule,
        leaf_start=leaf_start,
        leaf_count=leaf_count,
        leaf_size=leaf_size,
    )
